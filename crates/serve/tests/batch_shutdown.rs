//! Admission-backpressure and shutdown tests for the batch scheduler: the
//! serve-layer mirror of `crates/core/tests/decode_pipeline_shutdown.rs`.
//!
//! The happy path (ordered emission, bit-identity to single encodes) is
//! covered by the unit tests in `src/batch.rs`; these tests pin the
//! *overload and abnormal-end* contracts. Backpressure: a producer that
//! outruns the workers must park on the bounded queue, so the number of
//! in-flight images can never exceed `capacity + jobs + 1`. Shutdown: a
//! mid-batch job failure is contained to its job; a worker-side panic
//! (here: in the emission callback) aborts the batch in bounded time —
//! never a hang, never a stranded producer. Every test runs under a
//! deadline guard so a parked thread is a test failure, not a CI timeout.

use pj2k_core::{EncoderConfig, RateControl};
use pj2k_image::{synth, Image};
use pj2k_serve::{encode_stream, BatchPlan, JobError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::Duration;

fn test_cfg() -> EncoderConfig {
    EncoderConfig {
        rate: RateControl::TargetBpp(vec![1.0]),
        levels: 3,
        ..EncoderConfig::default()
    }
}

fn img(side: usize, seed: u64) -> Image {
    synth::natural_gray(side, side, seed)
}

/// Run `f` on a helper thread and fail if it has not finished within
/// `secs` — a parked producer or worker shows up as a deadline miss here
/// instead of a CI-wide timeout.
fn with_deadline<F>(secs: u64, what: &str, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let runner = thread::spawn(move || {
        f();
        // The receiver only disappears after a verdict; ignore the
        // impossible send error rather than panicking in teardown.
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => runner.join().expect("deadline body must not panic"),
        Err(_) => panic!("{what}: exceeded {secs}s — a batch thread is likely parked"),
    }
}

#[test]
fn overloaded_producer_holds_in_flight_jobs_at_the_admission_ceiling() {
    // supply() is instant (images pre-built), workers pay a real encode —
    // the producer would race ahead unboundedly without admission
    // backpressure. In-flight jobs = supplied − emitted; the ceiling is
    // capacity queued + one per worker + the one send() is parked on,
    // plus up to jobs−1 *finished* results parked in the reorder buffer
    // awaiting ordered emission (those hold compressed bytes, not decoded
    // images — the image ceiling itself is pinned in parutil's
    // payload_live_count test and the bench harness's allocator check).
    with_deadline(120, "backpressure batch", || {
        let plan = BatchPlan {
            jobs: 2,
            threads_per_job: 1,
            budget: 2,
            queue_capacity: 2,
        };
        let n = 24;
        let images: Vec<Image> = (0..n).map(|i| img(48, i as u64)).collect();
        let supplied = AtomicUsize::new(0);
        let emitted = AtomicUsize::new(0);
        let max_in_flight = AtomicUsize::new(0);
        encode_stream(
            &test_cfg(),
            plan,
            n,
            |i| {
                let in_flight =
                    supplied.fetch_add(1, Ordering::SeqCst) + 1 - emitted.load(Ordering::SeqCst);
                max_in_flight.fetch_max(in_flight, Ordering::SeqCst);
                Ok(images[i].clone())
            },
            |_i, result, _lat| {
                assert!(result.is_ok());
                emitted.fetch_add(1, Ordering::SeqCst);
            },
        )
        .expect("valid config");
        assert_eq!(emitted.load(Ordering::SeqCst), n, "every job emitted");
        let ceiling = plan.queue_capacity + 2 * plan.jobs;
        let peak = max_in_flight.load(Ordering::SeqCst);
        assert!(
            peak <= ceiling,
            "producer ran {peak} jobs ahead; admission ceiling is {ceiling}"
        );
    });
}

#[test]
fn mid_batch_failures_drain_cleanly_and_stay_contained() {
    // Jobs 3 and 7 fail at supply time (the hardened-parse analogue);
    // every other job must encode, in order, within the deadline.
    with_deadline(120, "mid-batch failure batch", || {
        let plan = BatchPlan {
            jobs: 3,
            threads_per_job: 1,
            budget: 3,
            queue_capacity: 2,
        };
        let n = 12;
        let outcomes = Mutex::new(Vec::new());
        encode_stream(
            &test_cfg(),
            plan,
            n,
            |i| {
                if i == 3 || i == 7 {
                    Err(JobError::Read(format!("synthetic corruption in job {i}")))
                } else {
                    Ok(img(32, i as u64))
                }
            },
            |i, result, _lat| outcomes.lock().unwrap().push((i, result.is_ok())),
        )
        .expect("valid config");
        let outcomes = outcomes.into_inner().unwrap();
        let want: Vec<(usize, bool)> = (0..n).map(|i| (i, i != 3 && i != 7)).collect();
        assert_eq!(outcomes, want);
    });
}

#[test]
fn emission_panic_aborts_the_batch_in_bounded_time() {
    // A panic on the worker side of the queue (here: the emission
    // callback) must fail the queue, release a producer parked on
    // admission, and propagate — not deadlock. The tiny queue capacity
    // guarantees the producer really is parked when the panic fires.
    with_deadline(120, "emission panic batch", || {
        let supplied = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            encode_stream(
                &test_cfg(),
                BatchPlan {
                    jobs: 2,
                    threads_per_job: 1,
                    budget: 2,
                    queue_capacity: 1,
                },
                64,
                |i| {
                    supplied.fetch_add(1, Ordering::SeqCst);
                    Ok(img(24, i as u64))
                },
                |i, _result, _lat| {
                    assert!(i < 2, "poison emission");
                },
            )
        }));
        assert!(caught.is_err(), "emission panic must propagate");
        assert!(
            supplied.load(Ordering::SeqCst) < 64,
            "producer should observe the failed queue and stop admitting"
        );
    });
}
