//! The batch scheduler: `j` concurrent images × `k` intra-image threads
//! under one budget, with bounded-memory admission and ordered emission.
//!
//! Shape (the `bounded_parralel_map` pattern, SNIPPETS.md Snippet 3):
//! the *producer* (the calling thread) loads images one at a time and
//! admits them into a [`BoundedQueue`](pj2k_parutil::BoundedQueue); `j`
//! batch workers each own a `k`-thread [`Encoder`] and drain jobs; results
//! come back through the reorder buffer in input order, so output files
//! are written in the order the inputs were given no matter which job
//! finished first. When the producer outruns the workers it blocks on the
//! queue — peak decoded-image memory is `capacity + j` images plus the one
//! being loaded, never O(inputs).
//!
//! Job isolation: a job failure is a *value*, not a panic. Unreadable or
//! over-budget inputs fail at the allocation-budgeted PNM parse (the
//! hardening paths from PR 3) before touching the encoder; a panic inside
//! one job's encode is caught at the job boundary ([`encode_job`]) and
//! reported as that job's error while the rest of the batch proceeds.

use pj2k_core::config::ConfigError;
use pj2k_core::{Encoder, EncoderConfig, ParallelMode};
use pj2k_image::{pnm, Image};
use pj2k_parutil::{bounded_ordered_serve, resolve_thread_budget};
use pj2k_smpsim::{choose_split, ImageCost};
use std::fmt;
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Caller-tunable knobs of a batch run; `None` means "let the planner
/// decide" (see [`BatchPlan::for_workload`]).
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Number of concurrent images (`j`). Planner default: the bi-criteria
    /// split tuner over the per-image cost estimates.
    pub jobs: Option<usize>,
    /// Total worker budget (`B`). Default: [`resolve_thread_budget`]
    /// (`PJ2K_THREADS`, else host parallelism).
    pub budget: Option<usize>,
    /// Admission-queue capacity. Default: `2 × j` — enough lookahead to
    /// keep `j` workers from starving on load jitter, still O(j · image).
    pub queue_capacity: Option<usize>,
}

/// The resolved execution shape of a batch run: `jobs × threads_per_job ≤
/// budget`, plus the admission-queue capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPlan {
    /// Concurrent images (`j ≥ 1`).
    pub jobs: usize,
    /// Intra-image worker threads per job (`k ≥ 1`).
    pub threads_per_job: usize,
    /// Total worker budget the split was planned against.
    pub budget: usize,
    /// Bounded admission-queue capacity (≥ 1).
    pub queue_capacity: usize,
}

/// Serial share assumed when estimating [`ImageCost`] from input byte
/// sizes: the measured stage breakdown puts image IO + setup + rate
/// allocation + Tier-2 + bitstream IO at roughly a third of a
/// single-thread encode on PNM-sized inputs, and only the *shape* of the
/// estimate matters to the split tuner (ratios, not seconds).
const EST_SERIAL_SHARE: f64 = 0.35;

impl BatchPlan {
    /// Plan the `j/k` split for a workload of input byte sizes under
    /// `opts`: an explicit `jobs` override wins (clamped to the budget);
    /// otherwise the [`choose_split`] tuner runs on per-image cost
    /// estimates — input bytes as the work proxy, split
    /// [`EST_SERIAL_SHARE`] serial / rest parallel — picking throughput
    /// first and breaking near-ties toward fewer, wider jobs (latency).
    pub fn for_workload(input_sizes: &[u64], opts: &BatchOptions) -> BatchPlan {
        let budget = opts.budget.unwrap_or_else(resolve_thread_budget).max(1);
        let (jobs, threads_per_job) = match opts.jobs {
            Some(j) => {
                let j = j.clamp(1, budget);
                (j, (budget / j).max(1))
            }
            None => {
                let costs: Vec<ImageCost> = input_sizes
                    .iter()
                    .map(|&s| {
                        let w = (s.max(1)) as f64;
                        ImageCost::new(EST_SERIAL_SHARE * w, (1.0 - EST_SERIAL_SHARE) * w, 0.0)
                    })
                    .collect();
                choose_split(&costs, budget)
            }
        };
        let queue_capacity = opts.queue_capacity.unwrap_or(jobs * 2).max(1);
        BatchPlan {
            jobs,
            threads_per_job,
            budget,
            queue_capacity,
        }
    }

    /// The encoder's parallel mode for one job of this plan.
    fn parallel_mode(&self) -> ParallelMode {
        if self.threads_per_job <= 1 {
            ParallelMode::Sequential
        } else {
            ParallelMode::WorkerPool {
                workers: self.threads_per_job,
            }
        }
    }
}

/// Why one job of a batch failed. The batch itself keeps going.
#[derive(Debug)]
pub enum JobError {
    /// The input could not be read or parsed (includes the allocation-
    /// budget rejections of the hardened PNM reader).
    Read(String),
    /// The job's encode panicked; the panic was contained at the job
    /// boundary.
    Panicked(String),
    /// The output could not be written.
    Write(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Read(e) => write!(f, "read: {e}"),
            JobError::Panicked(e) => write!(f, "encode panicked: {e}"),
            JobError::Write(e) => write!(f, "write: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

/// A successfully encoded job, before any output IO.
#[derive(Debug)]
pub struct EncodedJob {
    /// The codestream bytes — identical to what a single-image
    /// `Encoder::encode` with the same config produces.
    pub bytes: Vec<u8>,
    /// Code blocks coded.
    pub blocks: usize,
    /// Coding passes performed.
    pub passes: usize,
}

/// Per-job success summary in a [`BatchReport`].
#[derive(Debug)]
pub struct JobStats {
    /// Output codestream size.
    pub bytes: usize,
    /// Code blocks coded.
    pub blocks: usize,
    /// Coding passes performed.
    pub passes: usize,
    /// Admission-to-emission latency (queue wait + encode + ordered
    /// hand-off), seconds.
    pub seconds: f64,
}

/// One job's result in a [`BatchReport`], in input order.
#[derive(Debug)]
pub struct JobOutcome {
    /// The input path.
    pub input: PathBuf,
    /// The output path.
    pub output: PathBuf,
    /// Success summary or the per-job failure.
    pub result: Result<JobStats, JobError>,
}

/// What a batch run did: per-job outcomes in input order plus the plan it
/// executed.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job outcomes, one per input pair, in input order.
    pub outcomes: Vec<JobOutcome>,
    /// The executed plan.
    pub plan: BatchPlan,
}

impl BatchReport {
    /// Number of failed jobs.
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_err()).count()
    }

    /// True when every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.failed() == 0
    }
}

/// Render a caught panic payload for a per-job error report.
fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Encode one admitted image on this batch worker's encoder, containing a
/// panicking encode at the job boundary so one poisoned job cannot sink
/// the batch (the executor's worker stays alive for the next job).
// AUDIT(hot): per-job dispatch — the catch_unwind frame and report field
// copies are once per image; the coding loops live inside
// `Encoder::encode`.
pub fn encode_job(encoder: &Encoder, img: &Image) -> Result<EncodedJob, JobError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let (bytes, report) = encoder.encode(img);
        EncodedJob {
            bytes,
            blocks: report.num_blocks,
            passes: report.total_passes,
        }
    }))
    .map_err(|p| JobError::Panicked(panic_msg(p)))
}

/// Run a batch of `n` in-memory jobs through the bounded-admission
/// scheduler.
///
/// `supply(i)` runs on the calling thread, in index order, *at admission
/// time* — its memory footprint is what the bounded queue is bounding, so
/// load the image here, not ahead of time. A `supply` error is carried
/// through as that job's [`JobError`] without touching an encoder.
///
/// `on_result(i, result, latency_secs)` is called exactly once per job in
/// strictly increasing index order (the ordered-emission contract of
/// [`bounded_ordered_serve`]); `latency_secs` spans admission to emission.
///
/// Errors only on an invalid encoder configuration — per-job failures are
/// reported through `on_result`.
// AUDIT(hot): batch dispatch — plan resolution, config validation, and
// queue setup run once per batch; per-image work is in `encode_job`.
pub fn encode_stream<Sup, Out>(
    cfg: &EncoderConfig,
    plan: BatchPlan,
    n: usize,
    mut supply: Sup,
    on_result: Out,
) -> Result<(), ConfigError>
where
    Sup: FnMut(usize) -> Result<Image, JobError>,
    Out: Fn(usize, Result<EncodedJob, JobError>, f64) + Sync,
{
    let job_cfg = EncoderConfig {
        parallel: plan.parallel_mode(),
        ..cfg.clone()
    };
    // Validate once up front so per-worker construction cannot fail.
    Encoder::new(job_cfg.clone())?;
    bounded_ordered_serve(
        plan.jobs,
        plan.queue_capacity,
        |_w| Encoder::new(job_cfg.clone()).expect("config validated above"),
        |encoder, _i, (payload, t0): (Result<Image, JobError>, Instant)| {
            let result = payload.and_then(|img| encode_job(encoder, &img));
            (result, t0)
        },
        |i, (result, t0)| on_result(i, result, t0.elapsed().as_secs_f64()),
        |queue| {
            for i in 0..n {
                // Loading inside the producer loop is what keeps peak
                // memory bounded: at most `capacity` loaded images queue
                // up before this send blocks.
                let payload = supply(i);
                if queue.send(i, (payload, Instant::now())).is_err() {
                    break; // queue failed (worker died); stop admitting
                }
            }
        },
    );
    Ok(())
}

/// Encode `(input, output)` file pairs as one batch: plan the `j/k` split
/// from the input sizes, stream the files through the bounded-admission
/// scheduler, and write each output in input order as its job emerges.
///
/// Returns the per-job outcomes; IO and parse failures are per-job errors
/// in the report, not batch failures. Errors only on an invalid encoder
/// configuration.
pub fn encode_files(
    pairs: &[(PathBuf, PathBuf)],
    cfg: &EncoderConfig,
    opts: &BatchOptions,
) -> Result<BatchReport, ConfigError> {
    let sizes: Vec<u64> = pairs
        .iter()
        .map(|(input, _)| std::fs::metadata(input).map(|m| m.len()).unwrap_or(0))
        .collect();
    let plan = BatchPlan::for_workload(&sizes, opts);
    let outcomes = Mutex::new(Vec::with_capacity(pairs.len()));
    encode_stream(
        cfg,
        plan,
        pairs.len(),
        |i| {
            let input = &pairs[i].0;
            let file = std::fs::File::open(input)
                .map_err(|e| JobError::Read(format!("{}: {e}", input.display())))?;
            pnm::read(&mut BufReader::new(file))
                .map_err(|e| JobError::Read(format!("{}: {e}", input.display())))
        },
        |i, result, seconds| {
            let (input, output) = &pairs[i];
            let result = result.and_then(|enc| {
                std::fs::write(output, &enc.bytes)
                    .map_err(|e| JobError::Write(format!("{}: {e}", output.display())))?;
                Ok(JobStats {
                    bytes: enc.bytes.len(),
                    blocks: enc.blocks,
                    passes: enc.passes,
                    seconds,
                })
            });
            outcomes
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(JobOutcome {
                    input: input.clone(),
                    output: output.clone(),
                    result,
                });
        },
    )?;
    Ok(BatchReport {
        outcomes: outcomes.into_inner().unwrap_or_else(|e| e.into_inner()),
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pj2k_core::RateControl;
    use pj2k_image::synth;

    fn test_cfg() -> EncoderConfig {
        EncoderConfig {
            rate: RateControl::TargetBpp(vec![1.0]),
            levels: 3,
            ..EncoderConfig::default()
        }
    }

    fn img(side: usize, seed: u64) -> Image {
        synth::natural_gray(side, side, seed)
    }

    #[test]
    fn plan_respects_budget_and_overrides() {
        let sizes = [10_000u64; 8];
        for budget in [1usize, 2, 4, 8] {
            let plan = BatchPlan::for_workload(
                &sizes,
                &BatchOptions {
                    budget: Some(budget),
                    ..Default::default()
                },
            );
            assert!(plan.jobs * plan.threads_per_job <= budget, "{plan:?}");
            assert!(plan.jobs >= 1 && plan.threads_per_job >= 1, "{plan:?}");
            assert!(plan.queue_capacity >= 1, "{plan:?}");
        }
        // Explicit jobs override wins and is clamped to the budget.
        let plan = BatchPlan::for_workload(
            &sizes,
            &BatchOptions {
                jobs: Some(16),
                budget: Some(4),
                queue_capacity: Some(3),
            },
        );
        assert_eq!((plan.jobs, plan.threads_per_job), (4, 1));
        assert_eq!(plan.queue_capacity, 3);
    }

    #[test]
    fn batch_output_is_bit_identical_to_single_image_encodes() {
        // The acceptance-criteria identity: each job's bytes must equal a
        // standalone encode of the same image with the same per-job
        // parallel mode AND the sequential reference (the codec is
        // bit-identical across executors, proven in core's tests).
        let cfg = test_cfg();
        let images: Vec<Image> = (0..6).map(|i| img(40 + 8 * i, 7 + i as u64)).collect();
        let plan = BatchPlan {
            jobs: 2,
            threads_per_job: 2,
            budget: 4,
            queue_capacity: 2,
        };
        let got = Mutex::new(Vec::new());
        encode_stream(
            &cfg,
            plan,
            images.len(),
            |i| Ok(images[i].clone()),
            |i, result, _lat| {
                got.lock().unwrap().push((i, result.expect("job ok").bytes));
            },
        )
        .expect("valid config");
        let got = got.into_inner().unwrap();
        let seq = Encoder::new(cfg).expect("config");
        for (k, (i, bytes)) in got.iter().enumerate() {
            assert_eq!(k, *i, "ordered emission");
            let (want, _) = seq.encode(&images[*i]);
            assert_eq!(bytes, &want, "image {i} differs from single encode");
        }
    }

    #[test]
    fn poisoned_job_fails_alone() {
        // Job 2's supply fails; every other job must still encode.
        let cfg = test_cfg();
        let plan = BatchPlan {
            jobs: 2,
            threads_per_job: 1,
            budget: 2,
            queue_capacity: 2,
        };
        let results = Mutex::new(Vec::new());
        encode_stream(
            &cfg,
            plan,
            5,
            |i| {
                if i == 2 {
                    Err(JobError::Read("synthetic poison".into()))
                } else {
                    Ok(img(32, i as u64))
                }
            },
            |i, result, _lat| results.lock().unwrap().push((i, result.is_ok())),
        )
        .expect("valid config");
        let results = results.into_inner().unwrap();
        assert_eq!(
            results,
            vec![(0, true), (1, true), (2, false), (3, true), (4, true)]
        );
    }

    #[test]
    fn encode_files_reports_per_job_errors_and_keeps_going() {
        let dir = std::env::temp_dir().join(format!("pj2k-serve-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let good = dir.join("good.pgm");
        {
            let im = img(24, 3);
            let mut f = std::fs::File::create(&good).expect("create");
            pnm::write(&mut f, &im).expect("write pnm");
        }
        let bad = dir.join("bad.pgm");
        std::fs::write(&bad, b"not a pnm file").expect("write garbage");
        let missing = dir.join("missing.pgm");
        let pairs: Vec<(PathBuf, PathBuf)> = [&good, &bad, &missing, &good]
            .iter()
            .enumerate()
            .map(|(i, p)| ((*p).clone(), dir.join(format!("out{i}.pj2k"))))
            .collect();
        let report = encode_files(
            &pairs,
            &test_cfg(),
            &BatchOptions {
                budget: Some(2),
                ..Default::default()
            },
        )
        .expect("valid config");
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.failed(), 2);
        assert!(!report.all_ok());
        assert!(report.outcomes[0].result.is_ok());
        assert!(matches!(report.outcomes[1].result, Err(JobError::Read(_))));
        assert!(matches!(report.outcomes[2].result, Err(JobError::Read(_))));
        assert!(report.outcomes[3].result.is_ok());
        // Successful outputs really landed, identical for identical input.
        let o0 = std::fs::read(&report.outcomes[0].output).expect("out0");
        let o3 = std::fs::read(&report.outcomes[3].output).expect("out3");
        assert!(!o0.is_empty());
        assert_eq!(o0, o3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_config_is_a_batch_error() {
        let cfg = EncoderConfig {
            levels: 0,
            code_block: (3, 3), // invalid: not a power of two in range
            ..EncoderConfig::default()
        };
        let plan = BatchPlan {
            jobs: 1,
            threads_per_job: 1,
            budget: 1,
            queue_capacity: 1,
        };
        let r = encode_stream(&cfg, plan, 0, |_| unreachable!("no jobs"), |_, _, _| {});
        assert!(r.is_err(), "invalid config must fail the batch up front");
    }
}
