//! `pj2k` — command-line front end for the codec.
//!
//! ```text
//! pj2k encode <inputs...> <out.pj2k|outdir> [options]
//!     One input file + an output file encodes a single image. Several
//!     inputs, a directory input, or --jobs routes through the batch
//!     layer: every .pgm/.ppm/.pnm in a directory input is encoded, the
//!     last argument names the output directory (created if missing),
//!     outputs are written in input order, and the exit code is non-zero
//!     iff any job failed.
//!     --bpp R[,R2,...]   lossy target bit rates (cumulative layers; default 1.0)
//!     --lossless         reversible 5/3, exact reconstruction
//!     --levels N         decomposition levels (default 5)
//!     --block WxH        code-block size (default 64x64)
//!     --tiles N          NxN tiling (default: none)
//!     --filter F         naive | padded | strip (default strip)
//!     --threads N        single image: worker threads (default 1);
//!                        batch: total worker budget B (default PJ2K_THREADS
//!                        or host parallelism)
//!     --jobs J           batch: concurrent images (default: auto j×k ≤ B split)
//!     --backend B        pool | rayon (default pool; single image only)
//!     --causal           stripe-causal Tier-1 contexts
//!     --reset            reset MQ contexts every pass
//!     --bypass           lazy mode: raw-code the deep SPP/MRP passes
//!     --roi X,Y,W,H      prioritize a region of interest (MAXSHIFT)
//!     --stats            print the per-stage timing breakdown (single image)
//!
//! pj2k decode <in.pj2k> <out.pgm> [--layers N] [--threads N] [--pipeline]
//! pj2k info   <in.pj2k>
//! ```

use pj2k_core::config::Tier1Options;
use pj2k_core::{
    Decoder, Encoder, EncoderConfig, FilterStrategy, ParallelMode, RateControl, StageOverlap,
};
use pj2k_image::pnm;
use pj2k_serve::{discover, encode_files, BatchOptions};
use pj2k_tier2::codestream::{self, MarkerReader, PayloadReader};
use std::io::BufReader;
use std::path::PathBuf;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("pj2k: {msg}");
    eprintln!("run `pj2k help` for usage");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("encode") => cmd_encode(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("help") | None => {
            println!("usage: pj2k <encode|decode|info> ... (see crate docs)");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown command {other:?}")),
    }
}

/// Pull `--name value` style options out of an argument list.
struct Opts<'a> {
    rest: Vec<&'a str>,
    flags: Vec<(&'a str, Option<&'a str>)>,
}

const VALUE_OPTS: [&str; 10] = [
    "--bpp",
    "--levels",
    "--block",
    "--tiles",
    "--filter",
    "--threads",
    "--jobs",
    "--backend",
    "--layers",
    "--roi",
];

fn parse_opts(args: &[String]) -> Opts<'_> {
    let mut rest = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--").map(|_| a) {
            if VALUE_OPTS.contains(&name) {
                flags.push((name, it.next()));
            } else {
                flags.push((name, None));
            }
        } else {
            rest.push(a);
        }
    }
    Opts { rest, flags }
}

impl Opts<'_> {
    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
    }
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }
}

fn parallel_mode(opts: &Opts) -> Result<ParallelMode, String> {
    let threads: usize = match opts.value("--threads") {
        None => 1,
        Some(t) => t.parse().map_err(|_| format!("bad --threads {t:?}"))?,
    };
    if threads <= 1 {
        return Ok(ParallelMode::Sequential);
    }
    match opts.value("--backend").unwrap_or("pool") {
        "pool" => Ok(ParallelMode::WorkerPool { workers: threads }),
        "rayon" => Ok(ParallelMode::Rayon { workers: threads }),
        other => Err(format!("bad --backend {other:?} (pool|rayon)")),
    }
}

/// Build the encoder configuration shared by single and batch encodes
/// (everything but `parallel`, which single mode takes from `--threads`
/// and batch mode from the `j × k` plan).
fn encoder_config(opts: &Opts) -> Result<EncoderConfig, String> {
    let mut cfg = EncoderConfig {
        filter: FilterStrategy::Strip,
        ..EncoderConfig::default()
    };
    if opts.has("--lossless") {
        cfg.wavelet = pj2k_core::Wavelet::Reversible53;
        cfg.rate = RateControl::Lossless;
    } else if let Some(bpp) = opts.value("--bpp") {
        let rates: Result<Vec<f64>, _> = bpp.split(',').map(str::parse).collect();
        match rates {
            Ok(r) => cfg.rate = RateControl::TargetBpp(r),
            Err(_) => return Err(format!("bad --bpp {bpp:?}")),
        }
    }
    if let Some(l) = opts.value("--levels") {
        cfg.levels = l.parse().map_err(|_| format!("bad --levels {l:?}"))?;
    }
    if let Some(b) = opts.value("--block") {
        let parts: Vec<&str> = b.split('x').collect();
        match parts[..] {
            [w, h] => match (w.parse(), h.parse()) {
                (Ok(w), Ok(h)) => cfg.code_block = (w, h),
                _ => return Err(format!("bad --block {b:?}")),
            },
            _ => return Err(format!("bad --block {b:?} (expected WxH)")),
        }
    }
    if let Some(t) = opts.value("--tiles") {
        let v: usize = t.parse().map_err(|_| format!("bad --tiles {t:?}"))?;
        cfg.tiles = Some((v, v));
    }
    if let Some(f) = opts.value("--filter") {
        cfg.filter = match f {
            "naive" => FilterStrategy::Naive,
            "padded" => FilterStrategy::PaddedWidth,
            "strip" => FilterStrategy::Strip,
            other => return Err(format!("bad --filter {other:?}")),
        };
    }
    cfg.tier1 = Tier1Options {
        stripe_causal: opts.has("--causal"),
        reset_contexts: opts.has("--reset"),
        bypass: opts.has("--bypass"),
    };
    if let Some(spec) = opts.value("--roi") {
        let nums: Result<Vec<usize>, _> = spec.split(',').map(str::parse).collect();
        match nums.as_deref() {
            Ok([x0, y0, w, h]) => {
                cfg.roi = Some(pj2k_core::Roi {
                    x0: *x0,
                    y0: *y0,
                    w: *w,
                    h: *h,
                })
            }
            _ => return Err(format!("bad --roi {spec:?} (expected X,Y,W,H)")),
        }
    }
    Ok(cfg)
}

fn cmd_encode(args: &[String]) -> ExitCode {
    let opts = parse_opts(args);
    if opts.rest.len() < 2 {
        return fail("encode needs <inputs...> <output.pj2k|outdir>");
    }
    let inputs: Vec<PathBuf> = opts.rest[..opts.rest.len() - 1]
        .iter()
        .map(PathBuf::from)
        .collect();
    let out_arg = PathBuf::from(opts.rest[opts.rest.len() - 1]);
    let batch_mode =
        inputs.len() > 1 || opts.has("--jobs") || inputs[0].is_dir() || out_arg.is_dir();
    if batch_mode {
        cmd_encode_batch(&opts, &inputs, &out_arg)
    } else {
        cmd_encode_single(&opts, &inputs[0], &out_arg)
    }
}

fn cmd_encode_single(opts: &Opts, input: &PathBuf, output: &PathBuf) -> ExitCode {
    let file = match std::fs::File::open(input) {
        Ok(f) => f,
        Err(e) => return fail(&format!("cannot open {}: {e}", input.display())),
    };
    let img = match pnm::read(&mut BufReader::new(file)) {
        Ok(i) => i,
        Err(e) => return fail(&format!("cannot read {}: {e}", input.display())),
    };
    let mut cfg = match encoder_config(opts) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    cfg.parallel = match parallel_mode(opts) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let encoder = match Encoder::new(cfg) {
        Ok(e) => e,
        Err(e) => return fail(&format!("{e}")),
    };
    let (bytes, report) = encoder.encode(&img);
    if let Err(e) = std::fs::write(output, &bytes) {
        return fail(&format!("cannot write {}: {e}", output.display()));
    }
    let bpp = bytes.len() as f64 * 8.0 / img.pixels() as f64;
    println!(
        "{} -> {}: {} bytes ({bpp:.3} bpp, {} blocks, {} passes)",
        input.display(),
        output.display(),
        bytes.len(),
        report.num_blocks,
        report.total_passes
    );
    if opts.has("--stats") {
        for (stage, t) in report.stages.iter() {
            println!("  {stage:<28} {:>9.2} ms", t.as_secs_f64() * 1e3);
        }
        println!(
            "  DWT split: vertical {:.2} ms / horizontal {:.2} ms",
            report.dwt.vertical.as_secs_f64() * 1e3,
            report.dwt.horizontal.as_secs_f64() * 1e3
        );
    }
    ExitCode::SUCCESS
}

/// Encode many inputs through the batch layer: bounded-admission
/// scheduling, `j × k ≤ B` thread split, outputs written in input order,
/// exit non-zero iff any job failed.
fn cmd_encode_batch(opts: &Opts, inputs: &[PathBuf], out_arg: &PathBuf) -> ExitCode {
    let jobs_list = match discover(inputs) {
        Ok(l) => l,
        Err(e) => return fail(&format!("{e}")),
    };
    // A single discovered input with a non-directory output encodes to
    // that exact path; otherwise the last argument is the output
    // directory.
    let pairs: Vec<(PathBuf, PathBuf)> = if jobs_list.len() == 1 && !out_arg.is_dir() {
        vec![(jobs_list[0].clone(), out_arg.clone())]
    } else {
        if let Err(e) = std::fs::create_dir_all(out_arg) {
            return fail(&format!("cannot create {}: {e}", out_arg.display()));
        }
        jobs_list
            .iter()
            .map(|input| {
                let stem = input
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "out".to_string());
                (input.clone(), out_arg.join(format!("{stem}.pj2k")))
            })
            .collect()
    };
    let cfg = match encoder_config(opts) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    if opts.value("--backend") == Some("rayon") {
        eprintln!("pj2k: --backend rayon is single-image only; batch uses the worker pool");
    }
    let mut bopts = BatchOptions::default();
    if let Some(j) = opts.value("--jobs") {
        match j.parse::<usize>() {
            Ok(v) if v > 0 => bopts.jobs = Some(v),
            _ => return fail(&format!("bad --jobs {j:?}")),
        }
    }
    if let Some(t) = opts.value("--threads") {
        match t.parse::<usize>() {
            Ok(v) if v > 0 => bopts.budget = Some(v),
            _ => return fail(&format!("bad --threads {t:?}")),
        }
    }
    let report = match encode_files(&pairs, &cfg, &bopts) {
        Ok(r) => r,
        Err(e) => return fail(&format!("{e}")),
    };
    for o in &report.outcomes {
        match &o.result {
            Ok(s) => println!(
                "{} -> {}: {} bytes ({} blocks, {} passes, {:.1} ms)",
                o.input.display(),
                o.output.display(),
                s.bytes,
                s.blocks,
                s.passes,
                s.seconds * 1e3
            ),
            Err(e) => println!("{} -> FAILED: {e}", o.input.display()),
        }
    }
    let failed = report.failed();
    println!(
        "batch: {} job(s), j={} k={} budget={} queue={}, {} ok, {} failed",
        report.outcomes.len(),
        report.plan.jobs,
        report.plan.threads_per_job,
        report.plan.budget,
        report.plan.queue_capacity,
        report.outcomes.len() - failed,
        failed
    );
    if failed > 0 {
        eprintln!("pj2k: {failed} of {} job(s) failed:", report.outcomes.len());
        for o in report.outcomes.iter().filter(|o| o.result.is_err()) {
            if let Err(e) = &o.result {
                eprintln!("  {}: {e}", o.input.display());
            }
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_decode(args: &[String]) -> ExitCode {
    let opts = parse_opts(args);
    let [input, output] = opts.rest[..] else {
        return fail("decode needs <input.pj2k> <output.pnm>");
    };
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => return fail(&format!("cannot read {input}: {e}")),
    };
    let mut dec = Decoder::default();
    if let Some(l) = opts.value("--layers") {
        match l.parse() {
            Ok(v) => dec.max_layers = Some(v),
            Err(_) => return fail(&format!("bad --layers {l:?}")),
        }
    }
    dec.parallel = match parallel_mode(&opts) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    if opts.has("--pipeline") {
        // Staged decode pipeline (DESIGN.md §15): Tier-1 workers drain
        // blocks as the serial parse publishes them, inverse-DWT levels
        // run as their bands reassemble. Bit-identical to the default.
        dec.overlap = StageOverlap::Pipelined;
    }
    let (img, _) = match dec.decode(&bytes) {
        Ok(r) => r,
        Err(e) => return fail(&format!("decode failed: {e}")),
    };
    let mut f = match std::fs::File::create(output) {
        Ok(f) => f,
        Err(e) => return fail(&format!("cannot create {output}: {e}")),
    };
    if let Err(e) = pnm::write(&mut f, &img) {
        return fail(&format!("cannot write {output}: {e}"));
    }
    println!(
        "{} -> {}: {}x{}, {} component(s)",
        input,
        output,
        img.width(),
        img.height(),
        img.num_components()
    );
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let opts = parse_opts(args);
    let [input] = opts.rest[..] else {
        return fail("info needs <input.pj2k>");
    };
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => return fail(&format!("cannot read {input}: {e}")),
    };
    match describe(&bytes) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("cannot parse {input}: {e}")),
    }
}

/// Render the main-header parameters of a codestream.
fn describe(bytes: &[u8]) -> Result<String, codestream::ParseError> {
    use std::fmt::Write;
    let mut r = MarkerReader::new(bytes);
    r.expect_marker(codestream::SOC)?;
    let siz = r.expect_segment(codestream::SIZ)?;
    let mut p = PayloadReader::new(siz);
    let (w, h) = (p.u32()?, p.u32()?);
    let ncomp = p.u8()?;
    let depth = p.u8()?;
    let signed = p.u8()? != 0;
    let (tw, th) = (p.u32()?, p.u32()?);
    let cod = r.expect_segment(codestream::COD)?;
    let mut p = PayloadReader::new(cod);
    let wavelet = p.u8()?;
    let levels = p.u8()?;
    let (cbw, cbh) = (p.u16()?, p.u16()?);
    let layers = p.u16()?;
    let flags = p.u8()?;
    let qcd = r.expect_segment(codestream::QCD)?;
    let step = PayloadReader::new(qcd).f64()?;
    let mut out = String::new();
    let _ = writeln!(out, "pj2k codestream, {} bytes", bytes.len());
    let _ = writeln!(
        out,
        "  image:      {w}x{h}, {ncomp} component(s), {depth}-bit{}",
        if signed { " signed" } else { "" }
    );
    let _ = writeln!(
        out,
        "  tiles:      {}",
        if tw == 0 {
            "none (single tile)".to_string()
        } else {
            format!("{tw}x{th}")
        }
    );
    let _ = writeln!(
        out,
        "  wavelet:    {} ({levels} levels)",
        if wavelet == 0 {
            "reversible 5/3"
        } else {
            "irreversible 9/7"
        }
    );
    let _ = writeln!(out, "  code-block: {cbw}x{cbh}");
    let _ = writeln!(out, "  layers:     {layers}");
    let _ = writeln!(out, "  base step:  {step}");
    let mut style = String::new();
    if flags & 1 != 0 {
        style.push_str("stripe-causal ");
    }
    if flags & 2 != 0 {
        style.push_str("reset-contexts ");
    }
    if flags & 4 != 0 {
        style.push_str("bypass ");
    }
    if style.is_empty() {
        style.push_str("default");
    }
    let _ = writeln!(out, "  tier-1:     {}", style.trim_end());
    Ok(out)
}
