//! Multi-image batch service: inter-image parallelism on top of the
//! intra-image executors.
//!
//! The paper (and every crate below this one) parallelizes *one* image.
//! Production traffic is a stream of them, and simply looping
//! `Encoder::encode` with the whole thread pool leaves the pool idle
//! during each image's serial stages (image IO, rate allocation, Tier-2,
//! bitstream IO) and burns the granularity losses of wide intra-image
//! splits once per image. This crate stacks the second level of
//! parallelism (ROADMAP item 2):
//!
//! * [`discovery`] expands CLI inputs (files or directories) into an
//!   ordered job list;
//! * [`batch`] runs `j` concurrent images, each encoded by its own
//!   `k`-thread intra-image executor, with `j × k ≤ B` under one global
//!   thread budget (`PJ2K_THREADS`, [`pj2k_parutil::thread_budget`]). The
//!   `j/k` split is chosen by the deterministic tuner in
//!   [`pj2k_smpsim::batch`] from per-image cost estimates — throughput
//!   first, latency as tie-break, the bi-criteria mapping rule of
//!   arXiv 0801.1772;
//! * admission is a bounded queue ([`pj2k_parutil::bounded_ordered_serve`]):
//!   the producer blocks when `queue_capacity` decoded images are waiting,
//!   so peak payload memory stays O(j · image) no matter how long the
//!   input list is, and results are emitted in input order;
//! * each job's input passes through the Result-based, allocation-budgeted
//!   parse paths from the hardening work (PR 3): a poisoned input fails
//!   *its* job with a per-job error while the rest of the batch proceeds.
//!
//! The `pj2k` CLI binary lives here (it needs the batch layer, which needs
//! `pj2k-core` — the CLI moved up from `pj2k-core` to break the cycle).

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(unused_must_use)]

pub mod batch;
pub mod discovery;

pub use batch::{
    encode_files, encode_stream, BatchOptions, BatchPlan, BatchReport, EncodedJob, JobError,
    JobOutcome, JobStats,
};
pub use discovery::{discover, DiscoveryError};
