//! Input discovery: expand CLI arguments into an ordered encode job list.
//!
//! Each argument is either an image file (taken as-is, any extension — the
//! parser is the authority on whether it is readable) or a directory,
//! which contributes every contained `.pgm`/`.ppm`/`.pnm` file
//! (case-insensitive), sorted by file name so batch output order is
//! deterministic across platforms and `readdir` orders. Directories are
//! not recursed: a service points at a spool directory, not a tree.

use std::fmt;
use std::path::{Path, PathBuf};

/// Why discovery rejected an input argument.
#[derive(Debug)]
pub enum DiscoveryError {
    /// The argument does not exist or cannot be stat'ed / listed.
    Unreadable(PathBuf, std::io::Error),
    /// A directory argument contained no image files.
    EmptyDirectory(PathBuf),
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryError::Unreadable(p, e) => write!(f, "cannot read {}: {e}", p.display()),
            DiscoveryError::EmptyDirectory(p) => {
                write!(f, "no .pgm/.ppm/.pnm files in {}", p.display())
            }
        }
    }
}

impl std::error::Error for DiscoveryError {}

/// True for the PNM family extensions the codec's image reader accepts.
fn is_image_name(name: &Path) -> bool {
    name.extension().and_then(|e| e.to_str()).is_some_and(|e| {
        e.eq_ignore_ascii_case("pgm")
            || e.eq_ignore_ascii_case("ppm")
            || e.eq_ignore_ascii_case("pnm")
    })
}

/// Expand `inputs` into the ordered job list: files pass through in
/// argument order, each directory contributes its image files sorted by
/// name. Returns an error for a missing argument or an image-free
/// directory (silently encoding nothing would mask an operator typo).
pub fn discover(inputs: &[PathBuf]) -> Result<Vec<PathBuf>, DiscoveryError> {
    let mut jobs = Vec::new();
    for input in inputs {
        let meta =
            std::fs::metadata(input).map_err(|e| DiscoveryError::Unreadable(input.clone(), e))?;
        if !meta.is_dir() {
            jobs.push(input.clone());
            continue;
        }
        let entries =
            std::fs::read_dir(input).map_err(|e| DiscoveryError::Unreadable(input.clone(), e))?;
        let mut found: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && is_image_name(p))
            .collect();
        if found.is_empty() {
            return Err(DiscoveryError::EmptyDirectory(input.clone()));
        }
        found.sort();
        jobs.extend(found);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory removed on drop, unique per test.
    struct Scratch(PathBuf);
    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("pj2k-serve-discovery-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create scratch dir");
            Scratch(dir)
        }
        fn file(&self, name: &str) -> PathBuf {
            let p = self.0.join(name);
            std::fs::write(&p, b"P5\n1 1\n255\n\0").expect("write scratch file");
            p
        }
    }
    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn files_pass_through_in_argument_order() {
        let s = Scratch::new("files");
        let b = s.file("b.pgm");
        let a = s.file("a.pgm");
        let got = discover(&[b.clone(), a.clone()]).expect("discover");
        assert_eq!(got, vec![b, a]);
    }

    #[test]
    fn directory_contributes_sorted_image_files_only() {
        let s = Scratch::new("dir");
        s.file("c.ppm");
        s.file("a.PGM");
        s.file("b.pnm");
        s.file("notes.txt");
        s.file("noext");
        let got = discover(std::slice::from_ref(&s.0)).expect("discover");
        let names: Vec<String> = got
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a.PGM", "b.pnm", "c.ppm"]);
    }

    #[test]
    fn missing_input_is_an_error() {
        let s = Scratch::new("missing");
        let err = discover(&[s.0.join("nope.pgm")]).unwrap_err();
        assert!(matches!(err, DiscoveryError::Unreadable(..)), "{err}");
    }

    #[test]
    fn image_free_directory_is_an_error() {
        let s = Scratch::new("empty");
        s.file("readme.txt");
        let err = discover(std::slice::from_ref(&s.0)).unwrap_err();
        assert!(matches!(err, DiscoveryError::EmptyDirectory(_)), "{err}");
    }
}
