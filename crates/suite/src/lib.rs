//! Umbrella crate: owns the repository-level `examples/` and `tests/`
//! targets and re-exports the whole pj2k workspace under one roof so the
//! examples can `use pj2k_suite::prelude::*`.

pub use pj2k_cachesim as cachesim;
pub use pj2k_core as core;
pub use pj2k_dwt as dwt;
pub use pj2k_ebcot as ebcot;
pub use pj2k_image as image;
pub use pj2k_jpegbase as jpegbase;
pub use pj2k_mq as mq;
pub use pj2k_parutil as parutil;
pub use pj2k_smpsim as smpsim;
pub use pj2k_spiht as spiht;
pub use pj2k_tier2 as tier2;

/// Everything an application typically needs.
pub mod prelude {
    pub use pj2k_core::{
        Decoder, Encoder, EncoderConfig, FilterStrategy, ParallelMode, RateControl, Wavelet,
    };
    pub use pj2k_image::metrics::{mse, psnr};
    pub use pj2k_image::{synth, Image, Plane};
}
