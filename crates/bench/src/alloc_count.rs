//! Heap-allocation counting for the steady-state zero-allocation oracle.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation twice: in a process-wide relaxed atomic (cheap, covers all
//! threads — the number the trajectory harnesses report) and in a
//! thread-local counter (exact per-thread attribution — the number the
//! oracle asserts on, immune to background threads allocating mid-probe).
//!
//! The hot-path contract this enforces is the runtime half of
//! `cargo xtask audit-hotpath`: the static pass proves every
//! allocation site in the hot closure carries an `AUDIT(hot)`
//! justification, and this allocator proves the "amortized" claims —
//! after warm-up, a recycled Tier-1 arena codes blocks with **zero**
//! heap traffic, and a DWT strip pass allocates nothing per additional
//! strip. See `crates/bench/tests/alloc_oracle.rs`.
//!
//! Binaries opt in with:
//!
//! ```ignore
//! use pj2k_bench::alloc_count::{self, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOCATOR: CountingAlloc = CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocation-call counter wrapped around the system allocator.
///
/// Counts `alloc` and `realloc` calls (the operations that can introduce
/// steady-state heap traffic); `dealloc` is forwarded uncounted but does
/// debit the live-byte gauge backing [`live_bytes`]/[`peak_bytes`].
pub struct CountingAlloc;

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialized and `Cell<u64>` has no destructor, so touching it
    // from inside the allocator can neither allocate nor re-enter.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_one() {
    GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    // `try_with` instead of `with`: the allocator must never panic, and
    // a TLS destructor running during thread teardown may still allocate
    // after this thread's TLS is gone.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

#[inline]
fn credit_bytes(n: u64) {
    let live = LIVE_BYTES.fetch_add(n, Ordering::Relaxed) + n;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn debit_bytes(n: u64) {
    LIVE_BYTES.fetch_sub(n, Ordering::Relaxed);
}

/// Total allocation calls across all threads since process start.
pub fn global_allocs() -> u64 {
    GLOBAL_ALLOCS.load(Ordering::Relaxed)
}

/// Bytes currently live on the heap (allocated, not yet freed), summed
/// across all threads.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start or the last
/// [`reset_peak_bytes`].
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Restart the high-water mark from the current live-byte level, so a
/// harness can measure the peak of one phase in isolation. Concurrent
/// allocations may land between the two loads; callers serialize phases
/// (this is a measurement hook, not a synchronization point).
pub fn reset_peak_bytes() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Allocation calls made by the current thread since it started.
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

// SAFETY: defers every operation to `System` unchanged; the counters are a
// relaxed atomic increment and a const-initialized `Cell` bump, neither of
// which allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards to `System` with the caller's layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: same layout contract as our caller's.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            credit_bytes(layout.size() as u64);
        }
        ptr
    }

    // SAFETY: forwards to `System`; every pointer we hand out came from it.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        debit_bytes(layout.size() as u64);
        // SAFETY: `ptr` was produced by `System` in `alloc`/`realloc`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards to `System`; every pointer we hand out came from it.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        // SAFETY: `ptr` was produced by `System`; layout/new_size contract
        // is our caller's.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            debit_bytes(layout.size() as u64);
            credit_bytes(new_size as u64);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests run without `CountingAlloc` installed as the global
    // allocator (unit tests share the default test harness allocator), so
    // they exercise the counter plumbing directly.

    #[test]
    fn counters_start_consistent_and_increment() {
        let g0 = global_allocs();
        let t0 = thread_allocs();
        count_one();
        count_one();
        assert_eq!(thread_allocs(), t0 + 2);
        assert!(global_allocs() >= g0 + 2);
    }

    #[test]
    fn byte_gauge_tracks_live_and_peak() {
        // Exercise the gauge plumbing directly (the test harness does not
        // install CountingAlloc). Other tests in this binary do not touch
        // the byte counters, so the deltas here are exact.
        let base = live_bytes();
        credit_bytes(1000);
        credit_bytes(500);
        assert_eq!(live_bytes(), base + 1500);
        assert!(peak_bytes() >= base + 1500);
        debit_bytes(1200);
        assert_eq!(live_bytes(), base + 300);
        assert!(peak_bytes() >= base + 1500, "peak survives frees");
        reset_peak_bytes();
        assert_eq!(peak_bytes(), live_bytes(), "reset re-anchors at live");
        debit_bytes(300);
    }

    #[test]
    fn thread_counts_are_isolated() {
        count_one();
        let mine = thread_allocs();
        let theirs = std::thread::spawn(thread_allocs).join().unwrap();
        assert_eq!(theirs, 0, "fresh thread starts at zero");
        assert_eq!(thread_allocs(), mine, "other threads do not bleed in");
    }
}
