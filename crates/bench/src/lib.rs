//! Shared harness for the figure-regeneration binaries and criterion
//! benches.
//!
//! Every table/figure of the paper has a `fig*` binary (see DESIGN.md §4)
//! built from the helpers here: workload construction, host measurement,
//! and the measured-costs → SMP-model projection that stands in for the
//! paper's 4-CPU Intel / 16-CPU SGI machines (DESIGN.md §2).

#[cfg(feature = "alloc-count")]
pub mod alloc_count;

use pj2k_cachesim::{
    horizontal_filter_trace, vertical_naive_trace, vertical_strip_trace, CacheConfig,
    FilterTraceParams,
};
use pj2k_core::{Encoder, EncoderConfig, FilterStrategy, ParallelMode, RateControl};
use pj2k_dwt::{forward_97, DwtStats, VerticalStrategy};
use pj2k_image::{synth, Image, Plane};
use pj2k_parutil::Exec;
use pj2k_smpsim::{bus_makespan, BusParams, Schedule, WorkItem};
use std::time::Instant;

/// Kpixel sizes used by the figure binaries.
///
/// Defaults to a laptop-friendly subset; set `PJ2K_FULL=1` for the paper's
/// full sweep (256..16384 Kpixel — the 16-Mpixel points take minutes per
/// codec on one core).
pub fn sizes_kpixel() -> Vec<usize> {
    if std::env::var("PJ2K_FULL").is_ok_and(|v| v == "1") {
        synth::PAPER_SIZES_KPIXEL.to_vec()
    } else {
        vec![256, 1024, 4096]
    }
}

/// Square side for a Kpixel count.
pub fn side(kpx: usize) -> usize {
    synth::side_for_kpixels(kpx)
}

/// The deterministic test image for a Kpixel count.
pub fn test_image(kpx: usize) -> Image {
    let s = side(kpx);
    synth::natural_gray(s, s, 0xA5A5 + kpx as u64)
}

/// Paper-default encoder configuration at 1 bpp.
pub fn paper_config() -> EncoderConfig {
    EncoderConfig {
        rate: RateControl::TargetBpp(vec![1.0]),
        ..EncoderConfig::default()
    }
}

/// Wall-clock one closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Print a row of right-aligned columns after a left-aligned label.
pub fn row(label: &str, cols: &[String]) {
    print!("{label:<34}");
    for c in cols {
        print!(" {c:>12}");
    }
    println!();
}

/// Format seconds as milliseconds.
pub fn ms(t: f64) -> String {
    format!("{:.1}", t * 1e3)
}

/// Format a speedup factor.
pub fn x(v: f64) -> String {
    format!("{v:.2}x")
}

// ---------------------------------------------------------------------------
// Filtering measurement + projection (Figs. 7, 8, 10, 11 substrate)
// ---------------------------------------------------------------------------

/// Measured serial filtering times plus modeled per-column work items for
/// one multi-level 9/7 transform of a `side x side` plane.
pub struct FilteringProfile {
    /// Host-measured serial vertical/horizontal times, naive strategy.
    pub naive: DwtStats,
    /// Host-measured serial vertical/horizontal times, strip strategy.
    pub strip: DwtStats,
    /// Per-column work items (vertical pass, naive): compute + miss bytes.
    pub naive_items: Vec<WorkItem>,
    /// Per-column work items (vertical pass, strip).
    pub strip_items: Vec<WorkItem>,
    /// Per-row work items (horizontal pass).
    pub horiz_items: Vec<WorkItem>,
}

/// Build a [`FilteringProfile`] for a `side x side` 9/7 transform with
/// `levels` levels.
///
/// Calibration: both strategies are *measured* serially on the host; the
/// cache simulator supplies the miss-traffic ratio between them, from
/// which a per-byte stall cost is derived
/// (`kappa = (t_naive - t_strip) / (traffic_naive - traffic_strip)`).
/// Each strategy's work items then carry `compute = t - kappa * traffic`
/// and `stall = kappa * traffic` (stall capped at half the measured time,
/// since the host's prefetchers make streaming traffic cheaper than the
/// trace's byte count suggests).
pub fn filtering_profile(side: usize, levels: u8) -> FilteringProfile {
    let mk = || {
        let mut p = Plane::<f32>::new(side, side);
        for y in 0..side {
            for (xx, v) in p.row_mut(y).iter_mut().enumerate() {
                *v = ((xx * 31 + y * 17) % 251) as f32 - 125.0;
            }
        }
        p
    };
    let mut p1 = mk();
    let (_, naive) = forward_97(&mut p1, levels, VerticalStrategy::Naive, &Exec::SEQ);
    let mut p2 = mk();
    let (_, strip) = forward_97(&mut p2, levels, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);

    // Cache-simulated traffic, summed over levels (region halves each
    // level). Simulating every column of a 4096^2 image is slow, so the
    // trace samples a window of columns and scales: conflict-miss
    // behaviour is homogeneous across columns.
    let cfg = CacheConfig::PENTIUM2_L1D;
    let mut m_naive = 0f64;
    let mut m_strip = 0f64;
    let mut m_horiz = 0f64;
    let mut w = side;
    let mut h = side;
    for _ in 0..levels {
        let sample_cols = w.min(64);
        let params = FilterTraceParams::f32_97(sample_cols, h, side);
        let scale = w as f64 / sample_cols as f64;
        m_naive += vertical_naive_trace(&params, cfg).miss_bytes(&cfg) as f64 * scale;
        m_strip += vertical_strip_trace(&params, 16, cfg).miss_bytes(&cfg) as f64 * scale;
        let sample_rows = h.min(64);
        let hparams = FilterTraceParams::f32_97(w, sample_rows, side);
        m_horiz += horizontal_filter_trace(&hparams, cfg).miss_bytes(&cfg) as f64
            * (h as f64 / sample_rows as f64);
        w = w.div_ceil(2);
        h = h.div_ceil(2);
    }

    let t_naive = naive.vertical.as_secs_f64();
    let t_strip = strip.vertical.as_secs_f64();
    let t_horiz = naive.horizontal.as_secs_f64();
    let kappa = if m_naive > m_strip && t_naive > t_strip {
        (t_naive - t_strip) / (m_naive - m_strip)
    } else {
        0.0
    };
    let split = |t: f64, traffic: f64| -> (f64, f64) {
        let stall = (kappa * traffic).min(0.5 * t);
        (t - stall, stall)
    };
    let (c_strip, s_strip) = split(t_strip, m_strip);
    // Naive shares the strip's arithmetic; everything beyond it is stall.
    let c_naive = c_strip;
    let s_naive = (t_naive - c_naive).max(0.0);
    let (c_horiz, s_horiz) = split(t_horiz, m_horiz);

    let n_items = side.max(1);
    let per = |c: f64, st: f64| -> Vec<WorkItem> {
        (0..n_items)
            .map(|_| WorkItem {
                compute: c / n_items as f64,
                stall: st / n_items as f64,
            })
            .collect()
    };
    FilteringProfile {
        naive_items: per(c_naive, s_naive),
        strip_items: per(c_strip, s_strip),
        horiz_items: per(c_horiz, s_horiz),
        naive,
        strip,
    }
}

/// Projected wall time of a filtering pass on `p` virtual CPUs.
pub fn project_filtering(items: &[WorkItem], p: usize, bus: BusParams) -> f64 {
    bus_makespan(items, p, Schedule::StaticBlock, bus)
}

// ---------------------------------------------------------------------------
// Whole-encoder projection (Figs. 6, 9, 12, 13 substrate)
// ---------------------------------------------------------------------------

/// Measured serial stage times plus the ingredients to project them onto
/// `p` virtual CPUs.
pub struct EncodeProfile {
    /// Serial per-stage seconds, in [`pj2k_core::report::stage::ALL`] order.
    pub stage_secs: Vec<(String, f64)>,
    /// Per-code-block Tier-1 seconds.
    pub block_times: Vec<f64>,
    /// Vertical/horizontal DWT split.
    pub dwt: DwtStats,
    /// Filtering projection items for the DWT stage.
    pub filtering: FilteringProfile,
    /// The strategy the profile was measured with (anchors the model
    /// scale).
    pub filter: FilterStrategy,
    /// Bytes produced.
    pub bytes: usize,
}

/// Measure a sequential encode of `img` under `filter`.
pub fn encode_profile(img: &Image, filter: FilterStrategy, levels: u8) -> EncodeProfile {
    let cfg = EncoderConfig {
        filter,
        levels,
        parallel: ParallelMode::Sequential,
        ..paper_config()
    };
    let encoder = Encoder::new(cfg).expect("valid config");
    let (bytes, report) = encoder.encode(img);
    let filtering = filtering_profile(img.width().min(1024), levels);
    EncodeProfile {
        stage_secs: report
            .stages
            .iter()
            .map(|(n, d)| (n.to_string(), d.as_secs_f64()))
            .collect(),
        block_times: report.block_times,
        dwt: report.dwt,
        filtering,
        filter,
        bytes: bytes.len(),
    }
}

/// Project the total encode time of a measured profile onto `p` virtual
/// CPUs: DWT through the bus model (scaled to the measured magnitude),
/// Tier-1 through the staggered-round-robin makespan, quantization through
/// a static split, everything else sequential. Returns (total, per-stage).
pub fn project_encode(
    profile: &EncodeProfile,
    p: usize,
    strip_filtering: bool,
    bus: BusParams,
) -> (f64, Vec<(String, f64)>) {
    use pj2k_core::report::stage;
    let fp = &profile.filtering;
    // Scale factor from the (possibly smaller) filtering-profile plane to
    // the measured DWT magnitude — anchored on the strategy the profile
    // was *measured* with, so projecting the other strategy preserves the
    // model's cache gain instead of cancelling it.
    let measured_dwt = profile.dwt.total().as_secs_f64();
    let anchor_serial = match profile.filter {
        FilterStrategy::Strip => fp.strip.total().as_secs_f64(),
        _ => fp.naive.total().as_secs_f64(),
    };
    let v_items = if strip_filtering {
        &fp.strip_items
    } else {
        &fp.naive_items
    };
    let scale = if anchor_serial > 0.0 {
        measured_dwt / anchor_serial
    } else {
        1.0
    };
    let dwt_p =
        (project_filtering(v_items, p, bus) + project_filtering(&fp.horiz_items, p, bus)) * scale;

    let tier1_p = pj2k_smpsim::makespan(&profile.block_times, p, Schedule::StaggeredRoundRobin);
    let mut total = 0.0;
    let mut stages = Vec::new();
    for (name, secs) in &profile.stage_secs {
        let t = match name.as_str() {
            stage::INTRA_COMPONENT => dwt_p,
            stage::TIER1 => tier1_p,
            stage::QUANTIZATION => *secs / p as f64,
            _ => *secs,
        };
        stages.push((name.clone(), t));
        total += t;
    }
    (total, stages)
}

/// Shared driver for Figs. 6 and 9 (parallel per-stage breakdown at 4
/// virtual CPUs; they differ only in filter strategy).
pub fn parallel_breakdown(filter: FilterStrategy, fig: &str, desc: &str) {
    let p = 4;
    println!("{fig} — parallel runtime analysis, {p} virtual CPUs, {desc}\n");
    for kpx in sizes_kpixel() {
        let img = test_image(kpx);
        let profile = encode_profile(&img, filter, 5);
        let strip = filter == FilterStrategy::Strip;
        let (serial_total, _) = project_encode(&profile, 1, strip, BusParams::PENTIUM2_FSB);
        let (par_total, stages) = project_encode(&profile, p, strip, BusParams::PENTIUM2_FSB);
        println!("--- {kpx} Kpixel ---");
        for (name, secs) in &stages {
            println!("  {name:<28} {:>9.1} ms", secs * 1e3);
        }
        println!(
            "  {:<28} {:>9.1} ms   (serial {:.1} ms, modeled speedup {:.2}x)",
            "TOTAL",
            par_total * 1e3,
            serial_total * 1e3,
            serial_total / par_total
        );
        // Honest wall-clock with real threads (speedup bounded by the
        // host's core count).
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        if host >= 2 {
            let cfg = EncoderConfig {
                filter,
                parallel: ParallelMode::WorkerPool {
                    workers: p.min(host),
                },
                ..paper_config()
            };
            let encoder = Encoder::new(cfg).expect("config");
            let (_, t_real) = time(|| encoder.encode(&img));
            println!(
                "  measured threaded total       {:>9.1} ms ({host} host cores)",
                t_real * 1e3
            );
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtering_profile_shows_cache_gap() {
        // Power-of-two side: the naive items must carry far more stall.
        let fp = filtering_profile(512, 3);
        let naive_stall: f64 = fp.naive_items.iter().map(|i| i.stall).sum();
        let strip_stall: f64 = fp.strip_items.iter().map(|i| i.stall).sum();
        assert!(
            naive_stall > 2.0 * strip_stall,
            "naive {naive_stall} vs strip {strip_stall}"
        );
        // Items reproduce the measured serial times.
        let naive_total: f64 = fp.naive_items.iter().map(|i| i.compute + i.stall).sum();
        assert!((naive_total - fp.naive.vertical.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn projection_shows_paper_shape() {
        let fp = filtering_profile(512, 3);
        let bus = BusParams::PENTIUM2_FSB;
        let naive_1 = project_filtering(&fp.naive_items, 1, bus);
        let naive_4 = project_filtering(&fp.naive_items, 4, bus);
        let strip_1 = project_filtering(&fp.strip_items, 1, bus);
        let strip_4 = project_filtering(&fp.strip_items, 4, bus);
        let s_naive = naive_1 / naive_4;
        let s_strip = strip_1 / strip_4;
        // On quiet hosts the measured naive stall can be ~0, leaving both
        // projections at exactly p; tolerate float dust in that tie.
        assert!(
            s_strip > s_naive - 1e-6,
            "strip should scale no worse: {s_strip} vs {s_naive}"
        );
    }

    #[test]
    fn encode_projection_is_consistent() {
        let img = test_image(64); // 256x256
        let profile = encode_profile(&img, FilterStrategy::Naive, 4);
        let (t1, _) = project_encode(&profile, 1, false, BusParams::PENTIUM2_FSB);
        let (t4, stages4) = project_encode(&profile, 4, false, BusParams::PENTIUM2_FSB);
        assert!(t4 <= t1 * 1.05, "more CPUs cannot be slower: {t1} -> {t4}");
        assert_eq!(stages4.len(), profile.stage_secs.len());
        // Serial stages unchanged.
        for ((n1, s1), (n4, s4)) in profile.stage_secs.iter().zip(&stages4) {
            assert_eq!(n1, n4);
            if n1 == pj2k_core::report::stage::RD_ALLOCATION {
                assert!((s1 - s4).abs() < 1e-12);
            }
        }
    }
}
