//! Fig. 2 — Compression timings: encode time vs image size for JPEG,
//! SPIHT, and the JPEG2000 codec under both of the paper's parallelization
//! backends (JJ2000-style worker pool / Jasper-style loop splitting), run
//! sequentially here as the paper's Fig. 2 is a serial comparison.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig02_codec_comparison
//! PJ2K_FULL=1 cargo run ... # the paper's full 256..16384 Kpixel sweep
//! ```

use pj2k_bench::{ms, row, sizes_kpixel, test_image, time};
use pj2k_core::{Encoder, EncoderConfig, RateControl};

fn main() {
    println!("Fig. 2 — compression timings (encode wall-clock, ms)\n");
    row(
        "image size (Kpixel)",
        &["JPEG".into(), "SPIHT".into(), "pj2k (j2k)".into()],
    );
    for kpx in sizes_kpixel() {
        let img = test_image(kpx);
        let (_, t_jpeg) = time(|| pj2k_jpegbase::encode(&img, 75).expect("jpeg"));
        let levels = 5u8;
        let (_, t_spiht) = time(|| pj2k_spiht::encode(&img, levels, 1.0).expect("spiht"));
        let cfg = EncoderConfig {
            rate: RateControl::TargetBpp(vec![1.0]),
            ..EncoderConfig::default()
        };
        let encoder = Encoder::new(cfg).expect("config");
        let (_, t_j2k) = time(|| encoder.encode(&img));
        row(&format!("{kpx}"), &[ms(t_jpeg), ms(t_spiht), ms(t_j2k)]);
    }
    println!(
        "\nExpected shape (paper): JPEG fastest by a wide margin, JPEG2000\n\
         slowest, SPIHT in between; all grow ~linearly with pixel count."
    );
}
