//! Fig. 5 — The impact of tile-based parallelization on image quality:
//! PSNR vs bitrate for the tile sizes the paper maps to CPU counts
//! (512 = 1 CPU, 256x256 = 4 CPUs, ... 32x32 = 256 CPUs).
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig05_tiling_rd
//! ```

use pj2k_core::{Decoder, Encoder, EncoderConfig, RateControl};
use pj2k_image::metrics::psnr;
use pj2k_image::synth;

fn main() {
    let side = 512;
    let img = synth::natural_gray(side, side, 1234);
    let bitrates = [2.0, 1.0, 0.5, 0.25, 0.125, 0.0625];
    let tiles: [(usize, &str); 5] = [
        (512, "1 CPU (512x512)"),
        (256, "4 CPUs (256x256)"),
        (128, "16 CPUs (128x128)"),
        (64, "64 CPUs (64x64)"),
        (32, "256 CPUs (32x32)"),
    ];
    println!("Fig. 5 — PSNR (dB) vs bitrate for tile-based parallelization\n");
    print!("{:<20}", "bitrate (bpp)");
    for (_, label) in &tiles {
        print!(" {label:>18}");
    }
    println!();
    for &bpp in &bitrates {
        print!("{bpp:<20}");
        for &(tile, _) in &tiles {
            let cfg = EncoderConfig {
                rate: RateControl::TargetBpp(vec![bpp]),
                tiles: if tile == side {
                    None
                } else {
                    Some((tile, tile))
                },
                ..EncoderConfig::default()
            };
            let (bytes, _) = Encoder::new(cfg).expect("config").encode(&img);
            let (out, _) = Decoder::default().decode(&bytes).expect("decode");
            print!(" {:>18.2}", psnr(&img, &out));
        }
        println!();
    }
    println!(
        "\nExpected shape (paper): quality degrades monotonically as tiles\n\
         shrink, and the gap widens toward low bitrates (blocking artifacts)."
    );
}
