//! §3.2 — The cache diagnosis, verified directly: how many cache sets an
//! image column touches, and the miss rates of the three filtering
//! strategies on the paper's Pentium II L1 geometry (16 KiB / 4-way /
//! 32-byte lines).
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin cache_analysis
//! ```

use pj2k_cachesim::{vertical_naive_trace, vertical_strip_trace, CacheConfig, FilterTraceParams};

fn main() {
    let cfg = CacheConfig::PENTIUM2_L1D;
    println!(
        "Cache: {} KiB, {}-way, {}-byte lines ({} sets)\n",
        cfg.size_bytes / 1024,
        cfg.ways,
        cfg.line_bytes,
        cfg.sets()
    );

    println!("column -> cache-set spread (f32 samples, 256 rows):");
    println!("{:<26} {:>14}", "row pitch", "distinct sets");
    for (label, stride) in [
        ("1024 (power of two)", 1024usize),
        ("2048 (power of two)", 2048),
        ("4096 (power of two)", 4096),
        ("4096 + 8 pad", 4104),
        ("4100 (odd width)", 4100),
    ] {
        println!("{label:<26} {:>14}", cfg.column_sets(stride * 4, 256));
    }

    println!("\nmiss rates of vertical filtering over 64 columns x 1024 rows:");
    println!(
        "{:<26} {:>12} {:>14} {:>12}",
        "row pitch", "naive", "naive+pad", "strip(16)"
    );
    for width in [1024usize, 2048, 4096] {
        let p = FilterTraceParams::f32_97(64, 1024, width);
        let padded = FilterTraceParams {
            stride: width + 8,
            ..p
        };
        println!(
            "{:<26} {:>11.1}% {:>13.1}% {:>11.1}%",
            width,
            100.0 * vertical_naive_trace(&p, cfg).miss_rate(),
            100.0 * vertical_naive_trace(&padded, cfg).miss_rate(),
            100.0 * vertical_strip_trace(&p, 16, cfg).miss_rate(),
        );
    }
    println!(
        "\nExpected shape (paper §3.2): power-of-two pitches collapse each\n\
         column onto one set (miss rate ~100% for the naive walker); both\n\
         fixes — padding the pitch and strip filtering — cut misses by an\n\
         order of magnitude, strip being the stronger of the two."
    );
}
