//! Fig. 3 — Serial runtime analysis: per-stage encode breakdown across
//! image sizes (the chart that identifies the wavelet transform and tier-1
//! coding as the parallelization targets).
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig03_serial_breakdown
//! ```

use pj2k_bench::{paper_config, sizes_kpixel, test_image};
use pj2k_core::report::stage;
use pj2k_core::Encoder;

fn main() {
    println!("Fig. 3 — serial runtime analysis (ms per stage)\n");
    let sizes = sizes_kpixel();
    print!("{:<28}", "stage");
    for kpx in &sizes {
        print!(" {:>10}", format!("{kpx} Kpx"));
    }
    println!();

    let mut tables = Vec::new();
    for kpx in &sizes {
        let img = test_image(*kpx);
        let encoder = Encoder::new(paper_config()).expect("config");
        // The paper's "image I/O" stage is reading the raw picture; time a
        // PGM store + load of the same material.
        let t0 = std::time::Instant::now();
        let mut pgm = Vec::new();
        pj2k_image::pnm::write(&mut pgm, &img).expect("pgm write");
        let img = pj2k_image::pnm::read(&mut std::io::Cursor::new(pgm)).expect("pgm read");
        let io_time = t0.elapsed();
        let (_, mut report) = encoder.encode(&img);
        report.stages.add(stage::IMAGE_IO, io_time);
        tables.push(report);
    }
    for s in stage::ALL {
        print!("{s:<28}");
        for report in &tables {
            print!(" {:>10.1}", report.stages.get(s).as_secs_f64() * 1e3);
        }
        println!();
    }
    print!("{:<28}", "TOTAL");
    for report in &tables {
        print!(" {:>10.1}", report.stages.total().as_secs_f64() * 1e3);
    }
    println!();
    print!("{:<28}", "parallelizable fraction");
    for report in &tables {
        let par: f64 = stage::PARALLEL
            .iter()
            .map(|s| report.stages.get(s).as_secs_f64())
            .sum();
        print!(
            " {:>9.0}%",
            100.0 * par / report.stages.total().as_secs_f64()
        );
    }
    println!();
    println!(
        "\nExpected shape (paper): the intra-component transform (DWT) is the\n\
         most expensive stage, tier-1 coding second; image/bitstream I/O,\n\
         setup, and R/D allocation are comparatively small and sequential."
    );
}
