//! Tier-1 throughput trajectory harness.
//!
//! Emits `BENCH_tier1.json` with three measurements that track this
//! workspace's Tier-1 performance over time:
//!
//! 1. **Scratch-arena microbenchmark**: blocks/sec and heap allocations
//!    per block for the seed path (a fresh coefficient buffer and a fresh
//!    [`pj2k_ebcot::encode_block_with`] per block) versus the reused
//!    [`pj2k_ebcot::BlockCoder`] per-worker arena.
//! 2. **Whole-encoder schedule sweep**: wall-clock encode time at
//!    p ∈ {1, 2, 4, 8} workers under the paper's staggered round-robin
//!    schedule and under dynamic self-scheduling.
//! 3. **Modeled makespans** from the measured per-block times, so the
//!    wall-clock numbers can be compared against the scheduling model.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin bench_tier1 -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the workload for CI: it validates the harness and the
//! JSON schema, not the performance numbers.

use pj2k_bench::{test_image, time};
use pj2k_core::{Encoder, EncoderConfig, ParallelMode, RateControl, Schedule};
use pj2k_ebcot::{encode_block_with, BandCtx, BlockCoder, Tier1Options};
use pj2k_smpsim::makespan;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap-allocation counter wrapped around the system allocator, so the
/// microbenchmark can report real allocations avoided per block.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is a
// relaxed atomic increment with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards to `System` with the caller's layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards to `System`; every pointer we hand out came from it.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System` in `alloc`/`realloc`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards to `System`; every pointer we hand out came from it.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` was produced by `System`; layout/new_size contract
        // is our caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Deterministic synthetic 64x64 code-blocks with subband-like sparsity.
fn synth_blocks(n: usize) -> Vec<Vec<i32>> {
    let mut state = 0x5DEECE66Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    (0..n)
        .map(|b| {
            // Sparser, smaller coefficients for "finer" blocks, like a real
            // resolution pyramid.
            let keep = 16 + (b % 8) * 8; // percent * 1.28
            (0..64 * 64)
                .map(|_| {
                    let r = next();
                    if (r >> 32) % 128 < keep as u64 {
                        (((r >> 40) & 0xFF) as i32) - 128
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect()
}

fn band_of(i: usize) -> BandCtx {
    match i % 3 {
        0 => BandCtx::LlLh,
        1 => BandCtx::Hl,
        _ => BandCtx::Hh,
    }
}

struct MicroResult {
    secs: f64,
    blocks_per_sec: f64,
    allocs_per_block: f64,
}

fn micro(blocks: &[Vec<i32>], reps: usize, scratch: bool) -> MicroResult {
    let opts = Tier1Options::default();
    let n = blocks.len() * reps;
    // Best of three trials: per-block coding is ~ms-scale, so a single
    // trial is at the mercy of the host scheduler.
    const TRIALS: usize = 3;
    let a0 = allocs();
    let mut secs = f64::INFINITY;
    for _ in 0..TRIALS {
        let (_, t) = time(|| {
            let mut coder = BlockCoder::new();
            let mut sink = 0usize;
            for _ in 0..reps {
                for (i, coeffs) in blocks.iter().enumerate() {
                    let blk = if scratch {
                        coder.coeff_scratch().extend_from_slice(coeffs);
                        coder.encode_scratch(64, 64, band_of(i), opts)
                    } else {
                        // The seed path: a fresh coefficient buffer and a
                        // fresh single-use encoder per block.
                        let copy = coeffs.to_vec();
                        encode_block_with(&copy, 64, 64, band_of(i), opts)
                    };
                    sink += blk.data.len();
                }
            }
            sink
        });
        secs = secs.min(t);
    }
    let spent = (allocs() - a0) as f64;
    MicroResult {
        secs,
        blocks_per_sec: if secs > 0.0 { n as f64 / secs } else { 0.0 },
        allocs_per_block: spent / (n * TRIALS) as f64,
    }
}

fn encoder_cfg(p: usize, schedule: Schedule) -> EncoderConfig {
    EncoderConfig {
        rate: RateControl::TargetBpp(vec![1.0]),
        parallel: if p == 1 {
            ParallelMode::Sequential
        } else {
            ParallelMode::WorkerPool { workers: p }
        },
        tier1_schedule: schedule,
        ..EncoderConfig::default()
    }
}

fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_string()
    }
}

/// Keys the emitted document must contain; checked after writing so a
/// refactor cannot silently change the schema consumers parse.
const REQUIRED_KEYS: &[&str] = &[
    "\"schema\"",
    "\"smoke\"",
    "\"microbench\"",
    "\"seed_path\"",
    "\"scratch_path\"",
    "\"blocks_per_sec\"",
    "\"allocs_per_block\"",
    "\"scratch_speedup\"",
    "\"allocs_avoided_per_block\"",
    "\"encoder\"",
    "\"staggered_secs\"",
    "\"dynamic_secs\"",
    "\"dynamic_over_staggered\"",
    "\"modeled_staggered_speedup\"",
    "\"modeled_dynamic_speedup\"",
];

fn validate(doc: &str) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !doc.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    if opens == 0 || opens != closes {
        return Err(format!("unbalanced braces: {opens} vs {closes}"));
    }
    if doc.matches('[').count() != doc.matches(']').count() {
        return Err("unbalanced brackets".to_string());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_tier1.json".to_string());

    let (n_blocks, reps, kpx) = if smoke { (8, 2, 64) } else { (96, 10, 1024) };

    // --- microbenchmark: seed path vs scratch arenas ---------------------
    let blocks = synth_blocks(n_blocks);
    // Cross-check first: both paths must produce identical streams.
    let mut coder = BlockCoder::new();
    for (i, c) in blocks.iter().enumerate() {
        let a = encode_block_with(c, 64, 64, band_of(i), Tier1Options::default());
        let b = coder.encode_with(c, 64, 64, band_of(i), Tier1Options::default());
        assert_eq!(a.data, b.data, "scratch arena changed the bitstream");
    }
    // Untimed warm-up of both paths, then measure.
    let _ = micro(&blocks, 1, false);
    let _ = micro(&blocks, 1, true);
    let seed = micro(&blocks, reps, false);
    let scratch = micro(&blocks, reps, true);
    let speedup = if scratch.secs > 0.0 {
        seed.secs / scratch.secs
    } else {
        1.0
    };
    let avoided = (seed.allocs_per_block - scratch.allocs_per_block).max(0.0);
    println!(
        "microbench: {n_blocks} blocks x {reps} reps — seed {:.1} blk/s ({:.1} allocs/blk), \
         scratch {:.1} blk/s ({:.1} allocs/blk), speedup {speedup:.3}x",
        seed.blocks_per_sec,
        seed.allocs_per_block,
        scratch.blocks_per_sec,
        scratch.allocs_per_block
    );

    // --- whole-encoder schedule sweep ------------------------------------
    let img = test_image(kpx);
    // One sequential run supplies the per-block costs for the model.
    let profile_enc = Encoder::new(encoder_cfg(1, Schedule::StaggeredRoundRobin)).expect("config");
    let (_, profile) = profile_enc.encode(&img);
    let costs = &profile.block_times;
    let tier1_total: f64 = costs.iter().sum();

    // Chunk 1: one atomic claim per ~ms-scale block is negligible
    // traffic, and fine chunks give the best balance.
    let dynamic = Schedule::Dynamic { chunk: 1 };
    let mut rows = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let stag_enc = Encoder::new(encoder_cfg(p, Schedule::StaggeredRoundRobin)).expect("config");
        let (_, t_stag) = time(|| stag_enc.encode(&img));
        let dyn_enc = Encoder::new(encoder_cfg(p, dynamic)).expect("config");
        let (_, t_dyn) = time(|| dyn_enc.encode(&img));
        let m_stag = makespan(costs, p, Schedule::StaggeredRoundRobin);
        let m_dyn = makespan(costs, p, dynamic);
        let row = (
            p,
            t_stag,
            t_dyn,
            t_stag / t_dyn,
            if m_stag > 0.0 {
                tier1_total / m_stag
            } else {
                1.0
            },
            if m_dyn > 0.0 {
                tier1_total / m_dyn
            } else {
                1.0
            },
        );
        println!(
            "encoder p={}: staggered {:.1} ms, dynamic {:.1} ms (x{:.3}); modeled tier-1 \
             speedup {:.2} vs {:.2}",
            row.0,
            row.1 * 1e3,
            row.2 * 1e3,
            row.3,
            row.4,
            row.5
        );
        rows.push(row);
    }

    // --- hand-rolled JSON -------------------------------------------------
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"schema\": \"pj2k.bench_tier1.v1\",\n");
    doc.push_str(&format!("  \"smoke\": {smoke},\n"));
    doc.push_str(&format!("  \"kpixels\": {kpx},\n"));
    doc.push_str("  \"microbench\": {\n");
    doc.push_str(&format!("    \"blocks\": {n_blocks},\n"));
    doc.push_str(&format!("    \"reps\": {reps},\n"));
    doc.push_str("    \"block_size\": [64, 64],\n");
    for (name, m) in [("seed_path", &seed), ("scratch_path", &scratch)] {
        doc.push_str(&format!(
            "    \"{name}\": {{ \"secs\": {}, \"blocks_per_sec\": {}, \"allocs_per_block\": {} }},\n",
            jf(m.secs),
            jf(m.blocks_per_sec),
            jf(m.allocs_per_block)
        ));
    }
    doc.push_str(&format!("    \"scratch_speedup\": {},\n", jf(speedup)));
    doc.push_str(&format!(
        "    \"allocs_avoided_per_block\": {}\n",
        jf(avoided)
    ));
    doc.push_str("  },\n");
    doc.push_str("  \"dynamic_chunk\": 1,\n  \"encoder\": [\n");
    for (i, (p, t_stag, t_dyn, rel, ms_stag, ms_dyn)) in rows.iter().enumerate() {
        doc.push_str(&format!(
            "    {{ \"p\": {p}, \"staggered_secs\": {}, \"dynamic_secs\": {}, \
             \"dynamic_over_staggered\": {}, \"modeled_staggered_speedup\": {}, \
             \"modeled_dynamic_speedup\": {} }}{}\n",
            jf(*t_stag),
            jf(*t_dyn),
            jf(*rel),
            jf(*ms_stag),
            jf(*ms_dyn),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ]\n}\n");

    std::fs::write(&out_path, &doc).expect("write benchmark JSON");
    let written = std::fs::read_to_string(&out_path).expect("re-read benchmark JSON");
    if let Err(e) = validate(&written) {
        eprintln!("BENCH_tier1 schema validation failed: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} bytes, schema OK)", written.len());
}
