//! Tier-1 throughput trajectory harness.
//!
//! Emits `BENCH_tier1.json` (schema `pj2k.bench_tier1.v3`) with six
//! measurements that track this workspace's Tier-1 performance over time:
//!
//! 1. **Scratch-arena microbenchmark**: blocks/sec and heap allocations
//!    per block for the seed path (a fresh coefficient buffer and a fresh
//!    [`pj2k_ebcot::encode_block_with`] per block) versus the reused
//!    [`pj2k_ebcot::BlockCoder`] per-worker arena refilling a recycled
//!    [`pj2k_ebcot::EncodedBlock`] — the steady-state arena path must stay
//!    allocation-free (enforced below).
//! 2. **Engine ablation**: the same arena loop pinned to
//!    [`Tier1Engine::Reference`] and [`Tier1Engine::Bitplane`];
//!    `bitplane_speedup` is their blocks/sec ratio, measured in the same
//!    run and required to be > 1 (the bitplane engine must beat the
//!    reference engine it replaced as default).
//! 3. **Per-pass breakdown** for both engines: wall-clock seconds and
//!    exact decision counts of the significance-propagation, refinement,
//!    and cleanup passes (via [`pj2k_ebcot::Tier1Profile`]).
//! 4. **Per-component estimate**: a calibrated MQ cost-per-decision splits
//!    each engine's time into entropy coding vs context formation.
//! 5. **Whole-encoder schedule sweep** at p ∈ {1, 2, 4, 8} workers
//!    (staggered round-robin vs dynamic self-scheduling) plus modeled
//!    makespans from the measured per-block times.
//! 6. **Steady-state allocation oracle**: the exact per-thread allocation
//!    count of one warm arena pass over every block, which must be zero —
//!    the runtime proof behind the `AUDIT(hot): amortized` justifications
//!    `cargo xtask audit-hotpath` accepts in the Tier-1 closure.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin bench_tier1 -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the workload for CI: it validates the harness, the
//! JSON schema, the allocation floor, and the engine-ordering floor — not
//! absolute performance numbers.

use pj2k_bench::alloc_count::{self, CountingAlloc};
use pj2k_bench::{test_image, time};
use pj2k_core::{Encoder, EncoderConfig, ParallelMode, RateControl, Schedule};
use pj2k_ebcot::{
    encode_block_with, BandCtx, BlockCoder, EncodedBlock, Tier1Engine, Tier1Options, Tier1Profile,
};
use pj2k_mq::MqEncoder;
use pj2k_smpsim::makespan;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    alloc_count::global_allocs()
}

/// Deterministic synthetic 64x64 code-blocks with subband-like sparsity.
fn synth_blocks(n: usize) -> Vec<Vec<i32>> {
    let mut state = 0x5DEECE66Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    (0..n)
        .map(|b| {
            // Pyramid-weighted density mix. A dyadic decomposition puts
            // 3/4 of its area — and with fixed 64x64 code-blocks, 3/4 of
            // its blocks — in the finest detail subbands, ~3/16 in the next
            // level, and the remainder in coarse levels plus the dense LL
            // band, so per 8 blocks: six sparse finest-level blocks, one
            // mid-level, one dense LL-like. Values are keep thresholds out
            // of 128 (~3%..55% nonzero).
            let keep = [4usize, 4, 4, 4, 4, 4, 12, 70][b % 8];
            (0..64 * 64)
                .map(|_| {
                    let r = next();
                    if (r >> 32) % 128 < keep as u64 {
                        (((r >> 40) & 0xFF) as i32) - 128
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect()
}

fn band_of(i: usize) -> BandCtx {
    match i % 3 {
        0 => BandCtx::LlLh,
        1 => BandCtx::Hl,
        _ => BandCtx::Hh,
    }
}

struct MicroResult {
    secs: f64,
    blocks_per_sec: f64,
    allocs_per_block: f64,
}

/// The seed path: a fresh coefficient buffer and a fresh single-use
/// encoder per block (what the first version of this workspace shipped).
fn micro_seed(blocks: &[Vec<i32>], reps: usize) -> MicroResult {
    let opts = Tier1Options::default();
    let n = blocks.len() * reps;
    // Best of three trials: per-block coding is ~ms-scale, so a single
    // trial is at the mercy of the host scheduler.
    const TRIALS: usize = 3;
    let a0 = allocs();
    let mut secs = f64::INFINITY;
    for _ in 0..TRIALS {
        let (_, t) = time(|| {
            let mut sink = 0usize;
            for _ in 0..reps {
                for (i, coeffs) in blocks.iter().enumerate() {
                    let copy = coeffs.to_vec();
                    let blk = encode_block_with(&copy, 64, 64, band_of(i), opts);
                    sink += blk.data.len();
                }
            }
            sink
        });
        secs = secs.min(t);
    }
    let spent = (allocs() - a0) as f64;
    MicroResult {
        secs,
        blocks_per_sec: if secs > 0.0 { n as f64 / secs } else { 0.0 },
        allocs_per_block: spent / (n * TRIALS) as f64,
    }
}

/// The arena path: one warm [`BlockCoder`] refilling one recycled
/// [`EncodedBlock`]. After the untimed warm-up sized every buffer, the
/// timed region must not allocate at all.
fn micro_arena(blocks: &[Vec<i32>], reps: usize, engine: Tier1Engine) -> MicroResult {
    let opts = Tier1Options::default();
    let n = blocks.len() * reps;
    const TRIALS: usize = 3;
    let mut coder = BlockCoder::with_engine(engine);
    let mut out = EncodedBlock::default();
    // Untimed warm-up: size every scratch buffer for the largest block.
    let mut sink = 0usize;
    for (i, coeffs) in blocks.iter().enumerate() {
        coder.coeff_scratch().extend_from_slice(coeffs);
        coder.encode_scratch_into(64, 64, band_of(i), opts, &mut out);
        sink += out.data.len();
    }
    let a0 = allocs();
    let mut secs = f64::INFINITY;
    for _ in 0..TRIALS {
        let (_, t) = time(|| {
            for _ in 0..reps {
                for (i, coeffs) in blocks.iter().enumerate() {
                    coder.coeff_scratch().extend_from_slice(coeffs);
                    coder.encode_scratch_into(64, 64, band_of(i), opts, &mut out);
                    sink += out.data.len();
                }
            }
            sink
        });
        secs = secs.min(t);
    }
    std::hint::black_box(sink);
    let spent = (allocs() - a0) as f64;
    MicroResult {
        secs,
        blocks_per_sec: if secs > 0.0 { n as f64 / secs } else { 0.0 },
        allocs_per_block: spent / (n * TRIALS) as f64,
    }
}

/// Exact steady-state allocation count of one warm arena pass over every
/// block, from the thread-local counter (immune to other threads): after
/// the warm-up pass has sized every scratch buffer, recycling the coder
/// and output block must allocate nothing at all.
fn steady_state_allocs(blocks: &[Vec<i32>], engine: Tier1Engine) -> u64 {
    let opts = Tier1Options::default();
    let mut coder = BlockCoder::with_engine(engine);
    let mut out = EncodedBlock::default();
    let mut sink = 0usize;
    // Warm-up: size every buffer for the largest block in the set.
    for (i, coeffs) in blocks.iter().enumerate() {
        coder.coeff_scratch().extend_from_slice(coeffs);
        coder.encode_scratch_into(64, 64, band_of(i), opts, &mut out);
        sink += out.data.len();
    }
    let a0 = alloc_count::thread_allocs();
    for (i, coeffs) in blocks.iter().enumerate() {
        coder.coeff_scratch().extend_from_slice(coeffs);
        coder.encode_scratch_into(64, 64, band_of(i), opts, &mut out);
        sink += out.data.len();
    }
    std::hint::black_box(sink);
    alloc_count::thread_allocs() - a0
}

/// Per-pass time/decision breakdown of one engine over the block set.
fn profile_engine(blocks: &[Vec<i32>], reps: usize, engine: Tier1Engine) -> Tier1Profile {
    let opts = Tier1Options::default();
    let mut coder = BlockCoder::with_engine(engine);
    let mut out = EncodedBlock::default();
    let mut profile = Tier1Profile::default();
    for _ in 0..reps {
        for (i, coeffs) in blocks.iter().enumerate() {
            coder.coeff_scratch().extend_from_slice(coeffs);
            coder.encode_scratch_profiled_into(64, 64, band_of(i), opts, &mut profile, &mut out);
        }
    }
    profile
}

/// Calibrated MQ cost per decision (seconds): a pseudo-random decision
/// stream over a rotating context set, best of three trials.
fn mq_cost_per_decision() -> f64 {
    use pj2k_ebcot::context::initial_states;
    const N: usize = 400_000;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut ctx = initial_states();
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let (_, t) = time(|| {
            let mut enc = MqEncoder::new();
            for i in 0..N {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let bit = ((state >> 62) & 1) as u8; // ~50/50: worst case
                enc.encode(&mut ctx[i % 9], bit);
            }
            enc.flush().len()
        });
        best = best.min(t);
    }
    best / N as f64
}

fn encoder_cfg(p: usize, schedule: Schedule) -> EncoderConfig {
    EncoderConfig {
        rate: RateControl::TargetBpp(vec![1.0]),
        parallel: if p == 1 {
            ParallelMode::Sequential
        } else {
            ParallelMode::WorkerPool { workers: p }
        },
        tier1_schedule: schedule,
        ..EncoderConfig::default()
    }
}

fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_string()
    }
}

/// Keys the emitted document must contain; checked after writing so a
/// refactor cannot silently change the schema consumers parse.
const REQUIRED_KEYS: &[&str] = &[
    "\"schema\"",
    "\"smoke\"",
    "\"microbench\"",
    "\"seed_path\"",
    "\"scratch_path\"",
    "\"blocks_per_sec\"",
    "\"allocs_per_block\"",
    "\"scratch_speedup\"",
    "\"allocs_avoided_per_block\"",
    "\"steady_state\"",
    "\"steady_allocs_per_block\"",
    "\"engines\"",
    "\"reference\"",
    "\"bitplane\"",
    "\"bitplane_speedup\"",
    "\"per_pass\"",
    "\"sig_prop\"",
    "\"mag_ref\"",
    "\"cleanup\"",
    "\"decisions\"",
    "\"components\"",
    "\"mq_cost_per_decision_ns\"",
    "\"entropy_secs_est\"",
    "\"context_formation_secs_est\"",
    "\"encoder\"",
    "\"staggered_secs\"",
    "\"dynamic_secs\"",
    "\"dynamic_over_staggered\"",
    "\"modeled_staggered_speedup\"",
    "\"modeled_dynamic_speedup\"",
];

fn validate(doc: &str) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !doc.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    if opens == 0 || opens != closes {
        return Err(format!("unbalanced braces: {opens} vs {closes}"));
    }
    if doc.matches('[').count() != doc.matches(']').count() {
        return Err("unbalanced brackets".to_string());
    }
    Ok(())
}

fn pass_rows(p: &Tier1Profile) -> [(&'static str, f64, u64); 3] {
    [
        ("sig_prop", p.sig_prop_secs, p.sig_prop_decisions),
        ("mag_ref", p.mag_ref_secs, p.mag_ref_decisions),
        ("cleanup", p.cleanup_secs, p.cleanup_decisions),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_tier1.json".to_string());

    let (n_blocks, reps, kpx) = if smoke { (8, 2, 64) } else { (96, 10, 1024) };

    // --- microbenchmark: seed path vs scratch arenas ---------------------
    let blocks = synth_blocks(n_blocks);
    // Cross-check first: every path and every engine must produce
    // identical streams.
    let mut ref_coder = BlockCoder::with_engine(Tier1Engine::Reference);
    let mut bp_coder = BlockCoder::with_engine(Tier1Engine::Bitplane);
    for (i, c) in blocks.iter().enumerate() {
        let a = encode_block_with(c, 64, 64, band_of(i), Tier1Options::default());
        let r = ref_coder.encode_with(c, 64, 64, band_of(i), Tier1Options::default());
        let b = bp_coder.encode_with(c, 64, 64, band_of(i), Tier1Options::default());
        assert_eq!(a.data, r.data, "scratch arena changed the bitstream");
        assert_eq!(r.data, b.data, "bitplane engine changed the bitstream");
    }
    // Untimed warm-up of the seed path, then measure.
    let _ = micro_seed(&blocks, 1);
    let seed = micro_seed(&blocks, reps);
    let scratch = micro_arena(&blocks, reps, Tier1Engine::Auto);
    let speedup = if scratch.secs > 0.0 {
        seed.secs / scratch.secs
    } else {
        1.0
    };
    let avoided = (seed.allocs_per_block - scratch.allocs_per_block).max(0.0);
    println!(
        "microbench: {n_blocks} blocks x {reps} reps — seed {:.1} blk/s ({:.2} allocs/blk), \
         scratch {:.1} blk/s ({:.2} allocs/blk), speedup {speedup:.3}x",
        seed.blocks_per_sec,
        seed.allocs_per_block,
        scratch.blocks_per_sec,
        scratch.allocs_per_block
    );
    // Self-validation: the warm arena path must not allocate. The floor is
    // intentionally strict — 2.0 allocs/block was the pre-`encode_into`
    // residual this harness existed to flag.
    const ALLOCS_PER_BLOCK_FLOOR: f64 = 0.5;
    if scratch.allocs_per_block > ALLOCS_PER_BLOCK_FLOOR {
        eprintln!(
            "FAIL: scratch path allocates {:.3}/block (floor {ALLOCS_PER_BLOCK_FLOOR})",
            scratch.allocs_per_block
        );
        std::process::exit(1);
    }

    // --- steady-state allocation oracle ----------------------------------
    // Exact (thread-local) count, not the whole-process estimate above:
    // the warm arena must allocate literally zero times per block, for
    // both engines. This is the runtime check behind the `AUDIT(hot):
    // amortized` annotations audit-hotpath accepts in the Tier-1 closure.
    let steady_ref = steady_state_allocs(&blocks, Tier1Engine::Reference);
    let steady_bp = steady_state_allocs(&blocks, Tier1Engine::Bitplane);
    let steady_allocs = steady_ref + steady_bp;
    let steady_per_block = steady_allocs as f64 / (2 * blocks.len()) as f64;
    println!(
        "steady-state oracle: {} allocs over {} warm blocks \
         (reference {steady_ref}, bitplane {steady_bp})",
        steady_allocs,
        2 * blocks.len()
    );
    if steady_allocs != 0 {
        eprintln!("FAIL: warm arena allocated {steady_allocs} time(s); the contract is zero");
        std::process::exit(1);
    }

    // --- engine ablation --------------------------------------------------
    let reference = micro_arena(&blocks, reps, Tier1Engine::Reference);
    let bitplane = micro_arena(&blocks, reps, Tier1Engine::Bitplane);
    let bitplane_speedup = if bitplane.secs > 0.0 {
        reference.secs / bitplane.secs
    } else {
        1.0
    };
    println!(
        "engines: reference {:.1} blk/s, bitplane {:.1} blk/s — bitplane speedup {bitplane_speedup:.3}x",
        reference.blocks_per_sec, bitplane.blocks_per_sec
    );
    // Self-validation: the default engine must beat the one it replaced,
    // measured in this same run on this same machine.
    if bitplane_speedup <= 1.0 {
        eprintln!("FAIL: bitplane engine is not faster than reference ({bitplane_speedup:.3}x)");
        std::process::exit(1);
    }

    // --- per-pass and per-component breakdown ----------------------------
    let prof_ref = profile_engine(&blocks, reps.min(3), Tier1Engine::Reference);
    let prof_bp = profile_engine(&blocks, reps.min(3), Tier1Engine::Bitplane);
    let mq_cost = mq_cost_per_decision();
    for (name, p) in [("reference", &prof_ref), ("bitplane", &prof_bp)] {
        let total = p.total_secs().max(1e-12);
        let rows = pass_rows(p);
        let shares: Vec<String> = rows
            .iter()
            .map(|(k, s, d)| format!("{k} {:.0}% ({d} dec)", 100.0 * s / total))
            .collect();
        println!("per-pass {name}: {}", shares.join(", "));
    }

    // --- whole-encoder schedule sweep ------------------------------------
    let img = test_image(kpx);
    // One sequential run supplies the per-block costs for the model.
    let profile_enc = Encoder::new(encoder_cfg(1, Schedule::StaggeredRoundRobin)).expect("config");
    let (_, profile) = profile_enc.encode(&img);
    let costs = &profile.block_times;
    let tier1_total: f64 = costs.iter().sum();

    // Chunk 1: one atomic claim per ~ms-scale block is negligible
    // traffic, and fine chunks give the best balance.
    let dynamic = Schedule::Dynamic { chunk: 1 };
    let mut rows = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let stag_enc = Encoder::new(encoder_cfg(p, Schedule::StaggeredRoundRobin)).expect("config");
        let (_, t_stag) = time(|| stag_enc.encode(&img));
        let dyn_enc = Encoder::new(encoder_cfg(p, dynamic)).expect("config");
        let (_, t_dyn) = time(|| dyn_enc.encode(&img));
        let m_stag = makespan(costs, p, Schedule::StaggeredRoundRobin);
        let m_dyn = makespan(costs, p, dynamic);
        let row = (
            p,
            t_stag,
            t_dyn,
            t_stag / t_dyn,
            if m_stag > 0.0 {
                tier1_total / m_stag
            } else {
                1.0
            },
            if m_dyn > 0.0 {
                tier1_total / m_dyn
            } else {
                1.0
            },
        );
        println!(
            "encoder p={}: staggered {:.1} ms, dynamic {:.1} ms (x{:.3}); modeled tier-1 \
             speedup {:.2} vs {:.2}",
            row.0,
            row.1 * 1e3,
            row.2 * 1e3,
            row.3,
            row.4,
            row.5
        );
        rows.push(row);
    }

    // --- hand-rolled JSON -------------------------------------------------
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"schema\": \"pj2k.bench_tier1.v3\",\n");
    doc.push_str(&format!("  \"smoke\": {smoke},\n"));
    doc.push_str(&format!("  \"kpixels\": {kpx},\n"));
    doc.push_str("  \"microbench\": {\n");
    doc.push_str(&format!("    \"blocks\": {n_blocks},\n"));
    doc.push_str(&format!("    \"reps\": {reps},\n"));
    doc.push_str("    \"block_size\": [64, 64],\n");
    for (name, m) in [("seed_path", &seed), ("scratch_path", &scratch)] {
        doc.push_str(&format!(
            "    \"{name}\": {{ \"secs\": {}, \"blocks_per_sec\": {}, \"allocs_per_block\": {} }},\n",
            jf(m.secs),
            jf(m.blocks_per_sec),
            jf(m.allocs_per_block)
        ));
    }
    doc.push_str(&format!("    \"scratch_speedup\": {},\n", jf(speedup)));
    doc.push_str(&format!(
        "    \"allocs_avoided_per_block\": {}\n",
        jf(avoided)
    ));
    doc.push_str("  },\n");
    doc.push_str(&format!(
        "  \"steady_state\": {{ \"blocks\": {}, \"allocs\": {steady_allocs}, \
         \"steady_allocs_per_block\": {} }},\n",
        2 * blocks.len(),
        jf(steady_per_block)
    ));
    doc.push_str("  \"engines\": {\n");
    for (name, m) in [("reference", &reference), ("bitplane", &bitplane)] {
        doc.push_str(&format!(
            "    \"{name}\": {{ \"secs\": {}, \"blocks_per_sec\": {}, \"allocs_per_block\": {} }},\n",
            jf(m.secs),
            jf(m.blocks_per_sec),
            jf(m.allocs_per_block)
        ));
    }
    doc.push_str(&format!(
        "    \"bitplane_speedup\": {}\n  }},\n",
        jf(bitplane_speedup)
    ));
    doc.push_str("  \"per_pass\": {\n");
    for (ei, (name, p)) in [("reference", &prof_ref), ("bitplane", &prof_bp)]
        .iter()
        .enumerate()
    {
        doc.push_str(&format!("    \"{name}\": {{ "));
        let rows = pass_rows(p);
        for (i, (k, s, d)) in rows.iter().enumerate() {
            doc.push_str(&format!(
                "\"{k}\": {{ \"secs\": {}, \"decisions\": {d} }}{}",
                jf(*s),
                if i + 1 < rows.len() { ", " } else { "" }
            ));
        }
        doc.push_str(&format!(" }}{}\n", if ei == 0 { "," } else { "" }));
    }
    doc.push_str("  },\n");
    doc.push_str("  \"components\": {\n");
    doc.push_str(&format!(
        "    \"mq_cost_per_decision_ns\": {},\n",
        jf(mq_cost * 1e9)
    ));
    for (ei, (name, p)) in [("reference", &prof_ref), ("bitplane", &prof_bp)]
        .iter()
        .enumerate()
    {
        let entropy = (p.total_decisions() as f64 * mq_cost).min(p.total_secs());
        let formation = (p.total_secs() - entropy).max(0.0);
        doc.push_str(&format!(
            "    \"{name}\": {{ \"entropy_secs_est\": {}, \"context_formation_secs_est\": {} }}{}\n",
            jf(entropy),
            jf(formation),
            if ei == 0 { "," } else { "" }
        ));
    }
    doc.push_str("  },\n");
    doc.push_str("  \"dynamic_chunk\": 1,\n  \"encoder\": [\n");
    for (i, (p, t_stag, t_dyn, rel, ms_stag, ms_dyn)) in rows.iter().enumerate() {
        doc.push_str(&format!(
            "    {{ \"p\": {p}, \"staggered_secs\": {}, \"dynamic_secs\": {}, \
             \"dynamic_over_staggered\": {}, \"modeled_staggered_speedup\": {}, \
             \"modeled_dynamic_speedup\": {} }}{}\n",
            jf(*t_stag),
            jf(*t_dyn),
            jf(*rel),
            jf(*ms_stag),
            jf(*ms_dyn),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ]\n}\n");

    std::fs::write(&out_path, &doc).expect("write benchmark JSON");
    let written = std::fs::read_to_string(&out_path).expect("re-read benchmark JSON");
    if let Err(e) = validate(&written) {
        eprintln!("BENCH_tier1 schema validation failed: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} bytes, schema OK)", written.len());
}
