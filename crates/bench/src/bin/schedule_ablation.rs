//! Ablation: the paper's staggered round-robin code-block schedule versus
//! plain round-robin, a static block split, and runtime dynamic
//! self-scheduling, evaluated on *measured* per-block Tier-1 times.
//!
//! The paper: "The load balance problem caused by the different runtime
//! for each code-block is solved by using a pool of worker threads and a
//! staggered round robin assignment". This binary quantifies how much that
//! choice buys over the alternatives.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin schedule_ablation [kpixels]
//! ```

use pj2k_bench::{paper_config, test_image, x};
use pj2k_core::Encoder;
use pj2k_smpsim::{makespan, Schedule};

fn main() {
    let kpx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let img = test_image(kpx);
    let encoder = Encoder::new(paper_config()).expect("config");
    let (_, report) = encoder.encode(&img);
    let costs = &report.block_times;
    let total: f64 = costs.iter().sum();
    println!(
        "schedule ablation — {kpx} Kpixel, {} code-blocks, tier-1 total {:.1} ms",
        costs.len(),
        total * 1e3
    );
    println!(
        "block cost spread: min {:.3} ms / mean {:.3} ms / max {:.3} ms\n",
        costs.iter().cloned().fold(f64::INFINITY, f64::min) * 1e3,
        total / costs.len() as f64 * 1e3,
        costs.iter().cloned().fold(0.0, f64::max) * 1e3
    );
    println!(
        "{:<8} {:>14} {:>14} {:>18} {:>14} {:>14} {:>10}",
        "#CPUs", "static", "round-robin", "staggered RR", "dynamic(1)", "dynamic(8)", "ideal"
    );
    for p in [2usize, 4, 8, 16] {
        let st = total / makespan(costs, p, Schedule::StaticBlock);
        let rr = total / makespan(costs, p, Schedule::RoundRobin);
        let sg = total / makespan(costs, p, Schedule::StaggeredRoundRobin);
        let d1 = total / makespan(costs, p, Schedule::Dynamic { chunk: 1 });
        let d8 = total / makespan(costs, p, Schedule::Dynamic { chunk: 8 });
        println!(
            "{:<8} {:>14} {:>14} {:>18} {:>14} {:>14} {:>10}",
            p,
            x(st),
            x(rr),
            x(sg),
            x(d1),
            x(d8),
            x(p as f64)
        );
    }
    println!(
        "\nExpected: the code-block list is ordered coarse resolution first,\n\
         so a static split hands one worker the expensive blocks; the\n\
         round-robin family interleaves them, and the stagger additionally\n\
         rotates the lane that receives each round's most expensive block.\n\
         Dynamic self-scheduling assigns chunks to whichever CPU drains its\n\
         work first, matching or beating every static split at chunk 1 and\n\
         trading balance for lower claim traffic as the chunk grows."
    );
}
