//! Fig. 4 — The center of the test image coded at 0.125 bpp with JPEG,
//! JPEG2000 without tiling, and JPEG2000 with 128x128 tiles. Emits PGM
//! crops for visual inspection and prints the PSNR of each variant.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig04_tiling_artifacts [outdir]
//! ```

use pj2k_core::{Decoder, Encoder, EncoderConfig, RateControl};
use pj2k_image::metrics::psnr;
use pj2k_image::{pnm, synth};

fn main() {
    let outdir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let side = 512;
    let img = synth::natural_gray(side, side, 1234);
    let bpp = 0.125;
    println!("Fig. 4 — coding artifacts at {bpp} bpp ({side}x{side} input)\n");

    // (a) JPEG at the same rate (quality searched).
    let target = (bpp * (side * side) as f64 / 8.0) as usize;
    let mut jpeg_bytes = pj2k_jpegbase::encode(&img, 1).expect("jpeg");
    for q in 2..=60 {
        let bytes = pj2k_jpegbase::encode(&img, q).expect("jpeg");
        if bytes.len() > target {
            break;
        }
        jpeg_bytes = bytes;
    }
    let jpeg_out = pj2k_jpegbase::decode(&jpeg_bytes).expect("jpeg decode");

    // (b) JPEG2000 without tiling; (c) with 128x128 tiles.
    let mut variants = vec![(
        "fig4a_jpeg.pgm",
        format!("JPEG ({} B)", jpeg_bytes.len()),
        jpeg_out,
    )];
    for (tiles, file, label) in [
        (None, "fig4b_jpeg2000.pgm", "JPEG2000 no tiling"),
        (
            Some((128, 128)),
            "fig4c_jpeg2000_tiled.pgm",
            "JPEG2000 128x128 tiles",
        ),
    ] {
        let cfg = EncoderConfig {
            rate: RateControl::TargetBpp(vec![bpp]),
            tiles,
            ..EncoderConfig::default()
        };
        let (bytes, _) = Encoder::new(cfg).expect("config").encode(&img);
        let (out, _) = Decoder::default().decode(&bytes).expect("decode");
        variants.push((file, format!("{label} ({} B)", bytes.len()), out));
    }

    for (file, label, out) in &variants {
        let q = psnr(&img, out);
        let crop = out.crop(side / 4, side / 4, side / 2, side / 2);
        let path = format!("{outdir}/{file}");
        let mut f = std::fs::File::create(&path).expect("create crop");
        pnm::write(&mut f, &crop).expect("write crop");
        println!("{label:<42} PSNR {q:>6.2} dB -> {path}");
    }
    println!(
        "\nExpected shape (paper): JPEG shows strong 8x8 blocking, untiled\n\
         JPEG2000 is smooth, tiled JPEG2000 reintroduces visible tile seams."
    );
}
