//! Fig. 9 — Parallel runtime analysis with the *improved* (strip) vertical
//! filtering: the counterpart of Fig. 6 after the cache fix.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig09_parallel_breakdown_improved
//! ```

use pj2k_core::FilterStrategy;

fn main() {
    pj2k_bench::parallel_breakdown(
        FilterStrategy::Strip,
        "Fig. 9",
        "improved (strip) filtering",
    );
    println!(
        "\nExpected shape (paper Fig. 9): the DWT bar shrinks strongly (the\n\
         cache fix removes the bus bottleneck), pushing the overall speedup\n\
         over the original serial code past the naive-filtering ceiling;\n\
         sequential stages (R/D allocation, I/O) now dominate the residue."
    );
}
