//! Fig. 6 — Parallel runtime analysis on a 4-CPU SMP with the *original*
//! (naive) filtering: per-stage breakdown with the DWT and Tier-1 stages
//! parallelized.
//!
//! Stage costs are measured sequentially on the host, then projected onto
//! 4 virtual CPUs with the scheduling + bus model (DESIGN.md §2). When the
//! host itself has >= 2 cores, the real threaded encode is also timed.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig06_parallel_breakdown
//! ```

use pj2k_core::FilterStrategy;

fn main() {
    pj2k_bench::parallel_breakdown(
        FilterStrategy::Naive,
        "Fig. 6",
        "naive (original) filtering",
    );
    println!(
        "\nExpected shape (paper Fig. 6): with naive filtering the DWT stage\n\
         shrinks only modestly (cache/bus bound) while tier-1 scales well;\n\
         overall speedup lands near 1.75x on 4 CPUs."
    );
}
