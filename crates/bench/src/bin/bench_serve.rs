//! Batch service throughput/latency harness.
//!
//! Emits `BENCH_serve.json` (schema `pj2k.bench_serve.v1`) tracking the
//! `pj2k-serve` batch scheduler (DESIGN.md §16) against serial whole-pool
//! encoding — one image at a time, every worker on that image:
//!
//! 1. **Bit-identity cross-check**: every job of a `j=2 × k=2` batch must
//!    reproduce the standalone single-image encode byte for byte —
//!    enforced in-run before any number is reported.
//! 2. **Measured sweep** at budget p ∈ {1, 2, 4, 8} over a mixed-size
//!    workload: batch wall seconds, images/sec, and p50/p99
//!    admission-to-emission latency, against the serial whole-pool
//!    baseline at the same budget.
//! 3. **Modeled sweep**: the same contrast through [`pj2k_smpsim`]'s
//!    batch model driven by this run's measured per-size stage splits, so
//!    a shape floor survives single-core CI hosts where real-thread
//!    speedups are meaningless. `mixed_p4_batch_speedup` (modeled, floor
//!    1.1) is the key CI asserts; `measured_p4_batch_over_serial` (floor
//!    1.5, full runs) carries the throughput acceptance claim.
//! 4. **Flat-memory oracle**: under 2× offered load the batch's peak heap
//!    growth must stay within 25% of the 1× run and under the admission
//!    ceiling — `(capacity + 2j + 1)` units of one job's measured
//!    footprint — proving peak memory is O(j · image), not O(inputs).
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin bench_serve -- [--smoke] [--out PATH]
//! ```

use pj2k_bench::alloc_count::{self, CountingAlloc};
use pj2k_bench::{paper_config, time};
use pj2k_core::report::stage;
use pj2k_core::{Encoder, EncoderConfig, ParallelMode};
use pj2k_image::{synth, Image};
use pj2k_serve::{encode_stream, BatchOptions, BatchPlan};
use pj2k_smpsim::{batch_speedup, choose_split, makespan, ImageCost, Schedule};
use std::sync::Mutex;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One image size class of the mixed workload, with its measured
/// sequential cost split driving the model.
struct SizeClass {
    side: usize,
    blocks: usize,
    cost: ImageCost,
}

/// Measure a sequential encode of a `side × side` image, repeated `reps`
/// times (sub-millisecond stage timings are noisy; the rep with the
/// smallest total carries the least scheduler interference), and split it
/// into the model's serial / parallel / granule components. The
/// parallelizable share is the paper's low-effort stage set (DWT +
/// quantization + Tier-1); the granule is calibrated at the headline
/// budget `k = 4` as the parallel-phase floor the whole-pool encoder
/// actually achieves there — the Tier-1 makespan under the default
/// staggered-round-robin stride (the same projection `project_encode`
/// uses) plus the DWT/quantization split. For `k > 4` the floor is
/// conservative (the stride can only balance better with more workers).
fn median(samples: &mut Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn profile_size(cfg: &EncoderConfig, side: usize, seed: u64, reps: usize) -> SizeClass {
    let img = synth::natural_gray(side, side, seed);
    let enc = Encoder::new(EncoderConfig {
        parallel: ParallelMode::Sequential,
        ..cfg.clone()
    })
    .expect("valid config");
    let reports: Vec<_> = (0..reps.max(1)).map(|_| enc.encode(&img).1).collect();
    // Element-wise medians across reps: each stage and each code block is
    // the same work every rep, so the median strips scheduler noise
    // without mixing components from different reps' noise profiles.
    let med_stage = |name: &str| {
        median(
            &mut reports
                .iter()
                .map(|r| r.stages.get(name).as_secs_f64())
                .collect(),
        )
    };
    let total = median(
        &mut reports
            .iter()
            .map(|r| r.stages.iter().map(|(_, d)| d.as_secs_f64()).sum())
            .collect(),
    );
    let dwt = med_stage(stage::INTRA_COMPONENT);
    let quant = med_stage(stage::QUANTIZATION);
    let tier1 = med_stage(stage::TIER1);
    let n_blocks = reports[0].block_times.len();
    let block_times: Vec<f64> = (0..n_blocks)
        .map(|b| median(&mut reports.iter().map(|r| r.block_times[b]).collect()))
        .collect();
    let parallel = (dwt + quant + tier1).min(total);
    let granule = (dwt + quant) / 4.0 + makespan(&block_times, 4, Schedule::StaggeredRoundRobin);
    SizeClass {
        side,
        blocks: reports[0].num_blocks,
        cost: ImageCost::new(total - parallel, parallel, granule),
    }
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct MeasuredRow {
    p: usize,
    jobs: usize,
    threads_per_job: usize,
    batch_secs: f64,
    p50: f64,
    p99: f64,
    serial_secs: f64,
}

struct ModeledRow {
    p: usize,
    jobs: usize,
    threads_per_job: usize,
    batch_speedup: f64,
}

fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_string()
    }
}

/// Keys the emitted document must contain; checked after writing so a
/// refactor cannot silently change the schema consumers parse.
const REQUIRED_KEYS: &[&str] = &[
    "\"schema\"",
    "\"smoke\"",
    "\"bit_identity\"",
    "\"workload\"",
    "\"images\"",
    "\"classes\"",
    "\"serial_secs\"",
    "\"parallel_secs\"",
    "\"granule_secs\"",
    "\"measured\"",
    "\"batch_secs\"",
    "\"images_per_sec\"",
    "\"p50_latency_secs\"",
    "\"p99_latency_secs\"",
    "\"serial_pool_secs\"",
    "\"serial_images_per_sec\"",
    "\"batch_over_serial\"",
    "\"modeled\"",
    "\"batch_speedup\"",
    "\"memory\"",
    "\"per_job_bytes\"",
    "\"peak_1x_bytes\"",
    "\"peak_2x_bytes\"",
    "\"flatness_ratio\"",
    "\"ceiling_bytes\"",
    "\"measured_p4_batch_over_serial\"",
    "\"mixed_p4_batch_speedup\"",
];

fn validate(doc: &str) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !doc.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    if opens == 0 || opens != closes {
        return Err(format!("unbalanced braces: {opens} vs {closes}"));
    }
    if doc.matches('[').count() != doc.matches(']').count() {
        return Err("unbalanced brackets".to_string());
    }
    Ok(())
}

/// Run the whole mixed workload as one batch under a total budget `p`,
/// returning (wall seconds, sorted per-job latencies, executed plan).
fn run_batch(cfg: &EncoderConfig, images: &[Image], p: usize) -> (f64, Vec<f64>, BatchPlan) {
    let pixels: Vec<u64> = images
        .iter()
        .map(|im| (im.width() * im.height()) as u64)
        .collect();
    let plan = BatchPlan::for_workload(
        &pixels,
        &BatchOptions {
            budget: Some(p),
            ..Default::default()
        },
    );
    let latencies = Mutex::new(Vec::with_capacity(images.len()));
    let (r, secs) = time(|| {
        encode_stream(
            cfg,
            plan,
            images.len(),
            |i| Ok(images[i].clone()),
            |_i, result, lat| {
                result.expect("workload job must succeed");
                latencies.lock().unwrap().push(lat);
            },
        )
    });
    r.expect("valid config");
    let mut lats = latencies.into_inner().unwrap();
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    (secs, lats, plan)
}

/// The serial whole-pool baseline: one image at a time, the entire budget
/// as that image's intra-image pool.
fn run_serial_pool(cfg: &EncoderConfig, images: &[Image], p: usize) -> f64 {
    let enc = Encoder::new(EncoderConfig {
        parallel: if p <= 1 {
            ParallelMode::Sequential
        } else {
            ParallelMode::WorkerPool { workers: p }
        },
        ..cfg.clone()
    })
    .expect("valid config");
    let (_, secs) = time(|| {
        for im in images {
            let (bytes, _) = enc.encode(im);
            std::hint::black_box(bytes.len());
        }
    });
    secs
}

/// Peak heap growth of one batch run whose images are synthesized at
/// admission time — the supply-side shape `encode_files` has, so the
/// bounded queue is the only thing standing between offered load and
/// resident images.
fn oversub_peak(cfg: &EncoderConfig, plan: BatchPlan, side: usize, n: usize) -> u64 {
    let live0 = alloc_count::live_bytes();
    alloc_count::reset_peak_bytes();
    encode_stream(
        cfg,
        plan,
        n,
        |i| Ok(synth::natural_gray(side, side, 0xFEED + i as u64)),
        |_i, result, _lat| {
            std::hint::black_box(result.expect("oversub job must succeed").bytes.len());
        },
    )
    .expect("valid config");
    alloc_count::peak_bytes().saturating_sub(live0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    // Mixed-size workload: the thumbnail/tile sizes a batch service
    // actually sees (a 4x pixel-count spread). Small images are where the
    // j/k split matters — their Tier-1 stride schedule leaves the
    // whole-pool encoder granule-bound, which the batch turns into
    // inter-image overlap. `rounds` repeats the mix so list scheduling
    // has real interleaving to exploit.
    // `mix` is the per-round class multiset (indices into `sides`),
    // weighted toward the small end the way a thumbnail service is.
    let (sides, mix, rounds, reps): (&[usize], &[usize], usize, usize) = if smoke {
        (&[32, 48, 64], &[0, 1, 2], 2, 3)
    } else {
        (&[32, 40, 48, 64], &[0, 0, 1, 1, 2, 3], 6, 5)
    };
    let cfg = paper_config();

    // --- per-size cost profiles ------------------------------------------
    let classes: Vec<SizeClass> = sides
        .iter()
        .enumerate()
        .map(|(i, &s)| profile_size(&cfg, s, 0xC0DE + i as u64, reps))
        .collect();
    for c in &classes {
        println!(
            "class {}x{}: {} blocks — serial {:.2} ms, parallel {:.2} ms, granule {:.3} ms",
            c.side,
            c.side,
            c.blocks,
            c.cost.serial * 1e3,
            c.cost.parallel * 1e3,
            c.cost.granule * 1e3
        );
    }

    // --- workload ---------------------------------------------------------
    // Rotate the class order each round so arrival order does not alias one
    // size class onto one batch slot (the inter-image twin of the stride
    // aliasing bench_decode's skewed workload pins down).
    let mut images = Vec::new();
    let mut costs = Vec::new();
    for r in 0..rounds {
        for i in 0..mix.len() {
            let c = &classes[mix[(r + i) % mix.len()]];
            images.push(synth::natural_gray(
                c.side,
                c.side,
                0xBA7C + (r * mix.len() + i) as u64,
            ));
            costs.push(c.cost);
        }
    }
    println!(
        "workload: {} images over {} size classes",
        images.len(),
        classes.len()
    );

    // --- in-run bit-identity cross-check ---------------------------------
    {
        let plan = BatchPlan {
            jobs: 2,
            threads_per_job: 2,
            budget: 4,
            queue_capacity: 2,
        };
        let seq = Encoder::new(cfg.clone()).expect("valid config");
        let ok = Mutex::new(0usize);
        encode_stream(
            &cfg,
            plan,
            images.len(),
            |i| Ok(images[i].clone()),
            |i, result, _lat| {
                let got = result.expect("identity job must succeed").bytes;
                let (want, _) = seq.encode(&images[i]);
                if got != want {
                    eprintln!("FAIL: batch job {i} diverged from the single-image encode");
                    std::process::exit(1);
                }
                *ok.lock().unwrap() += 1;
            },
        )
        .expect("valid config");
        assert_eq!(ok.into_inner().unwrap(), images.len());
        println!(
            "bit-identity: all {} batch jobs match single encodes",
            images.len()
        );
    }

    // --- measured + modeled sweeps ---------------------------------------
    let budgets = [1usize, 2, 4, 8];
    let mut measured = Vec::new();
    let mut modeled = Vec::new();
    let mut mixed_p4 = 0.0f64;
    for &p in &budgets {
        let (batch_secs, lats, plan) = run_batch(&cfg, &images, p);
        let serial_secs = run_serial_pool(&cfg, &images, p);
        measured.push(MeasuredRow {
            p,
            jobs: plan.jobs,
            threads_per_job: plan.threads_per_job,
            batch_secs,
            p50: percentile(&lats, 0.50),
            p99: percentile(&lats, 0.99),
            serial_secs,
        });
        let (mj, mk) = choose_split(&costs, p);
        let speedup = batch_speedup(&costs, p);
        if p == 4 {
            mixed_p4 = speedup;
        }
        modeled.push(ModeledRow {
            p,
            jobs: mj,
            threads_per_job: mk,
            batch_speedup: speedup,
        });
        println!(
            "  p={p}: measured batch {:.1} ms (j={} k={}, p50 {:.1} ms, p99 {:.1} ms), \
             serial pool {:.1} ms; modeled batch/serial x{:.3} (j={mj} k={mk})",
            batch_secs * 1e3,
            plan.jobs,
            plan.threads_per_job,
            percentile(&lats, 0.50) * 1e3,
            percentile(&lats, 0.99) * 1e3,
            serial_secs * 1e3,
            speedup
        );
    }

    // Self-validation, two floors with different jobs. The *modeled*
    // speedup (measured per-size cost splits through the deterministic
    // batch model) carries the flake-proof shape claim CI asserts: it
    // cannot be washed out by a single-core host, but it also credits the
    // whole-pool baseline with free stage dispatch, so it sits near the
    // structural 1.5 and is floored at 1.1. The *measured* images/sec
    // ratio carries the full-run throughput claim (≥ 1.5): it includes
    // the real per-stage fork/join overhead the whole-pool encoder pays
    // on every image, which only widens the batch's margin.
    if mixed_p4 < 1.1 {
        eprintln!("FAIL: modeled mixed p=4 batch speedup {mixed_p4:.3} under floor 1.1");
        std::process::exit(1);
    }
    let measured_p4 = measured
        .iter()
        .find(|r| r.p == 4)
        .map(|r| r.serial_secs / r.batch_secs)
        .unwrap_or(0.0);
    if !smoke && measured_p4 < 1.5 {
        eprintln!("FAIL: measured p=4 batch/serial images/sec {measured_p4:.3} under floor 1.5");
        std::process::exit(1);
    }

    // --- flat-memory oracle ----------------------------------------------
    // One job's peak footprint (image + encoder scratch + codestream),
    // measured standalone on the oversubscription image size...
    let mem_side = sides[sides.len() / 2];
    let per_job_bytes = {
        let enc = Encoder::new(cfg.clone()).expect("valid config");
        let live0 = alloc_count::live_bytes();
        alloc_count::reset_peak_bytes();
        let im = synth::natural_gray(mem_side, mem_side, 0xF007);
        let (bytes, _) = enc.encode(&im);
        std::hint::black_box(bytes.len());
        alloc_count::peak_bytes().saturating_sub(live0)
    };
    // ...then the batch is offered 1× and 2× load with images synthesized
    // at admission time. Flat memory means the 2× peak stays put: the
    // bounded queue parks the producer instead of buffering the backlog.
    let mem_plan = BatchPlan {
        jobs: 2,
        threads_per_job: 1,
        budget: 2,
        queue_capacity: 2,
    };
    // Admission ceiling in job-footprint units: `capacity` queued images,
    // one per worker, the one send() is parked on, and up to `jobs − 1`
    // results parked in the reorder buffer.
    let ceiling_jobs = mem_plan.queue_capacity + 2 * mem_plan.jobs + 1;
    // Both runs must offer several times the in-flight ceiling, or the
    // pipeline never saturates and the "2×" run is just a longer ramp-up.
    let n1 = 4 * ceiling_jobs;
    let peak_1x = oversub_peak(&cfg, mem_plan, mem_side, n1);
    let peak_2x = oversub_peak(&cfg, mem_plan, mem_side, 2 * n1);
    let flatness = peak_2x as f64 / peak_1x.max(1) as f64;
    let ceiling_bytes = ceiling_jobs as u64 * per_job_bytes;
    println!(
        "memory: per-job {per_job_bytes} B, peak 1x {peak_1x} B, peak 2x {peak_2x} B \
         (flatness x{flatness:.3}, ceiling {ceiling_bytes} B)"
    );
    if flatness > 1.25 {
        eprintln!("FAIL: doubling offered load grew peak memory x{flatness:.3} (> 1.25)");
        std::process::exit(1);
    }
    if peak_2x > ceiling_bytes {
        eprintln!(
            "FAIL: 2x-oversubscribed peak {peak_2x} B exceeds admission ceiling {ceiling_bytes} B"
        );
        std::process::exit(1);
    }

    // --- hand-rolled JSON -------------------------------------------------
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"schema\": \"pj2k.bench_serve.v1\",\n");
    doc.push_str(&format!("  \"smoke\": {smoke},\n"));
    doc.push_str("  \"bit_identity\": \"ok\",\n");
    doc.push_str("  \"workload\": {\n");
    doc.push_str(&format!("    \"images\": {},\n", images.len()));
    doc.push_str("    \"classes\": [\n");
    for (i, c) in classes.iter().enumerate() {
        doc.push_str(&format!(
            "      {{ \"side\": {}, \"blocks\": {}, \"serial_secs\": {}, \
             \"parallel_secs\": {}, \"granule_secs\": {} }}{}\n",
            c.side,
            c.blocks,
            jf(c.cost.serial),
            jf(c.cost.parallel),
            jf(c.cost.granule),
            if i + 1 < classes.len() { "," } else { "" }
        ));
    }
    doc.push_str("    ]\n  },\n");
    doc.push_str("  \"measured\": [\n");
    let n_images = images.len() as f64;
    for (i, r) in measured.iter().enumerate() {
        doc.push_str(&format!(
            "    {{ \"p\": {}, \"jobs\": {}, \"threads_per_job\": {}, \"batch_secs\": {}, \
             \"images_per_sec\": {}, \"p50_latency_secs\": {}, \"p99_latency_secs\": {}, \
             \"serial_pool_secs\": {}, \"serial_images_per_sec\": {}, \
             \"batch_over_serial\": {} }}{}\n",
            r.p,
            r.jobs,
            r.threads_per_job,
            jf(r.batch_secs),
            jf(n_images / r.batch_secs),
            jf(r.p50),
            jf(r.p99),
            jf(r.serial_secs),
            jf(n_images / r.serial_secs),
            jf(r.serial_secs / r.batch_secs),
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ],\n");
    doc.push_str("  \"modeled\": [\n");
    for (i, r) in modeled.iter().enumerate() {
        doc.push_str(&format!(
            "    {{ \"p\": {}, \"jobs\": {}, \"threads_per_job\": {}, \"batch_speedup\": {} }}{}\n",
            r.p,
            r.jobs,
            r.threads_per_job,
            jf(r.batch_speedup),
            if i + 1 < modeled.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ],\n");
    doc.push_str(&format!(
        "  \"memory\": {{ \"per_job_bytes\": {per_job_bytes}, \"peak_1x_bytes\": {peak_1x}, \
         \"peak_2x_bytes\": {peak_2x}, \"flatness_ratio\": {}, \"ceiling_jobs\": {ceiling_jobs}, \
         \"ceiling_bytes\": {ceiling_bytes} }},\n",
        jf(flatness)
    ));
    doc.push_str(&format!(
        "  \"measured_p4_batch_over_serial\": {},\n",
        jf(measured_p4)
    ));
    doc.push_str(&format!(
        "  \"mixed_p4_batch_speedup\": {}\n}}\n",
        jf(mixed_p4)
    ));

    std::fs::write(&out_path, &doc).expect("write benchmark JSON");
    let written = std::fs::read_to_string(&out_path).expect("re-read benchmark JSON");
    if let Err(e) = validate(&written) {
        eprintln!("BENCH_serve schema validation failed: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} bytes, schema OK)", written.len());
}
