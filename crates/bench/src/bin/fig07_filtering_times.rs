//! Fig. 7 — Original vs improved filtering runtimes on 1..4 CPUs
//! (vertical original / vertical improved / horizontal original &
//! improved), for the paper's large test image.
//!
//! Serial times are measured on the host; multi-CPU points come from the
//! bus-contention projection fed with cache-simulated miss traffic.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig07_filtering_times [side]
//! ```

use pj2k_bench::{filtering_profile, ms, project_filtering, row};
use pj2k_smpsim::BusParams;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048);
    let levels = 5;
    println!("Fig. 7 — filtering runtimes (ms), {side}x{side}, {levels} levels\n");
    let fp = filtering_profile(side, levels);
    let bus = BusParams::PENTIUM2_FSB;
    println!(
        "host-measured serial:   vertical naive {} ms | vertical strip {} ms | horizontal {} ms",
        ms(fp.naive.vertical.as_secs_f64()),
        ms(fp.strip.vertical.as_secs_f64()),
        ms(fp.naive.horizontal.as_secs_f64()),
    );
    println!("\nprojected on P virtual CPUs (bus model):");
    row(
        "#CPUs",
        &[
            "vertical".into(),
            "vert. improved".into(),
            "horizontal".into(),
        ],
    );
    // Anchor the model to the measured serial magnitudes.
    let anchor = |items: &[pj2k_smpsim::WorkItem], measured: f64| {
        let model_serial = project_filtering(items, 1, bus);
        if model_serial > 0.0 {
            measured / model_serial
        } else {
            1.0
        }
    };
    let k_naive = anchor(&fp.naive_items, fp.naive.vertical.as_secs_f64());
    let k_strip = anchor(&fp.strip_items, fp.strip.vertical.as_secs_f64());
    let k_horiz = anchor(&fp.horiz_items, fp.naive.horizontal.as_secs_f64());
    for p in 1..=4 {
        row(
            &format!("{p}"),
            &[
                ms(project_filtering(&fp.naive_items, p, bus) * k_naive),
                ms(project_filtering(&fp.strip_items, p, bus) * k_strip),
                ms(project_filtering(&fp.horiz_items, p, bus) * k_horiz),
            ],
        );
    }
    println!(
        "\nExpected shape (paper Fig. 7): serial vertical filtering is several\n\
         times slower than horizontal; the improved (strip) version closes\n\
         the gap (~2.4x serial gain) and keeps shrinking with CPUs, while the\n\
         naive version barely improves beyond 2 CPUs (bus congestion)."
    );
}
