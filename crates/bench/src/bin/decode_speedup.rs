//! Decode-side speedup projection: the paper's symmetric claim.
//!
//! §4 of the paper notes the decoder parallelizes like the encoder — the
//! same two hot stages (Tier-1 block decoding, inverse DWT) dominate —
//! but adds a twist the encoder does not have: Tier-2 packet parsing is
//! inherently serial, so a barriered decoder serializes
//! `parse → tier-1 → inverse DWT`. This binary measures one real decode's
//! stage breakdown on the host, feeds it to the [`pj2k_smpsim::decode`]
//! model, and prints barriered vs pipelined (DESIGN.md §15) speedup
//! curves, plus a real two-decoder wall-clock comparison when the host
//! has cores to spare.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin decode_speedup [kpixels]
//! ```

use pj2k_bench::{paper_config, test_image, time, x};
use pj2k_core::report::stage;
use pj2k_core::{Decoder, Encoder, ParallelMode, StageOverlap};
use pj2k_smpsim::{decode_speedup_curve, DecodeStageCosts, Schedule};

fn main() {
    let kpx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let img = test_image(kpx);
    let levels = 5u8;
    let cfg = pj2k_core::EncoderConfig {
        levels,
        ..paper_config()
    };
    let (bytes, _) = Encoder::new(cfg).expect("config").encode(&img);
    println!(
        "decode-side projection — {kpx} Kpixel, {} levels, {} byte stream\n",
        levels,
        bytes.len()
    );

    // One sequential decode supplies the measured stage shares.
    let (_, report) = Decoder::default().decode(&bytes).expect("valid stream");
    let parse_total = report.stages.get(stage::TIER2).as_secs_f64();
    let tier1_total = report.stages.get(stage::TIER1).as_secs_f64();
    let dwt_total = report.stages.get(stage::INTRA_COMPONENT).as_secs_f64();
    let n = report.num_blocks.max(1);
    println!(
        "measured sequential: tier-2 parse {:.1} ms, tier-1 {:.1} ms \
         ({n} blocks), inverse DWT {:.1} ms",
        parse_total * 1e3,
        tier1_total * 1e3,
        dwt_total * 1e3
    );

    // Per-block costs: parse spread uniformly (packet headers are cheap
    // and uniform next to block decoding); tier-1 with the pyramid skew a
    // dyadic decomposition imposes — per 8 blocks, six sparse finest-level
    // blocks, one mid-level, one dense coarse/LL block (see
    // bench_tier1's synth_blocks for the same mix on the encode side).
    let weights: Vec<f64> = (0..n)
        .map(|i| [1.0f64, 1.0, 1.0, 1.0, 1.0, 1.0, 3.0, 9.0][i % 8])
        .collect();
    let wsum: f64 = weights.iter().sum();
    let costs = DecodeStageCosts {
        parse: vec![parse_total / n as f64; n],
        tier1: weights.iter().map(|w| tier1_total * w / wsum).collect(),
        // The finest reconstruction level processes ~3/4 of the samples
        // and completes last; coarser levels can run on the driver while
        // the fine-level blocks are still draining.
        dwt_overlapped: dwt_total * 0.25,
        dwt_exposed: dwt_total * 0.75,
    };

    println!("\n#CPUs  barriered  pipelined");
    let cpus = [1usize, 2, 4, 8, 16];
    for (p, (bar, pipe)) in cpus.iter().zip(decode_speedup_curve(
        &costs,
        &cpus,
        Schedule::Dynamic { chunk: 1 },
    )) {
        println!("{p:>5}  {:>9}  {:>9}", x(bar), x(pipe));
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host >= 2 {
        let p = host.min(4);
        let barriered = Decoder {
            parallel: ParallelMode::WorkerPool { workers: p },
            ..Decoder::default()
        };
        let pipelined = Decoder {
            overlap: StageOverlap::Pipelined,
            ..barriered.clone()
        };
        let (_, t_bar) = time(|| barriered.decode(&bytes).expect("valid stream"));
        let (_, t_pipe) = time(|| pipelined.decode(&bytes).expect("valid stream"));
        println!(
            "\nmeasured {p} threads: barriered {:.1} ms, pipelined {:.1} ms ({})",
            t_bar * 1e3,
            t_pipe * 1e3,
            x(t_bar / t_pipe)
        );
    } else {
        println!("\n(single-core host: skipping the real-thread measurement)");
    }
    println!(
        "\nExpected shape: both curves climb with CPUs, but the barriered\n\
         curve saturates at the serial tier-2 + DWT share (Amdahl) while\n\
         the pipelined curve keeps climbing until the serial parse itself\n\
         is the bottleneck; bench_decode measures the same contrast with\n\
         real threads."
    );
}
