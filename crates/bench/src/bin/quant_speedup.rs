//! §3.3 — Parallel quantization: the paper parallelizes the quantization
//! stage too and reports a stage-local speedup of ~3.2 on 4 CPUs (while
//! noting the stage is too small to move the total).
//!
//! The stage is measured stand-alone on the host (sequentially and, when
//! cores exist, threaded) and projected onto 4 virtual CPUs.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin quant_speedup [side]
//! ```

use pj2k_bench::time;
use pj2k_core::quant::quantize_plane;
use pj2k_image::Plane;
use pj2k_parutil::Exec;
use pj2k_smpsim::{makespan, Schedule};

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048);
    let src = Plane::from_fn(side, side, |x, y| ((x * 13 + y * 7) % 509) as f32 - 254.0);
    println!("§3.3 — quantization stage, {side}x{side} coefficients\n");

    let mut dst = Plane::<i32>::new(side, side);
    let (_, t_seq) = time(|| quantize_plane(&src, &mut dst, (0, 0, side, side), 0.125, &Exec::SEQ));
    println!("sequential: {:.2} ms", t_seq * 1e3);

    // Model: one work item per row, uniform cost.
    let items = vec![t_seq / side as f64; side];
    for p in [2usize, 4, 8] {
        let t_model = makespan(&items, p, Schedule::StaticBlock);
        println!(
            "modeled {p} CPUs: {:.2} ms (speedup {:.2}x)",
            t_model * 1e3,
            t_seq / t_model
        );
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host >= 2 {
        let p = host.min(4);
        let (_, t_par) =
            time(|| quantize_plane(&src, &mut dst, (0, 0, side, side), 0.125, &Exec::threads(p)));
        println!(
            "measured {p} threads: {:.2} ms (speedup {:.2}x)",
            t_par * 1e3,
            t_seq / t_par
        );
    } else {
        println!("(single-core host: skipping the real-thread measurement)");
    }
    println!(
        "\nExpected shape (paper §3.3): the stage parallelizes near-linearly\n\
         (paper: ~3.2x on 4 CPUs) but contributes too little total time to\n\
         move the whole-coder speedup."
    );
}
