//! Fig. 11 — Vertical-filtering speedup on the simulated SGI, measured
//! against the *original* serial Jasper filtering (the paper's factor-80
//! chart: cache fix x parallel CPUs compound).
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig11_sgi_filter_speedup
//! ```

use pj2k_bench::{filtering_profile, project_filtering, row, x};
use pj2k_smpsim::BusParams;

fn main() {
    let side = if std::env::var("PJ2K_FULL").is_ok_and(|v| v == "1") {
        4096
    } else {
        2048
    };
    let fp = filtering_profile(side, 5);
    let bus = BusParams::SGI_POWER_CHALLENGE;
    let base = project_filtering(&fp.naive_items, 1, bus); // original serial
    println!(
        "Fig. 11 — vertical filtering speedup vs ORIGINAL serial filtering\n\
         ({side}x{side} image)\n"
    );
    row("#CPUs", &["orig vertical".into(), "mod vertical".into()]);
    for p in [1usize, 2, 4, 6, 8, 10, 12, 14, 16] {
        row(
            &format!("{p}"),
            &[
                x(base / project_filtering(&fp.naive_items, p, bus)),
                x(base / project_filtering(&fp.strip_items, p, bus)),
            ],
        );
    }
    println!(
        "\nExpected shape (paper Fig. 11): the modified filtering's speedup\n\
         over the original serial routine compounds the serial cache gain\n\
         with parallel scaling, reaching tens of x at 16 CPUs (the paper\n\
         reports ~80x on its 20-CPU SGI); the original one flattens early."
    );
}
