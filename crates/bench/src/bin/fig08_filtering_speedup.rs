//! Fig. 8 — Speedup of the filtering routines vs the linear ideal:
//! original vertical, improved vertical, and horizontal filtering on
//! 1..4 CPUs (each normalized to its own 1-CPU time, as in the paper).
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig08_filtering_speedup [side]
//! ```

use pj2k_bench::{filtering_profile, project_filtering, row, x};
use pj2k_smpsim::BusParams;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048);
    let fp = filtering_profile(side, 5);
    let bus = BusParams::PENTIUM2_FSB;
    println!("Fig. 8 — speedup of filtering routines ({side}x{side})\n");
    row(
        "#CPUs",
        &[
            "linear".into(),
            "vertical".into(),
            "vert. improved".into(),
            "horizontal".into(),
        ],
    );
    let base_naive = project_filtering(&fp.naive_items, 1, bus);
    let base_strip = project_filtering(&fp.strip_items, 1, bus);
    let base_horiz = project_filtering(&fp.horiz_items, 1, bus);
    for p in 1..=4usize {
        row(
            &format!("{p}"),
            &[
                x(p as f64),
                x(base_naive / project_filtering(&fp.naive_items, p, bus)),
                x(base_strip / project_filtering(&fp.strip_items, p, bus)),
                x(base_horiz / project_filtering(&fp.horiz_items, p, bus)),
            ],
        );
    }
    println!(
        "\nExpected shape (paper Fig. 8): horizontal and improved vertical\n\
         filtering track the linear ideal closely; original vertical\n\
         saturates well below it (its cache misses congest the shared bus)."
    );
}
