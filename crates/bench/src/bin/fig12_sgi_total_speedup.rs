//! Fig. 12 — Total coding-time speedup on the simulated SGI, measured
//! against the *original* serial coder: the "OpenMP only" curve (parallel
//! stages, naive filtering) and the "OpenMP + modified vertical filtering"
//! curve (the paper reports the latter passing 5x — superlinear because
//! the baseline is the unoptimized code).
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig12_sgi_total_speedup
//! ```

use pj2k_bench::{encode_profile, project_encode, row, test_image, x};
use pj2k_core::FilterStrategy;
use pj2k_smpsim::BusParams;

fn main() {
    let kpx = if std::env::var("PJ2K_FULL").is_ok_and(|v| v == "1") {
        16384
    } else {
        4096
    };
    let img = test_image(kpx);
    let bus = BusParams::SGI_POWER_CHALLENGE;
    let profile = encode_profile(&img, FilterStrategy::Naive, 5);
    let (orig_serial, _) = project_encode(&profile, 1, false, bus);
    println!("Fig. 12 — total speedup vs ORIGINAL serial coder ({kpx} Kpixel)\n");
    row(
        "#CPUs",
        &["OpenMP".into(), "OpenMP + mod. filtering".into()],
    );
    for p in [1usize, 2, 4, 6, 8, 10, 12, 14, 16] {
        let (naive_p, _) = project_encode(&profile, p, false, bus);
        let (strip_p, _) = project_encode(&profile, p, true, bus);
        row(
            &format!("{p}"),
            &[x(orig_serial / naive_p), x(orig_serial / strip_p)],
        );
    }
    println!(
        "\nExpected shape (paper Fig. 12): the naive curve saturates around\n\
         2-3x; adding the modified filtering lifts the curve past 5x around\n\
         10 CPUs (superlinear vs the unoptimized baseline), then flattens as\n\
         the sequential stages dominate."
    );
}
