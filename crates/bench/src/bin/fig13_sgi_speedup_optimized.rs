//! Fig. 13 — The classical speedup: total coding time against the *fastest
//! sequential* code (serial coder with the improved filtering). The paper
//! reports "a total speedup of little more than 2" — the honest number
//! once the serial cache fix is credited to the baseline.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig13_sgi_speedup_optimized
//! ```

use pj2k_bench::{encode_profile, project_encode, row, test_image, x};
use pj2k_core::FilterStrategy;
use pj2k_smpsim::BusParams;

fn main() {
    let kpx = if std::env::var("PJ2K_FULL").is_ok_and(|v| v == "1") {
        16384
    } else {
        4096
    };
    let img = test_image(kpx);
    let bus = BusParams::SGI_POWER_CHALLENGE;
    let profile = encode_profile(&img, FilterStrategy::Strip, 5);
    let (opt_serial, _) = project_encode(&profile, 1, true, bus);
    println!(
        "Fig. 13 — total speedup vs filtering-OPTIMIZED serial coder\n\
         ({kpx} Kpixel)\n"
    );
    row("#CPUs", &["OpenMP + mod. filtering".into()]);
    for p in [1usize, 2, 4, 6, 8, 10, 12, 14, 16] {
        let (t, _) = project_encode(&profile, p, true, bus);
        row(&format!("{p}"), &[x(opt_serial / t)]);
    }
    println!(
        "\nExpected shape (paper Fig. 13): the curve climbs to ~2.2x and then\n\
         flattens — the inherently sequential stages (R/D allocation, tier-2,\n\
         I/O) bound the classical speedup per Amdahl (see amdahl_table)."
    );
}
