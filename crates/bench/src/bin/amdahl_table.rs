//! §3.4 — Theoretical versus practical speedup: Amdahl bounds computed
//! from the measured serial stage breakdown, compared with the modeled
//! 4-CPU execution (the paper: theoretical 2.1/2.4 vs measured 1.75/1.85,
//! and ~2.4 once the filtering-optimized code is the baseline).
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin amdahl_table
//! ```

use pj2k_bench::{encode_profile, project_encode, sizes_kpixel, test_image};
use pj2k_core::report::stage;
use pj2k_core::FilterStrategy;
use pj2k_smpsim::{amdahl_speedup, BusParams};

fn main() {
    println!("§3.4 — Amdahl bound vs modeled speedup (4 CPUs)\n");
    println!(
        "{:<12} {:<10} {:>10} {:>14} {:>16}",
        "size (Kpx)", "filtering", "serial %", "Amdahl bound", "modeled speedup"
    );
    for kpx in sizes_kpixel() {
        let img = test_image(kpx);
        for (label, filter) in [
            ("naive", FilterStrategy::Naive),
            ("improved", FilterStrategy::Strip),
        ] {
            let profile = encode_profile(&img, filter, 5);
            let par: f64 = profile
                .stage_secs
                .iter()
                .filter(|(n, _)| stage::PARALLEL.contains(&n.as_str()))
                .map(|(_, s)| *s)
                .sum();
            let ser: f64 = profile
                .stage_secs
                .iter()
                .filter(|(n, _)| !stage::PARALLEL.contains(&n.as_str()))
                .map(|(_, s)| *s)
                .sum();
            let bound = amdahl_speedup(ser, par, 4);
            let strip = filter == FilterStrategy::Strip;
            let bus = BusParams::PENTIUM2_FSB;
            let (t1, _) = project_encode(&profile, 1, strip, bus);
            let (t4, _) = project_encode(&profile, 4, strip, bus);
            println!(
                "{:<12} {:<10} {:>9.1}% {:>13.2}x {:>15.2}x",
                kpx,
                label,
                100.0 * ser / (ser + par),
                bound,
                t1 / t4
            );
        }
    }
    println!(
        "\nExpected shape (paper §3.4): the modeled speedup sits below the\n\
         Amdahl bound (the bound assumes perfectly parallel stages; the bus\n\
         and schedule do not). With improved filtering the parallel fraction\n\
         shrinks, so the bound itself drops — exactly the paper's point\n\
         about Fig. 13's restricted speedups."
    );
}
