//! Fig. 10 — "SGI Power Challenge" filtering runtimes, 1..16 CPUs:
//! original vs modified vertical filtering (plus the horizontal reference
//! line), for the 16384-Kpixel image of the paper (scaled by default; set
//! `PJ2K_FULL=1` to run the true 4096x4096 profile).
//!
//! The 20-CPU SGI is simulated: measured serial costs + cache-model miss
//! traffic projected through the shared-bus model (DESIGN.md §2).
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin fig10_sgi_filtering
//! ```

use pj2k_bench::{filtering_profile, ms, project_filtering, row};
use pj2k_smpsim::BusParams;

fn main() {
    let side = if std::env::var("PJ2K_FULL").is_ok_and(|v| v == "1") {
        4096
    } else {
        2048
    };
    let fp = filtering_profile(side, 5);
    // The Power Challenge bus: older, slower shared bus feeding many CPUs.
    let bus = BusParams::SGI_POWER_CHALLENGE;
    println!("Fig. 10 — SGI filtering runtimes (ms), {side}x{side} image\n");
    row(
        "#CPUs",
        &[
            "orig vertical".into(),
            "mod vertical".into(),
            "orig horizontal".into(),
        ],
    );
    for p in [1usize, 2, 4, 6, 8, 10, 12, 14, 16] {
        row(
            &format!("{p}"),
            &[
                ms(project_filtering(&fp.naive_items, p, bus)),
                ms(project_filtering(&fp.strip_items, p, bus)),
                ms(project_filtering(&fp.horiz_items, p, bus)),
            ],
        );
    }
    println!(
        "\nExpected shape (paper Fig. 10): a big gap between original vertical\n\
         and horizontal filtering; the modified vertical filtering closes it\n\
         and keeps dropping with CPU count while the original flattens early."
    );
}
