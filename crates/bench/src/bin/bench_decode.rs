//! Decode pipeline throughput harness.
//!
//! Emits `BENCH_decode.json` (schema `pj2k.bench_decode.v1`) tracking the
//! staged decode pipeline (DESIGN.md §15) against the barriered decoder:
//!
//! 1. **Bit-identity cross-check**: every decoder variant this harness
//!    times (barriered/pipelined × static/cost-weighted × worker counts)
//!    must reproduce the sequential reference exactly — enforced in-run
//!    before any number is reported.
//! 2. **Real-thread sweep** at p ∈ {1, 2, 4, 8} over two workloads: a
//!    *pyramid* stream (paper-default encode, dyadic cost mix) and a
//!    *skewed* stream (heavy code-blocks recurring at a fixed stride —
//!    the aliasing case for stride schedules). Wall seconds and Mpix/s
//!    for the barriered decoder (static policy, staggered round-robin)
//!    vs the pipelined decoder (cost-weighted repartitioning).
//! 3. **Modeled sweep**: the same contrast through
//!    [`pj2k_smpsim::decode`] driven by this run's measured stage totals,
//!    so the shape claim survives single-core CI hosts where real-thread
//!    speedups are meaningless. `pipelined_speedup` at p=4 on the skewed
//!    workload is the headline key CI asserts.
//! 4. **Steady-state allocation oracle**: a warm
//!    [`pj2k_ebcot::BlockDecoderScratch`] pass over pre-parsed segments
//!    must allocate exactly zero times per block — the runtime proof
//!    behind the `AUDIT(hot): amortized` justifications in the pipelined
//!    Tier-1 drain closure.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin bench_decode -- [--smoke] [--out PATH]
//! ```

use pj2k_bench::alloc_count::{self, CountingAlloc};
use pj2k_bench::{paper_config, test_image, time};
use pj2k_core::report::stage;
use pj2k_core::{DecodeStagePolicy, Decoder, Encoder, EncoderConfig, ParallelMode, StageOverlap};
use pj2k_ebcot::{BandCtx, BlockCoder, BlockDecoderScratch, EncodedBlock, Tier1Options};
use pj2k_image::{synth, Image, Plane};
use pj2k_smpsim::{
    barriered_decode_makespan, pipelined_decode_makespan, DecodeStageCosts, Schedule,
};

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Smooth background with a dense noise band in every fourth 64-pixel
/// code-block row: heavy blocks recur at a fixed stride, which a stride
/// schedule aliases onto one worker while the pipeline's queue drain
/// rebalances at runtime.
fn skewed_image(side: usize) -> Image {
    let mut state = 0x5EED_BEEFu64;
    Image::gray8(Plane::from_fn(side, side, |x, y| {
        if (y / 64) % 4 == 0 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 256) as i32
        } else {
            (((x + 2 * y) / 8) % 256) as i32
        }
    }))
}

fn barriered(p: usize) -> Decoder {
    Decoder {
        parallel: if p == 1 {
            ParallelMode::Sequential
        } else {
            ParallelMode::WorkerPool { workers: p }
        },
        stage_policy: DecodeStagePolicy::Static,
        ..Decoder::default()
    }
}

fn pipelined(p: usize) -> Decoder {
    Decoder {
        overlap: StageOverlap::Pipelined,
        stage_policy: DecodeStagePolicy::CostWeighted,
        ..barriered(p)
    }
}

struct Workload {
    name: &'static str,
    bytes: Vec<u8>,
    pixels: f64,
    /// Relative Tier-1 cost of block `i` in arrival order, for the model.
    weight: fn(usize) -> f64,
}

fn pyramid_weight(i: usize) -> f64 {
    // Dyadic mix: per 8 blocks, six sparse finest-level, one mid-level,
    // one dense coarse/LL (see bench_tier1's synth_blocks).
    [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 3.0, 9.0][i % 8]
}

fn skewed_weight(i: usize) -> f64 {
    // Period-16 heavy blocks: with p=4 the staggered round-robin stride
    // (worker = (i%p + i/p) % p) sends every one of them to worker 0.
    if i.is_multiple_of(16) {
        24.0
    } else {
        1.0
    }
}

struct MeasuredRow {
    p: usize,
    barriered_secs: f64,
    pipelined_secs: f64,
}

struct ModeledRow {
    p: usize,
    barriered_speedup: f64,
    pipelined_speedup: f64,
}

fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_string()
    }
}

/// Keys the emitted document must contain; checked after writing so a
/// refactor cannot silently change the schema consumers parse.
const REQUIRED_KEYS: &[&str] = &[
    "\"schema\"",
    "\"smoke\"",
    "\"bit_identity\"",
    "\"steady_state\"",
    "\"steady_allocs_per_block\"",
    "\"workloads\"",
    "\"pyramid\"",
    "\"skewed\"",
    "\"parse_secs\"",
    "\"tier1_secs\"",
    "\"dwt_secs\"",
    "\"measured\"",
    "\"barriered_secs\"",
    "\"pipelined_secs\"",
    "\"barriered_mpix_per_sec\"",
    "\"pipelined_mpix_per_sec\"",
    "\"pipelined_over_barriered\"",
    "\"modeled\"",
    "\"barriered_speedup\"",
    "\"pipelined_speedup\"",
    "\"skewed_p4_pipelined_speedup\"",
];

fn validate(doc: &str) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !doc.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    if opens == 0 || opens != closes {
        return Err(format!("unbalanced braces: {opens} vs {closes}"));
    }
    if doc.matches('[').count() != doc.matches(']').count() {
        return Err("unbalanced brackets".to_string());
    }
    Ok(())
}

/// Exact steady-state allocation count of one warm scratch pass: encode a
/// block set, slice the per-pass segments up front, then decode every
/// block through one recycled [`BlockDecoderScratch`] — after the warm-up
/// pass the loop must not allocate at all.
fn steady_state_allocs(n_blocks: usize) -> (u64, usize) {
    let opts = Tier1Options::default();
    let mut state = 0x00DE_C0DE_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    let bands = [BandCtx::LlLh, BandCtx::Hl, BandCtx::Hh];
    let mut coder = BlockCoder::new();
    let blocks: Vec<EncodedBlock> = (0..n_blocks)
        .map(|b| {
            let keep = [4u64, 4, 4, 12, 70][b % 5];
            let coeffs: Vec<i32> = (0..64 * 64)
                .map(|_| {
                    let r = next();
                    if (r >> 32) % 128 < keep {
                        (((r >> 40) & 0xFF) as i32) - 128
                    } else {
                        0
                    }
                })
                .collect();
            coder.encode_with(&coeffs, 64, 64, bands[b % 3], opts)
        })
        .collect();
    // Pre-sliced per-pass segments, exactly what the Tier-2 parser hands
    // the pipelined drain.
    let segments: Vec<Vec<&[u8]>> = blocks
        .iter()
        .map(|blk| {
            let mut segs = Vec::new();
            let mut off = 0usize;
            for pass in &blk.passes {
                segs.push(&blk.data[off..off + pass.len]);
                off += pass.len;
            }
            segs
        })
        .collect();
    let mut scratch = BlockDecoderScratch::new();
    let mut out = Vec::new();
    // Warm-up: size every scratch buffer for the block set.
    for (b, (blk, segs)) in blocks.iter().zip(&segments).enumerate() {
        scratch
            .decode_into(
                blk.width,
                blk.height,
                bands[b % 3],
                blk.msb_planes,
                segs,
                opts,
                &mut out,
            )
            .expect("self-encoded block must decode");
    }
    let a0 = alloc_count::thread_allocs();
    let mut sink = 0i64;
    for (b, (blk, segs)) in blocks.iter().zip(&segments).enumerate() {
        scratch
            .decode_into(
                blk.width,
                blk.height,
                bands[b % 3],
                blk.msb_planes,
                segs,
                opts,
                &mut out,
            )
            .expect("self-encoded block must decode");
        sink += i64::from(out.first().copied().unwrap_or(0));
    }
    std::hint::black_box(sink);
    (alloc_count::thread_allocs() - a0, blocks.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_decode.json".to_string());
    let (kpx, trials, oracle_blocks) = if smoke { (64, 1, 6) } else { (1024, 3, 48) };

    // --- workloads --------------------------------------------------------
    let pyramid_img = test_image(kpx);
    let side = synth::side_for_kpixels(kpx).max(256);
    let skewed_img = skewed_image(side);
    let enc = Encoder::new(EncoderConfig {
        levels: 5,
        ..paper_config()
    })
    .expect("config");
    let workloads = [
        Workload {
            name: "pyramid",
            bytes: enc.encode(&pyramid_img).0,
            pixels: (pyramid_img.width() * pyramid_img.height()) as f64,
            weight: pyramid_weight,
        },
        Workload {
            name: "skewed",
            bytes: enc.encode(&skewed_img).0,
            pixels: (side * side) as f64,
            weight: skewed_weight,
        },
    ];

    // --- in-run bit-identity cross-check ---------------------------------
    for w in &workloads {
        let (reference, _) = Decoder::default().decode(&w.bytes).expect("valid stream");
        for p in [2usize, 4] {
            for (what, dec) in [("barriered", barriered(p)), ("pipelined", pipelined(p))] {
                let (img, _) = dec.decode(&w.bytes).expect("valid stream");
                if img != reference {
                    eprintln!("FAIL: {what} p={p} diverged from sequential on {}", w.name);
                    std::process::exit(1);
                }
            }
        }
    }
    println!("bit-identity: all decoder variants match the sequential reference");

    // --- steady-state allocation oracle ----------------------------------
    let (steady_allocs, oracle_n) = steady_state_allocs(oracle_blocks);
    let steady_per_block = steady_allocs as f64 / oracle_n as f64;
    println!("steady-state oracle: {steady_allocs} allocs over {oracle_n} warm blocks");
    if steady_allocs != 0 {
        eprintln!(
            "FAIL: warm decode scratch allocated {steady_allocs} time(s); the contract is zero"
        );
        std::process::exit(1);
    }

    // --- measured + modeled sweeps ---------------------------------------
    let cpus = [1usize, 2, 4, 8];
    let mut sections = Vec::new();
    let mut skewed_p4 = 0.0f64;
    for w in &workloads {
        // Sequential stage breakdown drives the model.
        let (_, report) = Decoder::default().decode(&w.bytes).expect("valid stream");
        let parse_total = report.stages.get(stage::TIER2).as_secs_f64();
        let tier1_total = report.stages.get(stage::TIER1).as_secs_f64();
        let dwt_total = report.stages.get(stage::INTRA_COMPONENT).as_secs_f64();
        let n = report.num_blocks.max(1);
        let weights: Vec<f64> = (0..n).map(w.weight).collect();
        let wsum: f64 = weights.iter().sum();
        let costs = DecodeStageCosts {
            parse: vec![parse_total / n as f64; n],
            tier1: weights.iter().map(|x| tier1_total * x / wsum).collect(),
            // The finest reconstruction level (~3/4 of the samples)
            // completes last; coarser levels overlap the drain.
            dwt_overlapped: dwt_total * 0.25,
            dwt_exposed: dwt_total * 0.75,
        };
        println!(
            "{}: {} blocks — parse {:.1} ms, tier-1 {:.1} ms, dwt {:.1} ms",
            w.name,
            n,
            parse_total * 1e3,
            tier1_total * 1e3,
            dwt_total * 1e3
        );

        let mut measured = Vec::new();
        let mut modeled = Vec::new();
        for &p in &cpus {
            let mut t_bar = f64::INFINITY;
            let mut t_pipe = f64::INFINITY;
            for _ in 0..trials {
                let (_, t) = time(|| barriered(p).decode(&w.bytes).expect("valid stream"));
                t_bar = t_bar.min(t);
                let (_, t) = time(|| pipelined(p).decode(&w.bytes).expect("valid stream"));
                t_pipe = t_pipe.min(t);
            }
            measured.push(MeasuredRow {
                p,
                barriered_secs: t_bar,
                pipelined_secs: t_pipe,
            });
            let seq = costs.sequential();
            let m_bar = barriered_decode_makespan(&costs, p, Schedule::StaggeredRoundRobin);
            let m_pipe = pipelined_decode_makespan(&costs, p);
            let row = ModeledRow {
                p,
                barriered_speedup: if m_bar > 0.0 { seq / m_bar } else { 1.0 },
                pipelined_speedup: if m_pipe > 0.0 { m_bar / m_pipe } else { 1.0 },
            };
            println!(
                "  p={p}: measured barriered {:.1} ms, pipelined {:.1} ms (x{:.3}); \
                 modeled pipelined/barriered x{:.3}",
                t_bar * 1e3,
                t_pipe * 1e3,
                t_bar / t_pipe,
                row.pipelined_speedup
            );
            if w.name == "skewed" && p == 4 {
                skewed_p4 = row.pipelined_speedup;
            }
            modeled.push(row);
        }
        sections.push((w, parse_total, tier1_total, dwt_total, n, measured, modeled));
    }

    // Self-validation: on the skewed workload at p=4 the cost-weighted
    // pipeline must beat the static barriered decoder by the contract
    // margin (modeled from this run's measured stage totals, so the claim
    // is host-independent; smoke keeps a weaker floor since its tiny
    // stream carries few heavy blocks).
    let floor = if smoke { 1.0 } else { 1.25 };
    if skewed_p4 < floor {
        eprintln!("FAIL: skewed p=4 pipelined speedup {skewed_p4:.3} under floor {floor}");
        std::process::exit(1);
    }

    // --- hand-rolled JSON -------------------------------------------------
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"schema\": \"pj2k.bench_decode.v1\",\n");
    doc.push_str(&format!("  \"smoke\": {smoke},\n"));
    doc.push_str(&format!("  \"kpixels\": {kpx},\n"));
    doc.push_str("  \"bit_identity\": \"ok\",\n");
    doc.push_str(&format!(
        "  \"steady_state\": {{ \"blocks\": {oracle_n}, \"allocs\": {steady_allocs}, \
         \"steady_allocs_per_block\": {} }},\n",
        jf(steady_per_block)
    ));
    doc.push_str("  \"workloads\": {\n");
    for (wi, (w, parse, tier1, dwt, n, measured, modeled)) in sections.iter().enumerate() {
        doc.push_str(&format!("    \"{}\": {{\n", w.name));
        doc.push_str(&format!("      \"blocks\": {n},\n"));
        doc.push_str(&format!("      \"parse_secs\": {},\n", jf(*parse)));
        doc.push_str(&format!("      \"tier1_secs\": {},\n", jf(*tier1)));
        doc.push_str(&format!("      \"dwt_secs\": {},\n", jf(*dwt)));
        doc.push_str("      \"measured\": [\n");
        for (i, r) in measured.iter().enumerate() {
            let mp = w.pixels / 1e6;
            doc.push_str(&format!(
                "        {{ \"p\": {}, \"barriered_secs\": {}, \"pipelined_secs\": {}, \
                 \"barriered_mpix_per_sec\": {}, \"pipelined_mpix_per_sec\": {}, \
                 \"pipelined_over_barriered\": {} }}{}\n",
                r.p,
                jf(r.barriered_secs),
                jf(r.pipelined_secs),
                jf(mp / r.barriered_secs),
                jf(mp / r.pipelined_secs),
                jf(r.barriered_secs / r.pipelined_secs),
                if i + 1 < measured.len() { "," } else { "" }
            ));
        }
        doc.push_str("      ],\n");
        doc.push_str("      \"modeled\": [\n");
        for (i, r) in modeled.iter().enumerate() {
            doc.push_str(&format!(
                "        {{ \"p\": {}, \"barriered_speedup\": {}, \"pipelined_speedup\": {} }}{}\n",
                r.p,
                jf(r.barriered_speedup),
                jf(r.pipelined_speedup),
                if i + 1 < modeled.len() { "," } else { "" }
            ));
        }
        doc.push_str("      ]\n");
        doc.push_str(&format!(
            "    }}{}\n",
            if wi + 1 < sections.len() { "," } else { "" }
        ));
    }
    doc.push_str("  },\n");
    doc.push_str(&format!(
        "  \"skewed_p4_pipelined_speedup\": {}\n}}\n",
        jf(skewed_p4)
    ));

    std::fs::write(&out_path, &doc).expect("write benchmark JSON");
    let written = std::fs::read_to_string(&out_path).expect("re-read benchmark JSON");
    if let Err(e) = validate(&written) {
        eprintln!("BENCH_decode schema validation failed: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} bytes, schema OK)", written.len());
}
