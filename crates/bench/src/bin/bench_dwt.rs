//! DWT kernel & stage-pipelining trajectory harness.
//!
//! Emits `BENCH_dwt.json` (schema `pj2k.bench_dwt.v2`) with three
//! measurements that track this workspace's wavelet-transform performance
//! over time:
//!
//! 1. **Kernel sweep**: seconds and Mpixel/s for the 5-level forward
//!    transform under every lifting/vertical combination — per-step vs
//!    fused single-pass lifting, naive vs strip-mined columns — on a
//!    power-of-two width and a padded stride, plus a thread sweep at
//!    p ∈ {1, 2, 4, 8} for the strip variants.
//! 2. **Stage-overlap comparison**: wall-clock end-to-end encode time,
//!    barriered vs pipelined, at p ∈ {1, 2, 4, 8}, together with *modeled*
//!    makespans replayed from measured per-level DWT times and per-block
//!    Tier-1 costs — so the overlap benefit is visible even when the host
//!    has fewer cores than `p`. Heap-allocation counts per mode come from
//!    a counting global allocator.
//! 3. **Steady-state allocation oracle**: transforms of two plane heights
//!    must show identical allocation-call counts — scratch is sized per
//!    worker range per level, never per strip — the runtime proof behind
//!    the `AUDIT(hot)` justifications `cargo xtask audit-hotpath` accepts
//!    in the DWT closure.
//!
//! ```sh
//! cargo run --release -p pj2k-bench --bin bench_dwt -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the workload for CI: it validates the harness and the
//! JSON schema, not the performance numbers.

use pj2k_bench::alloc_count::{self, CountingAlloc};
use pj2k_bench::{filtering_profile, project_filtering, test_image, time};
use pj2k_core::{
    Encoder, EncoderConfig, FilterStrategy, LiftingMode, ParallelMode, RateControl, Schedule,
    StageOverlap,
};
use pj2k_dwt::{
    forward_53_with, forward_97_level, forward_97_with, Decomposition, SimdMode, SimdTier,
    VerticalStrategy,
};
use pj2k_image::Plane;
use pj2k_parutil::Exec;
use pj2k_smpsim::BusParams;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    alloc_count::global_allocs()
}

const TRIALS: usize = 3;
const STRIP: VerticalStrategy = VerticalStrategy::DEFAULT_STRIP;

/// Deterministic natural-ish sample at (x, y) — smooth gradients plus
/// texture, so lifting work is representative (not all-zero highpass).
fn sample(x: usize, y: usize) -> f32 {
    let (xf, yf) = (x as f32, y as f32);
    (xf * 0.37).sin() * 40.0 + (yf * 0.23).cos() * 30.0 + ((x * 31 + y * 17) % 64) as f32 - 32.0
}

fn fill_f32(p: &mut Plane<f32>) {
    for y in 0..p.height() {
        for (x, v) in p.row_mut(y).iter_mut().enumerate() {
            *v = sample(x, y);
        }
    }
}

fn fill_i32(p: &mut Plane<i32>) {
    for y in 0..p.height() {
        for (x, v) in p.row_mut(y).iter_mut().enumerate() {
            *v = sample(x, y) as i32;
        }
    }
}

/// One kernel-sweep measurement row.
struct KRow {
    wavelet: &'static str,
    lifting: &'static str,
    vertical: &'static str,
    simd: &'static str,
    pad: usize,
    p: usize,
    secs: f64,
    vert_secs: f64,
    mpix_per_sec: f64,
}

/// Best-of-trials (total seconds, vertical-pass seconds of that run).
#[allow(clippy::too_many_arguments)]
fn bench_97(
    w: usize,
    h: usize,
    pad: usize,
    levels: u8,
    lifting: LiftingMode,
    vstrat: VerticalStrategy,
    simd: SimdMode,
    p: usize,
) -> (f64, f64) {
    let exec = if p == 1 { Exec::SEQ } else { Exec::threads(p) };
    let mut plane = Plane::<f32>::with_stride(w, h, w + pad);
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..TRIALS {
        fill_f32(&mut plane);
        let ((_, stats), t) =
            time(|| forward_97_with(&mut plane, levels, vstrat, lifting, simd, &exec));
        if t < best.0 {
            best = (t, stats.vertical.as_secs_f64());
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn bench_53(
    w: usize,
    h: usize,
    pad: usize,
    levels: u8,
    lifting: LiftingMode,
    vstrat: VerticalStrategy,
    simd: SimdMode,
    p: usize,
) -> (f64, f64) {
    let exec = if p == 1 { Exec::SEQ } else { Exec::threads(p) };
    let mut plane = Plane::<i32>::with_stride(w, h, w + pad);
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..TRIALS {
        fill_i32(&mut plane);
        let ((_, stats), t) =
            time(|| forward_53_with(&mut plane, levels, vstrat, lifting, simd, &exec));
        if t < best.0 {
            best = (t, stats.vertical.as_secs_f64());
        }
    }
    best
}

/// Thread-exact allocation count of one sequential fused-strip forward
/// 9/7 transform of a freshly filled `w x h` plane (plane construction
/// and fill excluded from the count).
fn strip_transform_allocs(w: usize, h: usize, levels: u8) -> u64 {
    let mut p = Plane::<f32>::new(w, h);
    fill_f32(&mut p);
    let a0 = alloc_count::thread_allocs();
    forward_97_with(
        &mut p,
        levels,
        STRIP,
        LiftingMode::Fused,
        SimdMode::Auto,
        &Exec::SEQ,
    );
    let spent = alloc_count::thread_allocs() - a0;
    std::hint::black_box(&p);
    spent
}

/// The SIMD tiers this host can ablate, plus auto dispatch.
fn simd_modes() -> Vec<(&'static str, SimdMode)> {
    let mut modes: Vec<(&'static str, SimdMode)> = Vec::new();
    for (name, tier) in [
        ("portable", SimdTier::Portable),
        ("sse2", SimdTier::Sse2),
        ("avx2", SimdTier::Avx2),
    ] {
        if tier.is_supported() {
            modes.push((name, SimdMode::Forced(tier)));
        }
    }
    modes.push(("auto", SimdMode::Auto));
    modes
}

/// Re-validate on the bench workload itself that every tier produces the
/// scalar coefficients bit for bit (the proptests cover small shapes; this
/// covers the exact planes being timed).
fn check_bit_identity(side: usize, levels: u8) -> bool {
    let mut ok = true;
    let mut scalar = Plane::<f32>::new(side, side);
    fill_f32(&mut scalar);
    forward_97_with(
        &mut scalar,
        levels,
        STRIP,
        LiftingMode::Fused,
        SimdMode::Scalar,
        &Exec::SEQ,
    );
    for (name, mode) in simd_modes() {
        let mut p = Plane::<f32>::new(side, side);
        fill_f32(&mut p);
        forward_97_with(&mut p, levels, STRIP, LiftingMode::Fused, mode, &Exec::SEQ);
        let same = p
            .samples()
            .zip(scalar.samples())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        println!(
            "bit-identity 9/7 fused strip {side}x{side} L={levels} tier={name}: {}",
            if same { "ok" } else { "MISMATCH" }
        );
        ok &= same;
    }
    let mut scalar_i = Plane::<i32>::new(side, side);
    fill_i32(&mut scalar_i);
    forward_53_with(
        &mut scalar_i,
        levels,
        STRIP,
        LiftingMode::Fused,
        SimdMode::Scalar,
        &Exec::SEQ,
    );
    for (name, mode) in simd_modes() {
        let mut p = Plane::<i32>::new(side, side);
        fill_i32(&mut p);
        forward_53_with(&mut p, levels, STRIP, LiftingMode::Fused, mode, &Exec::SEQ);
        let same = p.samples().zip(scalar_i.samples()).all(|(a, b)| a == b);
        println!(
            "bit-identity 5/3 fused strip {side}x{side} L={levels} tier={name}: {}",
            if same { "ok" } else { "MISMATCH" }
        );
        ok &= same;
    }
    ok
}

fn lift_name(l: LiftingMode) -> &'static str {
    match l {
        LiftingMode::PerStep => "per_step",
        LiftingMode::Fused => "fused",
    }
}

fn vert_name(v: VerticalStrategy) -> &'static str {
    match v {
        VerticalStrategy::Naive => "naive",
        VerticalStrategy::Strip { .. } => "strip",
    }
}

/// Greedy earliest-available-worker replay of the measured block costs under
/// per-job release times — the runtime behaviour of dynamic self-scheduling
/// consumers draining the pipeline queue in arrival order.
fn simulate(releases: &[f64], costs: &[f64], p: usize) -> f64 {
    assert_eq!(releases.len(), costs.len());
    // Workers claim in arrival order, so replay chronologically (stable:
    // ties keep publish order).
    let mut order: Vec<usize> = (0..releases.len()).collect();
    order.sort_by(|&a, &b| releases[a].total_cmp(&releases[b]));
    let mut free = vec![0.0f64; p.max(1)];
    let mut end = 0.0f64;
    for i in order {
        let (r, d) = (releases[i], costs[i]);
        let w = (0..free.len())
            .min_by(|&a, &b| free[a].total_cmp(&free[b]))
            .unwrap_or(0);
        let start = free[w].max(r);
        free[w] = start + d;
        end = end.max(free[w]);
    }
    end
}

/// Per-job release times for the pipelined producer on a grayscale image:
/// jobs of the subbands finalized by DWT step `l` become available at the
/// cumulative transform time through step `l` (`dwt_secs`, the projected
/// whole-transform time at the modeled worker count, split across steps by
/// the measured serial per-level shares) plus the serial band-extraction
/// share. Job order is the encoder's: `subbands()` order, one precinct
/// (contiguous job range) per band.
fn pipeline_releases(
    deco: &Decomposition,
    level_shares: &[f64],
    dwt_secs: f64,
    extract_secs: f64,
    code_block: (usize, usize),
) -> Vec<f64> {
    let bands = deco.subbands();
    let n_blocks = |w: usize, h: usize| {
        if w == 0 || h == 0 {
            0
        } else {
            w.div_ceil(code_block.0) * h.div_ceil(code_block.1)
        }
    };
    // Cumulative producer time after each step (extraction cost spread
    // uniformly across the steps — a modelling simplification).
    let steps = level_shares.len();
    let mut cum = Vec::with_capacity(steps);
    let mut acc = 0.0;
    for &share in level_shares {
        acc += dwt_secs * share + extract_secs / steps.max(1) as f64;
        cum.push(acc);
    }
    let release_of = |level: u8| {
        if steps == 0 {
            0.0
        } else {
            cum[usize::from(level.max(1)) - 1]
        }
    };
    let mut releases = Vec::new();
    for sb in &bands {
        let r = release_of(sb.level);
        for _ in 0..n_blocks(sb.w, sb.h) {
            releases.push(r);
        }
    }
    releases
}

fn enc_cfg(p: usize, overlap: StageOverlap, levels: u8) -> EncoderConfig {
    EncoderConfig {
        rate: RateControl::TargetBpp(vec![1.0]),
        levels,
        filter: FilterStrategy::Strip,
        lifting: LiftingMode::Fused,
        overlap,
        parallel: if p == 1 {
            ParallelMode::Sequential
        } else {
            ParallelMode::WorkerPool { workers: p }
        },
        tier1_schedule: Schedule::Dynamic { chunk: 1 },
        ..EncoderConfig::default()
    }
}

fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_string()
    }
}

/// Keys the emitted document must contain; checked after writing so a
/// refactor cannot silently change the schema consumers parse.
const REQUIRED_KEYS: &[&str] = &[
    "\"schema\"",
    "\"smoke\"",
    "\"kernels\"",
    "\"wavelet\"",
    "\"lifting\"",
    "\"vertical\"",
    "\"mpix_per_sec\"",
    "\"fused_strip_speedup_97\"",
    "\"fused_naive_speedup_97\"",
    "\"fused_strip_speedup_53\"",
    "\"simd\"",
    "\"vert_secs\"",
    "\"simd_tiers\"",
    "\"simd_best_tier\"",
    "\"simd_strip_speedup_97\"",
    "\"simd_strip_speedup_53\"",
    "\"simd_bit_identity\"",
    "\"encoder\"",
    "\"barriered_secs\"",
    "\"pipelined_secs\"",
    "\"modeled_barriered_secs\"",
    "\"modeled_pipelined_secs\"",
    "\"modeled_pipelined_speedup\"",
    "\"allocs\"",
    "\"steady_state\"",
    "\"allocs_marginal_per_strip\"",
];

fn validate(doc: &str) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if !doc.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    if opens == 0 || opens != closes {
        return Err(format!("unbalanced braces: {opens} vs {closes}"));
    }
    if doc.matches('[').count() != doc.matches(']').count() {
        return Err("unbalanced brackets".to_string());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_dwt.json".to_string());

    let levels: u8 = 5;
    let (side, kpx) = if smoke { (256usize, 64) } else { (2048, 1024) };
    let mpix = (side * side) as f64 / 1e6;

    // --- kernel sweep ----------------------------------------------------
    // Untimed warm-up touches every code path once.
    let _ = bench_97(64, 64, 0, 2, LiftingMode::Fused, STRIP, SimdMode::Auto, 1);
    let _ = bench_53(64, 64, 0, 2, LiftingMode::Fused, STRIP, SimdMode::Auto, 1);

    // The scalar matrix (simd = "scalar") keeps the PR 4 trajectory rows
    // comparable release over release; the tier sweep below ablates the
    // SIMD dispatch on top of the strip kernels.
    let mut rows: Vec<KRow> = Vec::new();
    for (lifting, vstrat) in [
        (LiftingMode::PerStep, VerticalStrategy::Naive),
        (LiftingMode::PerStep, STRIP),
        (LiftingMode::Fused, VerticalStrategy::Naive),
        (LiftingMode::Fused, STRIP),
    ] {
        for pad in [0usize, 8] {
            let (secs, vert_secs) = bench_97(
                side,
                side,
                pad,
                levels,
                lifting,
                vstrat,
                SimdMode::Scalar,
                1,
            );
            rows.push(KRow {
                wavelet: "9/7",
                lifting: lift_name(lifting),
                vertical: vert_name(vstrat),
                simd: "scalar",
                pad,
                p: 1,
                secs,
                vert_secs,
                mpix_per_sec: mpix / secs,
            });
            let (secs, vert_secs) = bench_53(
                side,
                side,
                pad,
                levels,
                lifting,
                vstrat,
                SimdMode::Scalar,
                1,
            );
            rows.push(KRow {
                wavelet: "5/3",
                lifting: lift_name(lifting),
                vertical: vert_name(vstrat),
                simd: "scalar",
                pad,
                p: 1,
                secs,
                vert_secs,
                mpix_per_sec: mpix / secs,
            });
        }
    }
    // Per-tier ablation: strip vertical under every runtime-dispatch tier
    // this host supports, both lifting modes, both wavelets.
    for (simd_name, mode) in simd_modes() {
        for lifting in [LiftingMode::PerStep, LiftingMode::Fused] {
            let (secs, vert_secs) = bench_97(side, side, 0, levels, lifting, STRIP, mode, 1);
            rows.push(KRow {
                wavelet: "9/7",
                lifting: lift_name(lifting),
                vertical: "strip",
                simd: simd_name,
                pad: 0,
                p: 1,
                secs,
                vert_secs,
                mpix_per_sec: mpix / secs,
            });
            let (secs, vert_secs) = bench_53(side, side, 0, levels, lifting, STRIP, mode, 1);
            rows.push(KRow {
                wavelet: "5/3",
                lifting: lift_name(lifting),
                vertical: "strip",
                simd: simd_name,
                pad: 0,
                p: 1,
                secs,
                vert_secs,
                mpix_per_sec: mpix / secs,
            });
        }
    }
    for p in [2usize, 4, 8] {
        for lifting in [LiftingMode::PerStep, LiftingMode::Fused] {
            let (secs, vert_secs) =
                bench_97(side, side, 0, levels, lifting, STRIP, SimdMode::Auto, p);
            rows.push(KRow {
                wavelet: "9/7",
                lifting: lift_name(lifting),
                vertical: "strip",
                simd: "auto",
                pad: 0,
                p,
                secs,
                vert_secs,
                mpix_per_sec: mpix / secs,
            });
        }
    }
    for r in &rows {
        println!(
            "kernel {} {}/{} simd={} pad={} p={}: {:.1} ms, vert {:.1} ms ({:.1} Mpix/s)",
            r.wavelet,
            r.lifting,
            r.vertical,
            r.simd,
            r.pad,
            r.p,
            r.secs * 1e3,
            r.vert_secs * 1e3,
            r.mpix_per_sec
        );
    }
    let pick = |wav: &str, lift: &str, vert: &str, simd: &str| {
        rows.iter()
            .find(|r| {
                r.wavelet == wav
                    && r.lifting == lift
                    && r.vertical == vert
                    && r.simd == simd
                    && r.pad == 0
                    && r.p == 1
            })
            .map_or((f64::INFINITY, f64::INFINITY), |r| (r.secs, r.vert_secs))
    };
    let fused_strip_97 =
        pick("9/7", "per_step", "strip", "scalar").0 / pick("9/7", "fused", "strip", "scalar").0;
    let fused_naive_97 =
        pick("9/7", "per_step", "naive", "scalar").0 / pick("9/7", "fused", "naive", "scalar").0;
    let fused_strip_53 =
        pick("5/3", "per_step", "strip", "scalar").0 / pick("5/3", "fused", "strip", "scalar").0;
    println!(
        "fused speedup (single thread, pow2 width): 9/7 strip {fused_strip_97:.3}x, \
         9/7 naive {fused_naive_97:.3}x, 5/3 strip {fused_strip_53:.3}x"
    );
    // SIMD strip-vertical speedup: scalar fused strip vertical pass over
    // the best forced tier's fused strip vertical pass (ISSUE 5 gate).
    let mut simd_best_tier = "scalar";
    let mut simd_best_vert = (f64::INFINITY, f64::INFINITY);
    for (name, _) in simd_modes() {
        if name == "auto" {
            continue;
        }
        let v97 = pick("9/7", "fused", "strip", name).1;
        if v97 < simd_best_vert.0 {
            simd_best_tier = name;
            simd_best_vert = (v97, pick("5/3", "fused", "strip", name).1);
        }
    }
    let simd_strip_speedup_97 = pick("9/7", "fused", "strip", "scalar").1 / simd_best_vert.0;
    let simd_strip_speedup_53 = pick("5/3", "fused", "strip", "scalar").1 / simd_best_vert.1;
    println!(
        "simd strip-vertical speedup over scalar fused (best tier {simd_best_tier}): \
         9/7 {simd_strip_speedup_97:.3}x, 5/3 {simd_strip_speedup_53:.3}x"
    );

    // --- per-tier bit-identity on the bench workload ----------------------
    let simd_bit_identity = check_bit_identity(side.min(512), levels);

    // --- steady-state allocation oracle ----------------------------------
    // DWT scratch is sized per worker range per level, never per strip:
    // doubling the plane height (and hence the strip count) must not
    // change the allocation-call count of a sequential transform. This is
    // the runtime check behind the `AUDIT(hot): amortized` annotations
    // audit-hotpath accepts in the DWT closure.
    let (h_short, h_tall, o_levels) = (256usize, 512usize, 3u8);
    let a_short = strip_transform_allocs(256, h_short, o_levels);
    let a_tall = strip_transform_allocs(256, h_tall, o_levels);
    // Strips the taller plane adds, summed over levels (strip height 16).
    let mut extra_strips = 0usize;
    let (mut hs, mut ht) = (h_short, h_tall);
    for _ in 0..o_levels {
        extra_strips += (ht - hs) / 16;
        hs = hs.div_ceil(2);
        ht = ht.div_ceil(2);
    }
    let marginal = (a_tall as f64 - a_short as f64) / extra_strips.max(1) as f64;
    println!(
        "steady-state oracle: strip transform allocs {a_short} (h={h_short}) vs \
         {a_tall} (h={h_tall}) — {marginal:.4} per extra strip"
    );
    if a_tall != a_short {
        eprintln!(
            "FAIL: {} extra strips cost {} extra allocation(s); the contract is zero",
            extra_strips,
            a_tall as i64 - a_short as i64
        );
        std::process::exit(1);
    }

    // --- stage overlap: barriered vs pipelined end-to-end ----------------
    let img = test_image(kpx);
    let (iw, ih) = (img.width(), img.height());

    // Model inputs: per-level serial DWT shares (fused strip), the
    // bus-contention filtering profile (how far the memory-bound DWT can
    // scale, same machinery as the Fig. 6/9 projections), and the
    // sequential barriered profile (stage split + per-block Tier-1 costs).
    let deco = Decomposition::new(iw, ih, levels);
    let mut level_secs = vec![f64::INFINITY; usize::from(levels)];
    let mut plane = Plane::<f32>::new(iw, ih);
    for _ in 0..TRIALS {
        fill_f32(&mut plane);
        for l in 0..levels {
            let (_, t) = time(|| {
                forward_97_level(
                    &mut plane,
                    &deco,
                    l,
                    STRIP,
                    LiftingMode::Fused,
                    SimdMode::Auto,
                    &Exec::SEQ,
                )
            });
            let slot = &mut level_secs[usize::from(l)];
            *slot = slot.min(t);
        }
    }
    let level_total: f64 = level_secs.iter().sum();
    let level_shares: Vec<f64> = level_secs
        .iter()
        .map(|&t| {
            if level_total > 0.0 {
                t / level_total
            } else {
                0.0
            }
        })
        .collect();
    let fp = filtering_profile(iw.min(1024), levels);
    let fp_anchor = fp.strip.total().as_secs_f64();

    let profile_enc = Encoder::new(enc_cfg(1, StageOverlap::Barriered, levels)).expect("config");
    let a0 = allocs();
    let (out_barriered, profile) = profile_enc.encode(&img);
    let barriered_allocs = allocs() - a0;
    let costs = &profile.block_times;
    let stage_secs = |name: &str| {
        profile
            .stages
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0.0, |(_, d)| d.as_secs_f64())
    };
    let t_dwt = stage_secs(pj2k_core::report::stage::INTRA_COMPONENT);
    let t_quant = stage_secs(pj2k_core::report::stage::QUANTIZATION);

    let pipe_enc = Encoder::new(enc_cfg(1, StageOverlap::Pipelined, levels)).expect("config");
    let a0 = allocs();
    let (out_pipelined, pipe_profile) = pipe_enc.encode(&img);
    let pipelined_allocs = allocs() - a0;
    assert_eq!(
        out_barriered, out_pipelined,
        "pipelined encode changed the codestream"
    );
    // The pipelined producer's serial band-extraction cost, as measured
    // (its quantization-stage share) — much cheaper than the barriered
    // full-plane quantization pass it replaces.
    let t_extract = pipe_profile
        .stages
        .iter()
        .find(|(n, _)| *n == pj2k_core::report::stage::QUANTIZATION)
        .map_or(0.0, |(_, d)| d.as_secs_f64());

    let zeros = vec![0.0f64; costs.len()];

    let mut enc_rows = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let mut t_bar = f64::INFINITY;
        let mut t_pipe = f64::INFINITY;
        for _ in 0..TRIALS {
            let e = Encoder::new(enc_cfg(p, StageOverlap::Barriered, levels)).expect("config");
            let (_, t) = time(|| e.encode(&img));
            t_bar = t_bar.min(t);
            let e = Encoder::new(enc_cfg(p, StageOverlap::Pipelined, levels)).expect("config");
            let (_, t) = time(|| e.encode(&img));
            t_pipe = t_pipe.min(t);
        }
        // Projected DWT stage time at p workers under FSB contention
        // (memory-bound filtering does not scale linearly), anchored to the
        // measured serial DWT magnitude — the same model as the Fig. 6/9
        // stage projections.
        let dwt_p = if fp_anchor > 0.0 {
            (project_filtering(&fp.strip_items, p, BusParams::PENTIUM2_FSB)
                + project_filtering(&fp.horiz_items, p, BusParams::PENTIUM2_FSB))
                * (t_dwt / fp_anchor)
        } else {
            t_dwt / p as f64
        };
        // Modeled: barriered runs the whole projected DWT, the quantization
        // pass split p ways, then the Tier-1 drain from a common start.
        // Pipelined releases each band's jobs as its level of the projected
        // transform finalizes (extraction serial on the producer), and the
        // compute-bound block coding fills the bus-stall slack the
        // memory-bound filtering leaves on the remaining workers —
        // quantization itself is folded into the consumers' staging.
        let m_bar = dwt_p + t_quant / p as f64 + simulate(&zeros, costs, p);
        let releases = pipeline_releases(&deco, &level_shares, dwt_p, t_extract, (64, 64));
        assert_eq!(
            releases.len(),
            costs.len(),
            "release model disagrees with the encoder's job count"
        );
        let m_pipe = simulate(&releases, costs, p);
        println!(
            "encoder p={p}: barriered {:.1} ms, pipelined {:.1} ms (measured x{:.3}); \
             modeled {:.1} ms vs {:.1} ms (x{:.3})",
            t_bar * 1e3,
            t_pipe * 1e3,
            t_bar / t_pipe,
            m_bar * 1e3,
            m_pipe * 1e3,
            m_bar / m_pipe
        );
        enc_rows.push((p, t_bar, t_pipe, m_bar, m_pipe));
    }
    println!(
        "allocations, sequential encode: barriered {barriered_allocs}, \
         pipelined {pipelined_allocs}"
    );

    // --- hand-rolled JSON -------------------------------------------------
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"schema\": \"pj2k.bench_dwt.v2\",\n");
    doc.push_str(&format!("  \"smoke\": {smoke},\n"));
    doc.push_str(&format!("  \"image_side\": {side},\n"));
    doc.push_str(&format!("  \"levels\": {levels},\n"));
    doc.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        doc.push_str(&format!(
            "    {{ \"wavelet\": \"{}\", \"lifting\": \"{}\", \"vertical\": \"{}\", \
             \"simd\": \"{}\", \"stride_pad\": {}, \"p\": {}, \"secs\": {}, \
             \"vert_secs\": {}, \"mpix_per_sec\": {} }}{}\n",
            r.wavelet,
            r.lifting,
            r.vertical,
            r.simd,
            r.pad,
            r.p,
            jf(r.secs),
            jf(r.vert_secs),
            jf(r.mpix_per_sec),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ],\n");
    doc.push_str(&format!(
        "  \"fused_strip_speedup_97\": {},\n",
        jf(fused_strip_97)
    ));
    doc.push_str(&format!(
        "  \"fused_naive_speedup_97\": {},\n",
        jf(fused_naive_97)
    ));
    doc.push_str(&format!(
        "  \"fused_strip_speedup_53\": {},\n",
        jf(fused_strip_53)
    ));
    let tier_names: Vec<String> = simd_modes()
        .iter()
        .map(|(n, _)| format!("\"{n}\""))
        .collect();
    doc.push_str(&format!("  \"simd_tiers\": [{}],\n", tier_names.join(", ")));
    doc.push_str(&format!("  \"simd_best_tier\": \"{simd_best_tier}\",\n"));
    doc.push_str(&format!(
        "  \"simd_strip_speedup_97\": {},\n",
        jf(simd_strip_speedup_97)
    ));
    doc.push_str(&format!(
        "  \"simd_strip_speedup_53\": {},\n",
        jf(simd_strip_speedup_53)
    ));
    doc.push_str(&format!("  \"simd_bit_identity\": {simd_bit_identity},\n"));
    doc.push_str(&format!("  \"encoder_kpixels\": {kpx},\n"));
    doc.push_str("  \"encoder\": [\n");
    for (i, (p, t_bar, t_pipe, m_bar, m_pipe)) in enc_rows.iter().enumerate() {
        doc.push_str(&format!(
            "    {{ \"p\": {p}, \"barriered_secs\": {}, \"pipelined_secs\": {}, \
             \"measured_speedup\": {}, \"modeled_barriered_secs\": {}, \
             \"modeled_pipelined_secs\": {}, \"modeled_pipelined_speedup\": {} }}{}\n",
            jf(*t_bar),
            jf(*t_pipe),
            jf(t_bar / t_pipe),
            jf(*m_bar),
            jf(*m_pipe),
            jf(m_bar / m_pipe),
            if i + 1 < enc_rows.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ],\n");
    doc.push_str(&format!(
        "  \"allocs\": {{ \"barriered\": {barriered_allocs}, \"pipelined\": {pipelined_allocs} }},\n"
    ));
    doc.push_str(&format!(
        "  \"steady_state\": {{ \"allocs_short\": {a_short}, \"allocs_tall\": {a_tall}, \
         \"extra_strips\": {extra_strips}, \"allocs_marginal_per_strip\": {} }}\n",
        jf(marginal)
    ));
    doc.push_str("}\n");

    std::fs::write(&out_path, &doc).expect("write benchmark JSON");
    let written = std::fs::read_to_string(&out_path).expect("re-read benchmark JSON");
    if let Err(e) = validate(&written) {
        eprintln!("BENCH_dwt schema validation failed: {e}");
        std::process::exit(1);
    }
    if !simd_bit_identity {
        eprintln!("SIMD tier produced coefficients differing from scalar");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} bytes, schema OK)", written.len());
}
