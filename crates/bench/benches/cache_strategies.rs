//! Ablation bench: strip width sweep for the improved vertical filtering
//! (the design choice behind `VerticalStrategy::DEFAULT_STRIP`), plus the
//! padded-width alternative, on the pathological power-of-two pitch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pj2k_dwt::{forward_97, VerticalStrategy};
use pj2k_image::Plane;
use pj2k_parutil::Exec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let side = 1024;
    let src = Plane::from_fn(side, side, |x, y| ((x * 7 + y * 3) % 255) as f32);
    let mut group = c.benchmark_group("strip_width_ablation");
    group.sample_size(10);
    for width in [1usize, 2, 4, 8, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            b.iter(|| {
                let mut p = src.clone();
                forward_97(&mut p, 5, VerticalStrategy::Strip { width: w }, &Exec::SEQ);
                black_box(p);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
