//! Criterion companion of Fig. 3: the two hot stages in isolation — the
//! multi-level DWT (intra-component transform) and Tier-1 block coding —
//! plus the full pipeline for reference.

use criterion::{criterion_group, criterion_main, Criterion};
use pj2k_core::{Encoder, EncoderConfig, RateControl};
use pj2k_dwt::{forward_97, VerticalStrategy};
use pj2k_ebcot::{encode_block, BandCtx};
use pj2k_image::{synth, Plane};
use pj2k_parutil::Exec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03_stage_breakdown");
    group.sample_size(10);

    // Stage: DWT on a 512x512 plane, paper defaults.
    let src = Plane::from_fn(512, 512, |x, y| ((x * 31 + y * 17) % 251) as f32 - 125.0);
    group.bench_function("dwt_5level_97", |b| {
        b.iter(|| {
            let mut p = src.clone();
            forward_97(&mut p, 5, VerticalStrategy::Naive, &Exec::SEQ);
            black_box(p);
        })
    });

    // Stage: Tier-1 on a representative dense 64x64 code-block.
    let coeffs: Vec<i32> = (0..64 * 64)
        .map(|i| {
            let v = ((i * 37 + 11) % 255) - 127;
            v / (1 + (i % 4))
        })
        .collect();
    group.bench_function("tier1_block_64x64", |b| {
        b.iter(|| encode_block(black_box(&coeffs), 64, 64, BandCtx::Hh))
    });

    // Full pipeline for scale.
    let img = synth::natural_gray(256, 256, 3);
    let encoder = Encoder::new(EncoderConfig {
        rate: RateControl::TargetBpp(vec![1.0]),
        ..EncoderConfig::default()
    })
    .unwrap();
    group.bench_function("full_encode_256", |b| {
        b.iter(|| encoder.encode(black_box(&img)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
