//! Tier-1 microbenchmarks: encode/decode of code-blocks with different
//! statistics (the per-block costs that feed the scheduling model), plus
//! the MQ coder in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use pj2k_ebcot::{decode_block, encode_block, BandCtx};
use pj2k_mq::{CtxState, MqEncoder};
use std::hint::black_box;

fn block(gen: impl Fn(usize) -> i32) -> Vec<i32> {
    (0..64 * 64).map(gen).collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tier1_blocks");
    group.sample_size(20);

    let dense = block(|i| ((i * 37 + 11) % 255) as i32 - 127);
    let sparse = block(|i| if i % 97 == 0 { 1 << (i % 10) } else { 0 });
    let empty = block(|_| 0);
    group.bench_function("encode_dense", |b| {
        b.iter(|| encode_block(black_box(&dense), 64, 64, BandCtx::LlLh))
    });
    group.bench_function("encode_sparse", |b| {
        b.iter(|| encode_block(black_box(&sparse), 64, 64, BandCtx::Hh))
    });
    group.bench_function("encode_empty", |b| {
        b.iter(|| encode_block(black_box(&empty), 64, 64, BandCtx::Hl))
    });

    let blk = encode_block(&dense, 64, 64, BandCtx::LlLh);
    let segs: Vec<&[u8]> = (0..blk.passes.len()).map(|p| blk.segment(p)).collect();
    group.bench_function("decode_dense", |b| {
        b.iter(|| decode_block(64, 64, BandCtx::LlLh, blk.msb_planes, black_box(&segs)).unwrap())
    });

    group.bench_function("mq_encode_10k_decisions", |b| {
        b.iter(|| {
            let mut enc = MqEncoder::new();
            let mut ctx = CtxState::default();
            for i in 0..10_000u32 {
                enc.encode(&mut ctx, ((i * i) % 7 == 0) as u8);
            }
            black_box(enc.flush())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
