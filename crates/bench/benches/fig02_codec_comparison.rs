//! Criterion companion of Fig. 2: encode throughput of the three codecs on
//! a fixed 256x256 input (small enough for statistically stable criterion
//! runs; the `fig02_codec_comparison` binary sweeps the paper's sizes).

use criterion::{criterion_group, criterion_main, Criterion};
use pj2k_core::{Encoder, EncoderConfig, RateControl};
use pj2k_image::synth;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let img = synth::natural_gray(256, 256, 42);
    let mut group = c.benchmark_group("fig02_codec_comparison");
    group.sample_size(10);

    group.bench_function("jpeg_q75", |b| {
        b.iter(|| pj2k_jpegbase::encode(black_box(&img), 75).unwrap())
    });
    group.bench_function("spiht_1bpp", |b| {
        b.iter(|| pj2k_spiht::encode(black_box(&img), 5, 1.0).unwrap())
    });
    let encoder = Encoder::new(EncoderConfig {
        rate: RateControl::TargetBpp(vec![1.0]),
        ..EncoderConfig::default()
    })
    .unwrap();
    group.bench_function("jpeg2000_1bpp", |b| {
        b.iter(|| encoder.encode(black_box(&img)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
