//! Criterion companion of Figs. 7/8: vertical filtering strategies on a
//! power-of-two plane — the serial cache effect measured live on the host.

use criterion::{criterion_group, criterion_main, Criterion};
use pj2k_dwt::{forward_97, VerticalStrategy};
use pj2k_image::Plane;
use pj2k_parutil::Exec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let side = 1024; // power of two: the pathological pitch
    let src = Plane::from_fn(side, side, |x, y| ((x * 13 + y * 29) % 251) as f32);
    let padded = src.restride(side + 8);
    let mut group = c.benchmark_group("fig07_filtering");
    group.sample_size(10);

    group.bench_function("naive_pow2", |b| {
        b.iter(|| {
            let mut p = src.clone();
            forward_97(&mut p, 5, VerticalStrategy::Naive, &Exec::SEQ);
            black_box(p);
        })
    });
    group.bench_function("naive_padded_width", |b| {
        b.iter(|| {
            let mut p = padded.clone();
            forward_97(&mut p, 5, VerticalStrategy::Naive, &Exec::SEQ);
            black_box(p);
        })
    });
    group.bench_function("strip16_pow2", |b| {
        b.iter(|| {
            let mut p = src.clone();
            forward_97(&mut p, 5, VerticalStrategy::Strip { width: 16 }, &Exec::SEQ);
            black_box(p);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
