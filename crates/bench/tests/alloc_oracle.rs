//! Steady-state zero-allocation oracle.
//!
//! The static half of the hot-path contract is `cargo xtask audit-hotpath`:
//! every allocation site in the hot closure carries an `AUDIT(hot)`
//! justification, many of which claim "amortized" — the site runs only
//! while a recycled buffer grows to its high-water mark. This test is the
//! runtime half: with a counting global allocator installed, it proves
//! those claims hold — a warm Tier-1 arena codes blocks with exactly zero
//! heap traffic, and a DWT strip pass allocates nothing per additional
//! strip.
//!
//! Counts use the thread-local counter from [`pj2k_bench::alloc_count`],
//! so concurrently running tests in this harness cannot perturb the
//! numbers.

#![cfg(feature = "alloc-count")]

use pj2k_bench::alloc_count::{self, CountingAlloc};
use pj2k_dwt::{forward_53_with, forward_97_with, LiftingMode, SimdMode, VerticalStrategy};
use pj2k_ebcot::{BandCtx, BlockCoder, EncodedBlock, Tier1Engine, Tier1Options};
use pj2k_image::Plane;
use pj2k_parutil::Exec;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Deterministic synthetic code-blocks with subband-like sparsity
/// (same generator as `bench_tier1`).
fn synth_blocks(n: usize) -> Vec<Vec<i32>> {
    let mut state = 0x5DEECE66Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    (0..n)
        .map(|b| {
            let keep = [4usize, 4, 4, 4, 4, 4, 12, 70][b % 8];
            (0..64 * 64)
                .map(|_| {
                    let r = next();
                    if (r >> 32) % 128 < keep as u64 {
                        (((r >> 40) & 0xFF) as i32) - 128
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect()
}

fn band_of(i: usize) -> BandCtx {
    match i % 3 {
        0 => BandCtx::LlLh,
        1 => BandCtx::Hl,
        _ => BandCtx::Hh,
    }
}

/// Warm-then-measure: the recycled arena must not allocate at all once
/// every scratch buffer has reached its high-water mark.
fn tier1_steady_allocs(engine: Tier1Engine) -> u64 {
    let blocks = synth_blocks(8);
    let opts = Tier1Options::default();
    let mut coder = BlockCoder::with_engine(engine);
    let mut out = EncodedBlock::default();
    let mut sink = 0usize;
    // Warm-up pass sizes every buffer for the largest block in the set.
    for (i, coeffs) in blocks.iter().enumerate() {
        coder.coeff_scratch().extend_from_slice(coeffs);
        coder.encode_scratch_into(64, 64, band_of(i), opts, &mut out);
        sink += out.data.len();
    }
    let a0 = alloc_count::thread_allocs();
    for _ in 0..3 {
        for (i, coeffs) in blocks.iter().enumerate() {
            coder.coeff_scratch().extend_from_slice(coeffs);
            coder.encode_scratch_into(64, 64, band_of(i), opts, &mut out);
            sink += out.data.len();
        }
    }
    std::hint::black_box(sink);
    alloc_count::thread_allocs() - a0
}

#[test]
fn tier1_reference_engine_codes_warm_blocks_without_allocating() {
    assert_eq!(
        tier1_steady_allocs(Tier1Engine::Reference),
        0,
        "warm reference-engine arena must be allocation-free"
    );
}

#[test]
fn tier1_bitplane_engine_codes_warm_blocks_without_allocating() {
    assert_eq!(
        tier1_steady_allocs(Tier1Engine::Bitplane),
        0,
        "warm bitplane-engine arena must be allocation-free"
    );
}

fn fill_f32(p: &mut Plane<f32>) {
    for y in 0..p.height() {
        for (x, v) in p.row_mut(y).iter_mut().enumerate() {
            *v = ((x * 31 + y * 17) % 251) as f32 - 125.0;
        }
    }
}

fn fill_i32(p: &mut Plane<i32>) {
    for y in 0..p.height() {
        for (x, v) in p.row_mut(y).iter_mut().enumerate() {
            *v = ((x * 31 + y * 17) % 251) as i32 - 125;
        }
    }
}

/// Allocation-call count of one sequential strip transform; the plane and
/// its fill are excluded from the count.
fn dwt_97_allocs(w: usize, h: usize, levels: u8, lifting: LiftingMode) -> u64 {
    let mut p = Plane::<f32>::new(w, h);
    fill_f32(&mut p);
    let a0 = alloc_count::thread_allocs();
    forward_97_with(
        &mut p,
        levels,
        VerticalStrategy::DEFAULT_STRIP,
        lifting,
        SimdMode::Auto,
        &Exec::SEQ,
    );
    let spent = alloc_count::thread_allocs() - a0;
    std::hint::black_box(&p);
    spent
}

fn dwt_53_allocs(w: usize, h: usize, levels: u8) -> u64 {
    let mut p = Plane::<i32>::new(w, h);
    fill_i32(&mut p);
    let a0 = alloc_count::thread_allocs();
    forward_53_with(
        &mut p,
        levels,
        VerticalStrategy::DEFAULT_STRIP,
        LiftingMode::Fused,
        SimdMode::Auto,
        &Exec::SEQ,
    );
    let spent = alloc_count::thread_allocs() - a0;
    std::hint::black_box(&p);
    spent
}

// DWT scratch is sized per worker range per level, never per strip, so a
// taller plane — more strips, same width, same level count — must show an
// identical allocation-call count. Heights keep every level's region tall
// enough that both shapes run the same number of vertical passes.

#[test]
fn dwt_97_fused_strip_allocs_are_strip_count_invariant() {
    let short = dwt_97_allocs(128, 128, 3, LiftingMode::Fused);
    let tall = dwt_97_allocs(128, 512, 3, LiftingMode::Fused);
    assert_eq!(
        short, tall,
        "extra strips must not allocate (128 rows: {short}, 512 rows: {tall})"
    );
}

#[test]
fn dwt_97_per_step_strip_allocs_are_strip_count_invariant() {
    let short = dwt_97_allocs(128, 128, 3, LiftingMode::PerStep);
    let tall = dwt_97_allocs(128, 512, 3, LiftingMode::PerStep);
    assert_eq!(
        short, tall,
        "extra strips must not allocate (128 rows: {short}, 512 rows: {tall})"
    );
}

#[test]
fn dwt_53_fused_strip_allocs_are_strip_count_invariant() {
    let short = dwt_53_allocs(128, 128, 3);
    let tall = dwt_53_allocs(128, 512, 3);
    assert_eq!(
        short, tall,
        "extra strips must not allocate (128 rows: {short}, 512 rows: {tall})"
    );
}

#[test]
fn counting_allocator_sees_this_harness_allocate() {
    // Sanity for the oracle itself: if the counter were disconnected, the
    // zero assertions above would pass vacuously.
    let a0 = alloc_count::thread_allocs();
    let v = std::hint::black_box(vec![0u8; 4096]);
    assert!(
        alloc_count::thread_allocs() > a0,
        "vec of {} bytes",
        v.len()
    );
}
