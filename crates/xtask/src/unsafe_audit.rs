//! `xtask audit-unsafe` — static concurrency-contract audit of the unsafe
//! disjoint-write machinery.
//!
//! The parallel encoder's speedups rest on `unsafe` shared-buffer writes
//! (DESIGN.md §12): workers write disjoint regions of one output plane
//! through `DisjointWriter`/`DisjointClaim` (debug-checked claims) or, in
//! two audited hot paths, through the `SendPtr` escape hatch. This pass
//! inventories every aliasing-relevant site — `unsafe impl Send`/`Sync`,
//! `SendPtr` uses, claim-table escapes, raw mutable-slice fabrication — and
//! enforces three rules:
//!
//! * **send_sync_contract** — every `unsafe impl Send` / `unsafe impl Sync`
//!   (test code included: a bogus Send impl in a test harness still races)
//!   must carry a `// SAFETY:` contract naming the shared-state invariant
//!   that makes cross-thread transfer sound.
//! * **raw_write_routing** — inside the parallel-write scope (`parutil`,
//!   `dwt`, `mq` sources, `core::quant`, and `core::decode`), every raw
//!   parallel write must be lexically routed through a `DisjointClaim`: mutable-slice
//!   fabrication (`from_raw_parts_mut`, `ptr::write`) and `.write(..)` /
//!   `.slice_mut(..)` calls on `SendPtr`-rooted receivers are violations
//!   unless covered by an `// AUDIT(alias): <reason>` justification naming
//!   the disjointness argument. The two files that *implement* the routing
//!   layer (`parutil/src/disjoint.rs`, `parutil/src/exec.rs`) are exempt —
//!   their internals are governed by SAFETY contracts and the Miri/loom
//!   gates instead.
//! * **sendptr_allowlist** — the `SendPtr` type must not appear outside an
//!   allowlisted module set (`parutil::exec` where it lives, the `parutil`
//!   crate root that re-exports it, `core::quant`'s audited hot loops,
//!   `core::decode`'s gate-synchronized pipeline scatter, and
//!   `parutil/tests/`). New code must use `DisjointWriter` claims; growing
//!   the allowlist is a reviewed change to this file.
//!
//! `AUDIT(alias)` coverage uses the same lookback mechanics as the panic
//! audit ([`crate::audit`]): the comment may sit on the site's line or in
//! the contiguous comment/attribute block directly above it.
//!
//! The `xtask` crate itself is excluded from the scan: its sources (this
//! file, fixtures, help text) necessarily *name* the tokens being audited.
//!
//! Known limitation: receiver rooting is per-file and lexical. A `SendPtr`
//! smuggled through a struct field or renamed through a non-`let` binding
//! will not be receiver-matched — but its construction site still trips
//! `sendptr_allowlist` outside the allowlist, which is the load-bearing
//! fence.

use crate::lint::find_word;
use crate::scan::{classify, Line};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The parallel-write scope for `raw_write_routing`: everything that
/// fabricates or consumes shared mutable buffers across worker threads.
const SCOPED_DIRS: &[&str] = &["crates/parutil/src", "crates/dwt/src", "crates/mq/src"];
const SCOPED_FILES: &[&str] = &["crates/core/src/quant.rs", "crates/core/src/decode.rs"];

/// Files implementing the claim/escape layer itself — `raw_write_routing`
/// does not apply (they are what writes get routed *to*).
const LAYER_FILES: &[&str] = &[
    "crates/parutil/src/disjoint.rs",
    "crates/parutil/src/exec.rs",
];

/// Where the `SendPtr` token may legally appear.
const SENDPTR_ALLOWED_FILES: &[&str] = &[
    "crates/parutil/src/exec.rs",
    "crates/parutil/src/lib.rs",
    "crates/core/src/quant.rs",
    "crates/core/src/decode.rs",
];
const SENDPTR_ALLOWED_DIRS: &[&str] = &["crates/parutil/tests"];

/// Kind of aliasing-relevant site, for the inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `unsafe impl Send` / `unsafe impl Sync`.
    SendSyncImpl,
    /// A code line naming the `SendPtr` type.
    SendPtrUse,
    /// A raw parallel write (mutable-slice fabrication or a write through
    /// a `SendPtr`-rooted receiver).
    RawWrite,
    /// A sanctioned claim-table escape (`claim_range` / `claim_indices` /
    /// `claim_rect`) or a write through a claim-rooted receiver.
    ClaimRoute,
    /// Raw-pointer arithmetic/deref (`.add(`, `from_raw_parts(`) — read
    /// side, inventoried for the full aliasing picture, never a violation.
    RawDeref,
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SiteKind::SendSyncImpl => "unsafe Send/Sync impl",
            SiteKind::SendPtrUse => "SendPtr use",
            SiteKind::RawWrite => "raw write",
            SiteKind::ClaimRoute => "claim route",
            SiteKind::RawDeref => "raw deref",
        };
        f.write_str(s)
    }
}

/// One inventoried site.
#[derive(Debug, Clone)]
pub struct UnsafeAuditSite {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What kind of site.
    pub kind: SiteKind,
    /// The matched token / short context.
    pub what: String,
    /// Whether the site is in test code.
    pub in_test: bool,
    /// Whether the site is covered (SAFETY for impls, AUDIT(alias) or
    /// claim routing for writes; routing-neutral kinds are always true).
    pub covered: bool,
}

/// One audit failure.
#[derive(Debug, Clone)]
pub struct UnsafeAuditViolation {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (`send_sync_contract`, `raw_write_routing`,
    /// `sendptr_allowlist`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for UnsafeAuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Result of auditing the workspace.
#[derive(Debug, Default)]
pub struct UnsafeAuditReport {
    /// Every site found, in file order.
    pub sites: Vec<UnsafeAuditSite>,
    /// Rule violations.
    pub violations: Vec<UnsafeAuditViolation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl UnsafeAuditReport {
    /// Render the inventory grouped by file.
    pub fn render(&self) -> String {
        use std::collections::BTreeMap;
        let mut by_file: BTreeMap<String, Vec<&UnsafeAuditSite>> = BTreeMap::new();
        for site in &self.sites {
            by_file
                .entry(site.path.display().to_string())
                .or_default()
                .push(site);
        }
        let mut out = String::new();
        out.push_str("== concurrency-contract inventory (aliasing/Send audit) ==\n");
        for (file, sites) in &by_file {
            let writes = sites
                .iter()
                .filter(|s| s.kind == SiteKind::RawWrite)
                .count();
            out.push_str(&format!(
                "{file}: {} sites ({} raw writes)\n",
                sites.len(),
                writes
            ));
            for s in sites {
                out.push_str(&format!(
                    "  {}:{} {} `{}`{}{}\n",
                    s.path.display(),
                    s.line,
                    s.kind,
                    s.what,
                    if s.in_test { " [test]" } else { "" },
                    if s.covered { "" } else { " [UNCOVERED]" }
                ));
            }
        }
        let uncovered = self.sites.iter().filter(|s| !s.covered).count();
        out.push_str(&format!(
            "total: {} sites across {} files ({} uncovered)\n",
            self.sites.len(),
            self.files_scanned,
            uncovered
        ));
        out
    }
}

/// Audit every non-`xtask` crate source under `root`.
pub fn audit_unsafe_workspace(root: &Path) -> std::io::Result<UnsafeAuditReport> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut report = UnsafeAuditReport::default();
    for file in &files {
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        if rel.starts_with("crates/xtask") {
            continue;
        }
        let source = std::fs::read_to_string(file)?;
        audit_unsafe_source(&rel, &source, &mut report);
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Context derived from a file's workspace-relative path.
struct FileCtx {
    /// `raw_write_routing` applies to non-test code here.
    write_scoped: bool,
    /// Implements the routing layer — `raw_write_routing` exempt.
    layer_file: bool,
    /// `SendPtr` may appear here.
    sendptr_allowed: bool,
    /// Integration tests / benches / examples.
    is_test_file: bool,
}

fn file_ctx(path: &Path) -> FileCtx {
    let p = path.to_string_lossy().replace('\\', "/");
    let in_dir = |dirs: &[&str]| dirs.iter().any(|d| p.starts_with(&format!("{d}/")));
    let is_file = |files: &[&str]| files.iter().any(|f| p == *f);
    FileCtx {
        write_scoped: in_dir(SCOPED_DIRS) || is_file(SCOPED_FILES),
        layer_file: is_file(LAYER_FILES),
        sendptr_allowed: is_file(SENDPTR_ALLOWED_FILES) || in_dir(SENDPTR_ALLOWED_DIRS),
        is_test_file: path
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .any(|c| c == "tests" || c == "benches" || c == "examples"),
    }
}

/// Audit one file's source text into `report`.
pub fn audit_unsafe_source(path: &Path, source: &str, report: &mut UnsafeAuditReport) {
    report.files_scanned += 1;
    let ctx = file_ctx(path);
    let lines = classify(source);
    let roots = rooted_idents(&lines);

    for (idx, line) in lines.iter().enumerate() {
        let in_test = ctx.is_test_file || line.in_test_item;
        let code = &line.code;

        // --- send_sync_contract ------------------------------------------
        if code.contains("unsafe impl")
            && (find_word(code, "Send").is_some() || find_word(code, "Sync").is_some())
        {
            let covered = has_justification(&lines, idx, "SAFETY");
            push_site(
                report,
                path,
                line,
                SiteKind::SendSyncImpl,
                snippet(code),
                in_test,
                covered,
            );
            if !covered {
                report.violations.push(UnsafeAuditViolation {
                    path: path.to_path_buf(),
                    line: line.number,
                    rule: "send_sync_contract",
                    message: "unsafe Send/Sync impl without a `// SAFETY:` contract \
                              naming the shared-state invariant"
                        .to_string(),
                });
            }
        }

        // --- sendptr_allowlist -------------------------------------------
        if find_word(code, "SendPtr").is_some() {
            let covered = ctx.sendptr_allowed;
            push_site(
                report,
                path,
                line,
                SiteKind::SendPtrUse,
                snippet(code),
                in_test,
                covered,
            );
            if !covered {
                report.violations.push(UnsafeAuditViolation {
                    path: path.to_path_buf(),
                    line: line.number,
                    rule: "sendptr_allowlist",
                    message: "`SendPtr` outside the allowlisted modules \
                              (parutil::exec, parutil crate root, core::quant, \
                              core::decode, parutil/tests) — route writes through \
                              DisjointWriter claims instead"
                        .to_string(),
                });
            }
        }

        // --- claim-route inventory ---------------------------------------
        for escape in ["claim_range(", "claim_indices(", "claim_rect("] {
            if code.contains(&format!(".{escape}")) {
                push_site(
                    report,
                    path,
                    line,
                    SiteKind::ClaimRoute,
                    escape.trim_end_matches('(').to_string(),
                    in_test,
                    true,
                );
            }
        }

        // --- raw-deref inventory (read side, never a violation) ----------
        if ctx.write_scoped && (code.contains("from_raw_parts(") || code.contains(".add(")) {
            push_site(
                report,
                path,
                line,
                SiteKind::RawDeref,
                snippet(code),
                in_test,
                true,
            );
        }

        // --- raw_write_routing -------------------------------------------
        if !ctx.write_scoped || ctx.layer_file || in_test {
            continue;
        }
        let mut raw_writes: Vec<String> = Vec::new();
        for needle in [
            "from_raw_parts_mut(",
            "ptr::write(",
            "ptr::write_unaligned(",
        ] {
            if code.contains(needle) {
                raw_writes.push(needle.trim_end_matches('(').to_string());
            }
        }
        for method in [".write(", ".slice_mut("] {
            for recv in receivers(code, method) {
                if roots.sendptr.contains(&recv) {
                    raw_writes.push(format!("{recv}{}", method.trim_end_matches('(')));
                } else if roots.claim.contains(&recv) {
                    push_site(
                        report,
                        path,
                        line,
                        SiteKind::ClaimRoute,
                        format!("{recv}{}", method.trim_end_matches('(')),
                        in_test,
                        true,
                    );
                }
                // Unknown receivers (io::Write, Vec writes, ...) are not
                // parallel-aliasing sites; ignore them.
            }
        }
        for what in raw_writes {
            let covered = has_justification(&lines, idx, "AUDIT(alias)");
            push_site(
                report,
                path,
                line,
                SiteKind::RawWrite,
                what.clone(),
                in_test,
                covered,
            );
            if !covered {
                report.violations.push(UnsafeAuditViolation {
                    path: path.to_path_buf(),
                    line: line.number,
                    rule: "raw_write_routing",
                    message: format!(
                        "raw parallel write `{what}` not routed through a \
                         DisjointClaim and without an `// AUDIT(alias):` \
                         justification naming the disjointness argument"
                    ),
                });
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_site(
    report: &mut UnsafeAuditReport,
    path: &Path,
    line: &Line,
    kind: SiteKind,
    what: String,
    in_test: bool,
    covered: bool,
) {
    report.sites.push(UnsafeAuditSite {
        path: path.to_path_buf(),
        line: line.number,
        kind,
        what,
        in_test,
        covered,
    });
}

/// Short context snippet of a code line for the report.
fn snippet(code: &str) -> String {
    let t = code.trim();
    let mut s: String = t.chars().take(48).collect();
    if s.len() < t.len() {
        s.push('…');
    }
    s
}

/// Identifiers rooted to the claim layer / the `SendPtr` escape hatch,
/// collected per file.
#[derive(Default)]
struct RootedIdents {
    /// Bound from `claim_range`/`claim_indices`/`claim_rect` or typed
    /// `&DisjointClaim` parameters: writes through these are routed.
    claim: BTreeSet<String>,
    /// Bound from `SendPtr(..)` / `SendPtr::new(..)` or typed `SendPtr`
    /// parameters: writes through these bypass the claim table.
    sendptr: BTreeSet<String>,
}

fn rooted_idents(lines: &[Line]) -> RootedIdents {
    let mut roots = RootedIdents::default();
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let is_claim_ctor = [".claim_range(", ".claim_indices(", ".claim_rect("]
            .iter()
            .any(|n| code.contains(n));
        let is_sendptr_ctor = code.contains("SendPtr(") || code.contains("SendPtr::new(");
        if is_claim_ctor {
            if let Some(name) = let_binding_ident(lines, idx) {
                roots.claim.insert(name);
            }
        }
        if is_sendptr_ctor {
            if let Some(name) = let_binding_ident(lines, idx) {
                roots.sendptr.insert(name);
            }
        }
        for ty in ["&DisjointClaim", "&mut DisjointClaim", "DisjointClaim"] {
            for name in typed_idents(code, ty) {
                roots.claim.insert(name);
            }
        }
        for ty in ["&SendPtr", "SendPtr"] {
            for name in typed_idents(code, ty) {
                roots.sendptr.insert(name);
            }
        }
    }
    roots
}

/// The identifier bound by the `let` statement containing line `idx`: on
/// the line itself, or (for rustfmt-wrapped initializers) up to three
/// lines above when the statement head ends in `=` or the continuation
/// starts with `.`.
fn let_binding_ident(lines: &[Line], idx: usize) -> Option<String> {
    let mut i = idx;
    for _ in 0..4 {
        let code = lines[i].code.trim();
        if let Some(pos) = find_word(&lines[i].code, "let") {
            let rest = &lines[i].code[pos + 3..];
            let rest = rest.trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            return (!name.is_empty()).then_some(name);
        }
        // Continuation lines: `let x =` above, or `.claim_rect(` chained.
        if i == 0 {
            return None;
        }
        let prev = lines[i - 1].code.trim_end();
        if !(code.starts_with('.') || prev.ends_with('=') || prev.ends_with('(')) {
            return None;
        }
        i -= 1;
    }
    None
}

/// Identifiers annotated `name: <ty>` on this code line (function
/// parameters and struct fields).
fn typed_idents(code: &str, ty: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut start = 0;
    let pat = format!(": {ty}");
    while let Some(rel) = code[start..].find(&pat) {
        let pos = start + rel;
        // The type must end at a token boundary (`DisjointClaim<T>` yes,
        // `DisjointClaimFoo` no).
        let after = code[pos + pat.len()..].chars().next();
        if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            let ident: String = code[..pos]
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !ident.is_empty() {
                out.push(ident);
            }
        }
        start = pos + pat.len();
    }
    out
}

/// Receiver identifiers of `recv.method(` call sites on this line.
fn receivers(code: &str, method: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(rel) = code[start..].find(method) {
        let pos = start + rel;
        let recv: String = code[..pos]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if !recv.is_empty() {
            out.push(recv);
        }
        start = pos + method.len();
    }
    out
}

/// How far above a site the contiguous-block lookback searches for its
/// justification comment (matches the panic audit).
const LOOKBACK: usize = 24;

/// True when line `idx` is covered by a comment containing `needle`: on
/// the line itself, or in the contiguous run of comment/attribute/blank or
/// wrapped-statement-head lines directly above.
fn has_justification(lines: &[Line], idx: usize, needle: &str) -> bool {
    if lines[idx].comment.contains(needle) {
        return true;
    }
    let mut i = idx;
    let mut looked = 0;
    while i > 0 && looked < LOOKBACK {
        i -= 1;
        looked += 1;
        let l = &lines[i];
        if l.comment.contains(needle) {
            return true;
        }
        let code = l.code.trim();
        let is_pass_through = code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#![")
            // A grouped `unsafe impl Send/Sync` pair shares the comment
            // above the first impl.
            || (code.contains("unsafe impl") && lines[idx].code.contains("unsafe impl"))
            // A statement head rustfmt wrapped above the site.
            || code.ends_with('=')
            || code.ends_with('(')
            || code.ends_with(',');
        if !is_pass_through {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_str(path: &str, src: &str) -> UnsafeAuditReport {
        let mut report = UnsafeAuditReport::default();
        audit_unsafe_source(Path::new(path), src, &mut report);
        report
    }

    fn rules_fired(report: &UnsafeAuditReport) -> Vec<&'static str> {
        report.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn send_impl_without_safety_fires() {
        let src = "pub struct P<T>(*mut T);\nunsafe impl<T: Send> Send for P<T> {}\n";
        let r = audit_str("crates/parutil/src/x.rs", src);
        assert_eq!(rules_fired(&r), vec!["send_sync_contract"]);
        assert_eq!(r.violations[0].line, 2);
    }

    #[test]
    fn send_impl_with_safety_is_clean() {
        let src = "// SAFETY: P hands out disjoint regions only.\n\
                   unsafe impl<T: Send> Send for P<T> {}\n\
                   unsafe impl<T: Send> Sync for P<T> {}\n";
        let r = audit_str("crates/parutil/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(
            r.sites
                .iter()
                .filter(|s| s.kind == SiteKind::SendSyncImpl)
                .count(),
            2
        );
    }

    #[test]
    fn send_impl_in_test_code_still_fires() {
        // Unlike the panic audit, Send/Sync contracts are required even in
        // test code: a bogus impl in a test harness still races for real.
        let src =
            "#[cfg(test)]\nmod tests {\n    struct W(*mut u8);\n    unsafe impl Send for W {}\n}\n";
        let r = audit_str("crates/dwt/src/x.rs", src);
        assert_eq!(rules_fired(&r), vec!["send_sync_contract"]);
    }

    #[test]
    fn non_send_unsafe_impl_is_not_a_site() {
        let src = "unsafe impl GlobalAlloc for CountingAlloc {}\n";
        let r = audit_str("crates/bench/src/bin/b.rs", src);
        assert!(r.sites.is_empty(), "{:?}", r.sites);
    }

    #[test]
    fn sendptr_outside_allowlist_fires() {
        let src = "fn f(buf: &mut [u8]) {\n    let p = SendPtr::new(buf);\n}\n";
        let r = audit_str("crates/dwt/src/x.rs", src);
        assert!(
            rules_fired(&r).contains(&"sendptr_allowlist"),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn sendptr_in_quant_is_allowed() {
        let src = "fn f(buf: &mut [i32]) {\n    let p = SendPtr::new(buf);\n}\n";
        let r = audit_str("crates/core/src/quant.rs", src);
        assert!(
            !rules_fired(&r).contains(&"sendptr_allowlist"),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn sendptr_in_parutil_tests_is_allowed() {
        let src = "let p = SendPtr::new(buf);\n";
        let r = audit_str("crates/parutil/tests/t.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn sendptr_write_without_alias_audit_fires() {
        let src = "fn f(dst: &mut [i32]) {\n    let p = SendPtr::new(dst);\n    \
                   // SAFETY: rows are disjoint.\n    let row = unsafe { p.slice_mut(0, 4) };\n}\n";
        let r = audit_str("crates/core/src/quant.rs", src);
        assert_eq!(
            rules_fired(&r),
            vec!["raw_write_routing"],
            "{:?}",
            r.violations
        );
        assert_eq!(r.violations[0].line, 4);
    }

    #[test]
    fn sendptr_write_with_alias_audit_is_clean() {
        let src = "fn f(dst: &mut [i32]) {\n    let p = SendPtr::new(dst);\n    \
                   // AUDIT(alias): rows are worker-disjoint by construction.\n    \
                   let row = unsafe { p.slice_mut(0, 4) };\n}\n";
        let r = audit_str("crates/core/src/quant.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        let site = r
            .sites
            .iter()
            .find(|s| s.kind == SiteKind::RawWrite)
            .expect("raw write inventoried");
        assert!(site.covered);
    }

    #[test]
    fn claim_routed_write_is_clean() {
        let src = "unsafe fn st(c: &DisjointClaim<f32>, i: usize, v: f32) {\n    \
                   unsafe { c.write(i, v) };\n}\n";
        let r = audit_str("crates/dwt/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(
            r.sites.iter().any(|s| s.kind == SiteKind::ClaimRoute),
            "{:?}",
            r.sites
        );
    }

    #[test]
    fn claim_range_binding_roots_receiver() {
        let src = "fn f(writer: &DisjointWriter<i32>) {\n    \
                   let row = writer.claim_range(0..4);\n    \
                   let s = unsafe { row.slice_mut(0, 4) };\n}\n";
        let r = audit_str("crates/dwt/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn wrapped_claim_binding_roots_receiver() {
        // rustfmt may wrap the initializer below the `let` head.
        let src = "fn f(writer: &DisjointWriter<i32>) {\n    let row =\n        \
                   writer.claim_range(0..4);\n    let s = unsafe { row.slice_mut(0, 4) };\n}\n";
        let r = audit_str("crates/dwt/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn from_raw_parts_mut_without_audit_fires() {
        let src =
            "fn f(p: *mut u8) {\n    let s = unsafe { std::slice::from_raw_parts_mut(p, 4) };\n}\n";
        let r = audit_str("crates/dwt/src/x.rs", src);
        assert_eq!(rules_fired(&r), vec!["raw_write_routing"]);
    }

    #[test]
    fn from_raw_parts_mut_in_layer_file_is_exempt() {
        let src =
            "fn f(p: *mut u8) {\n    let s = unsafe { std::slice::from_raw_parts_mut(p, 4) };\n}\n";
        let r = audit_str("crates/parutil/src/disjoint.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn raw_write_outside_scope_is_not_checked() {
        // tier2 is outside the parallel-write scope; the plain SAFETY lint
        // still covers its unsafe blocks.
        let src =
            "fn f(p: *mut u8) {\n    let s = unsafe { std::slice::from_raw_parts_mut(p, 4) };\n}\n";
        let r = audit_str("crates/tier2/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn test_code_is_exempt_from_write_routing() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(p: *mut u8) {\n        \
                   let s = unsafe { std::slice::from_raw_parts_mut(p, 4) };\n    }\n}\n";
        let r = audit_str("crates/dwt/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn unknown_receiver_write_is_ignored() {
        let src = "fn f(mut file: std::fs::File, buf: &[u8]) {\n    file.write(buf).ok();\n}\n";
        let r = audit_str("crates/dwt/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.sites.iter().all(|s| s.kind != SiteKind::RawWrite));
    }

    #[test]
    fn sendptr_in_comment_is_not_a_site() {
        let src = "// SendPtr is not allowed here; use claims.\nfn f() {}\n";
        let r = audit_str("crates/dwt/src/x.rs", src);
        assert!(r.sites.is_empty(), "{:?}", r.sites);
    }

    #[test]
    fn raw_deref_is_inventoried_not_flagged() {
        let src = "fn f(p: *const u8) {\n    // SAFETY: in bounds.\n    \
                   let s = unsafe { std::slice::from_raw_parts(p.add(1), 4) };\n}\n";
        let r = audit_str("crates/mq/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.sites.iter().any(|s| s.kind == SiteKind::RawDeref));
    }

    #[test]
    fn render_mentions_counts() {
        let src = "unsafe impl Send for W {}\n";
        let r = audit_str("crates/parutil/src/x.rs", src);
        let text = r.render();
        assert!(text.contains("1 sites"), "{text}");
        assert!(text.contains("UNCOVERED"), "{text}");
    }

    #[test]
    fn real_quant_hot_loops_stay_audited() {
        // Regression guard: the two SendPtr hot loops in core::quant must
        // keep their AUDIT(alias) coverage.
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../core/src/quant.rs")
            .canonicalize()
            .expect("crates/core/src/quant.rs must exist");
        let src = std::fs::read_to_string(&path).unwrap();
        let r = audit_str("crates/core/src/quant.rs", &src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(
            r.sites
                .iter()
                .any(|s| s.kind == SiteKind::RawWrite && s.covered),
            "expected audited SendPtr writes in quant.rs"
        );
    }

    #[test]
    fn real_decode_pipeline_scatter_stays_audited() {
        // Regression guard: the staged decode pipeline's SendPtr scatter
        // (DESIGN.md §15) must keep its AUDIT(alias) coverage now that
        // core::decode is in the raw-write scope and SendPtr allowlist.
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../core/src/decode.rs")
            .canonicalize()
            .expect("crates/core/src/decode.rs must exist");
        let src = std::fs::read_to_string(&path).unwrap();
        let r = audit_str("crates/core/src/decode.rs", &src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(
            r.sites
                .iter()
                .any(|s| s.kind == SiteKind::RawWrite && s.covered),
            "expected audited SendPtr writes in decode.rs"
        );
        assert!(
            r.sites.iter().any(|s| s.kind == SiteKind::SendPtrUse),
            "expected inventoried SendPtr uses in decode.rs"
        );
    }

    #[test]
    fn real_disjoint_layer_declares_contracts() {
        // Regression guard: the claim layer's Send/Sync impls must keep
        // their SAFETY contracts.
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../parutil/src/disjoint.rs")
            .canonicalize()
            .expect("crates/parutil/src/disjoint.rs must exist");
        let src = std::fs::read_to_string(&path).unwrap();
        let r = audit_str("crates/parutil/src/disjoint.rs", &src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r
            .sites
            .iter()
            .any(|s| s.kind == SiteKind::SendSyncImpl && s.covered));
    }
}
