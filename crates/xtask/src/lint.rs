//! Project-specific concurrency-correctness lint rules.
//!
//! The rules encode the workspace's safety discipline (see DESIGN.md,
//! "Concurrency safety model"):
//!
//! * [`Rule::UnsafeNeedsSafety`] — every `unsafe` block, `unsafe fn`,
//!   `unsafe impl` or `unsafe trait` outside test code must be justified by
//!   a `// SAFETY:` comment (or a `# Safety` doc section for `unsafe fn`).
//!   `unsafe fn` and `unsafe impl` declarations need the justification even
//!   *inside* test code: they declare contracts (caller obligations, Send/
//!   Sync invariants) that hold just as hard when a test harness relies on
//!   them, and an undocumented test-only Send impl races for real.
//! * [`Rule::HotPathPanic`] — no `.unwrap()`, `.expect(..)` or `panic!` in
//!   the codec hot-path crates (`mq`, `ebcot`, `dwt`, `tier2`) outside
//!   `#[cfg(test)]`: hot paths must propagate errors, not abort mid-tile.
//! * [`Rule::RawThreadSpawn`] — no raw `thread::spawn` / `thread::scope` /
//!   `thread::Builder` outside `parutil`: all parallelism flows through the
//!   pool/exec API so schedules stay observable and disjointness stays
//!   checkable.
//!
//! A finding can only be suppressed explicitly, in the reviewed source:
//! `// lint:allow(<rule>) -- <reason>` on the offending line or the line
//! directly above. A suppression without a reason is itself a finding.

use crate::scan::{classify, Line};
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose non-test code is a codec hot path.
const HOT_PATH_CRATES: &[&str] = &["mq", "ebcot", "dwt", "tier2"];
/// The only crate allowed to create OS threads.
const THREAD_CRATES: &[&str] = &["parutil"];

/// Identifier of a lint rule, as used in `lint:allow(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` without a SAFETY justification.
    UnsafeNeedsSafety,
    /// Panicking call in a codec hot path.
    HotPathPanic,
    /// Raw thread creation outside `parutil`.
    RawThreadSpawn,
    /// Malformed or unknown `lint:allow` annotation.
    BadSuppression,
}

impl Rule {
    /// The name accepted inside `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeNeedsSafety => "unsafe_needs_safety",
            Rule::HotPathPanic => "hot_path_panic",
            Rule::RawThreadSpawn => "raw_thread_spawn",
            Rule::BadSuppression => "bad_suppression",
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unsafe_needs_safety" => Some(Rule::UnsafeNeedsSafety),
            "hot_path_panic" => Some(Rule::HotPathPanic),
            "raw_thread_spawn" => Some(Rule::RawThreadSpawn),
            "bad_suppression" => Some(Rule::BadSuppression),
            _ => None,
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path of the offending file (workspace-relative when possible).
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.path.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Kind of `unsafe` site, for the inventory report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe fn` declaration.
    Fn,
    /// `unsafe impl` (usually Send/Sync).
    Impl,
    /// `unsafe trait` declaration.
    Trait,
    /// An `unsafe { .. }` expression block.
    Block,
}

impl fmt::Display for UnsafeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnsafeKind::Fn => "unsafe fn",
            UnsafeKind::Impl => "unsafe impl",
            UnsafeKind::Trait => "unsafe trait",
            UnsafeKind::Block => "unsafe block",
        };
        f.write_str(s)
    }
}

/// One `unsafe` occurrence (test code included), for the inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Path of the file containing the site.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Syntactic kind of the site.
    pub kind: UnsafeKind,
    /// Crate the site belongs to (directory under `crates/`).
    pub krate: String,
    /// Whether the site is in test code (file under `tests/` or a
    /// `#[cfg(test)]` item).
    pub in_test: bool,
    /// Whether a SAFETY justification was found.
    pub justified: bool,
}

/// Result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in file order.
    pub violations: Vec<Violation>,
    /// Full unsafe inventory, in file order.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Render the unsafe inventory grouped by crate.
    pub fn render_inventory(&self) -> String {
        use std::collections::BTreeMap;
        let mut by_crate: BTreeMap<&str, Vec<&UnsafeSite>> = BTreeMap::new();
        for site in &self.unsafe_sites {
            by_crate.entry(&site.krate).or_default().push(site);
        }
        let mut out = String::new();
        out.push_str("== unsafe inventory ==\n");
        for (krate, sites) in &by_crate {
            let tests = sites.iter().filter(|s| s.in_test).count();
            out.push_str(&format!(
                "{krate}: {} sites ({} in tests)\n",
                sites.len(),
                tests
            ));
            for s in sites {
                out.push_str(&format!(
                    "  {}:{} {}{}{}\n",
                    s.path.display(),
                    s.line,
                    s.kind,
                    if s.in_test { " [test]" } else { "" },
                    if s.justified {
                        ""
                    } else {
                        " [no SAFETY comment]"
                    }
                ));
            }
        }
        let unjustified = self
            .unsafe_sites
            .iter()
            .filter(|s| !s.in_test && !s.justified)
            .count();
        out.push_str(&format!(
            "total: {} unsafe sites across {} files scanned ({} non-test sites lack a SAFETY comment)\n",
            self.unsafe_sites.len(),
            self.files_scanned,
            unjustified
        ));
        out
    }
}

/// Lint every `.rs` file under `root/crates`, except generated/target dirs.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut report = Report::default();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        lint_source(&rel, &source, &mut report);
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Context derived from a file's path.
struct FileCtx {
    krate: String,
    /// Integration tests, benches and examples are exempt from rules (but
    /// still inventoried).
    is_test_file: bool,
}

fn file_ctx(path: &Path) -> FileCtx {
    let comps: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let krate = comps
        .iter()
        .position(|c| c == "crates")
        .and_then(|i| comps.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "<root>".to_string());
    let is_test_file = comps
        .iter()
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    FileCtx {
        krate,
        is_test_file,
    }
}

/// Lint one file's source text into `report`.
pub fn lint_source(path: &Path, source: &str, report: &mut Report) {
    let ctx = file_ctx(path);
    let lines = classify(source);
    report.files_scanned += 1;

    for (idx, line) in lines.iter().enumerate() {
        let in_test = ctx.is_test_file || line.in_test_item;
        // The linter's own sources discuss the annotation syntax in prose;
        // don't parse those mentions as real suppressions.
        let allows = if ctx.krate == "xtask" {
            Vec::new()
        } else {
            suppressions(&lines, idx, report, path, in_test)
        };

        // --- unsafe inventory + SAFETY rule ------------------------------
        for kind in unsafe_kinds(&line.code) {
            let justified = has_safety_justification(&lines, idx);
            report.unsafe_sites.push(UnsafeSite {
                path: path.to_path_buf(),
                line: line.number,
                kind,
                krate: ctx.krate.clone(),
                in_test,
                justified,
            });
            // Unsafe *blocks* (and trait declarations) in test code are
            // exempt; `unsafe fn` and `unsafe impl` declare contracts that
            // bind even when only tests use them.
            let test_exempt = in_test && matches!(kind, UnsafeKind::Block | UnsafeKind::Trait);
            if !test_exempt && !justified && !allows.contains(&Rule::UnsafeNeedsSafety) {
                report.violations.push(Violation {
                    path: path.to_path_buf(),
                    line: line.number,
                    rule: Rule::UnsafeNeedsSafety,
                    message: format!("{kind} without a `// SAFETY:` justification"),
                });
            }
        }

        // --- hot-path panic rule -----------------------------------------
        if !in_test
            && HOT_PATH_CRATES.contains(&ctx.krate.as_str())
            && !allows.contains(&Rule::HotPathPanic)
        {
            for needle in [".unwrap()", ".expect(", "panic!"] {
                if line.code.contains(needle) {
                    report.violations.push(Violation {
                        path: path.to_path_buf(),
                        line: line.number,
                        rule: Rule::HotPathPanic,
                        message: format!(
                            "`{needle}` in codec hot path crate `{}` — propagate errors instead",
                            ctx.krate
                        ),
                    });
                }
            }
        }

        // --- raw thread creation rule ------------------------------------
        if !in_test
            && !THREAD_CRATES.contains(&ctx.krate.as_str())
            && ctx.krate != "xtask"
            && !allows.contains(&Rule::RawThreadSpawn)
        {
            for needle in ["thread::spawn(", "thread::scope(", "thread::Builder"] {
                if line.code.contains(needle) {
                    report.violations.push(Violation {
                        path: path.to_path_buf(),
                        line: line.number,
                        rule: Rule::RawThreadSpawn,
                        message: format!(
                            "raw `{needle}` outside parutil — use pool_map/pool_run/Exec"
                        ),
                    });
                }
            }
        }
    }
}

/// Tokens that start an unsafe site on this code line. A line like
/// `unsafe fn f()` yields one site; `unsafe { a }; unsafe { b }` yields two.
fn unsafe_kinds(code: &str) -> Vec<UnsafeKind> {
    let mut kinds = Vec::new();
    let mut rest = code;
    while let Some(pos) = find_word(rest, "unsafe") {
        let after = rest[pos + "unsafe".len()..].trim_start();
        let kind = if after.starts_with("fn") {
            UnsafeKind::Fn
        } else if after.starts_with("impl") {
            UnsafeKind::Impl
        } else if after.starts_with("trait") {
            UnsafeKind::Trait
        } else {
            UnsafeKind::Block
        };
        kinds.push(kind);
        rest = &rest[pos + "unsafe".len()..];
    }
    kinds
}

/// Find `word` in `code` at identifier boundaries.
pub(crate) fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(rel) = code[start..].find(word) {
        let pos = start + rel;
        let before_ok = pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[pos + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + word.len();
    }
    None
}

/// How far above an unsafe site we search for its SAFETY comment.
const SAFETY_LOOKBACK: usize = 24;

/// True when line `idx` (containing an unsafe site) is covered by a SAFETY
/// justification: a `SAFETY:` / `# Safety` comment on the same line, or in
/// the contiguous run of comment/attribute/blank lines directly above.
/// Consecutive `unsafe impl` lines share one justification.
fn has_safety_justification(lines: &[Line], idx: usize) -> bool {
    if is_safety_comment(&lines[idx].comment) {
        return true;
    }
    let mut i = idx;
    let mut looked = 0;
    while i > 0 && looked < SAFETY_LOOKBACK {
        i -= 1;
        looked += 1;
        let l = &lines[i];
        if is_safety_comment(&l.comment) {
            return true;
        }
        let code = l.code.trim();
        let is_pass_through = code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#![")
            // A grouped `unsafe impl Send/Sync` pair shares the comment
            // above the first impl.
            || (code.contains("unsafe impl") && lines[idx].code.contains("unsafe impl"))
            // A statement head rustfmt wrapped above the unsafe expression
            // (e.g. `let row =` / a call opened with `(` / an argument
            // list) — the comment sits above the whole statement.
            || code.ends_with('=')
            || code.ends_with('(')
            || code.ends_with(',');
        if !is_pass_through {
            return false;
        }
    }
    false
}

fn is_safety_comment(comment: &str) -> bool {
    comment.contains("SAFETY")
        || comment.contains("# Safety")
        || comment.contains("Safety contract")
}

/// How many dedicated comment lines above a statement are searched for a
/// `lint:allow` annotation (the annotation's reason may wrap).
const SUPPRESSION_LOOKBACK: usize = 8;

/// Parse `lint:allow(rule, rule2) -- reason` annotations covering line
/// `idx`: on the line itself, or anywhere in the contiguous block of
/// code-free comment lines directly above it (so a wrapped reason does not
/// push the annotation out of range). Malformed annotations are reported.
fn suppressions(
    lines: &[Line],
    idx: usize,
    report: &mut Report,
    path: &Path,
    in_test: bool,
) -> Vec<Rule> {
    let mut candidates = vec![idx];
    for back in 1..=SUPPRESSION_LOOKBACK {
        let Some(look) = idx.checked_sub(back) else {
            break;
        };
        // Only dedicated comment lines extend the annotation block.
        if !lines[look].code.trim().is_empty() || lines[look].comment.trim().is_empty() {
            break;
        }
        candidates.push(look);
    }
    let mut rules = Vec::new();
    for look in candidates {
        let comment = &lines[look].comment;
        let Some(pos) = comment.find("lint:allow(") else {
            continue;
        };
        // Malformed annotations are reported exactly once: when the scan
        // visits the annotation's own line.
        let report_bad = look == idx && !in_test;
        let rest = &comment[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            if report_bad {
                report
                    .violations
                    .push(bad_suppression(path, lines[idx].number, "missing `)`"));
            }
            continue;
        };
        let names = &rest[..close];
        let after = &rest[close + 1..];
        let reason_ok = after
            .split_once("--")
            .is_some_and(|(_, reason)| !reason.trim().is_empty());
        if !reason_ok {
            if report_bad {
                report.violations.push(bad_suppression(
                    path,
                    lines[look].number,
                    "missing `-- <reason>`",
                ));
            }
            continue;
        }
        for name in names.split(',') {
            match Rule::from_name(name.trim()) {
                Some(rule) => rules.push(rule),
                None => {
                    if report_bad {
                        report.violations.push(bad_suppression(
                            path,
                            lines[look].number,
                            &format!("unknown rule `{}`", name.trim()),
                        ));
                    }
                }
            }
        }
    }
    rules
}

fn bad_suppression(path: &Path, line: usize, what: &str) -> Violation {
    Violation {
        path: path.to_path_buf(),
        line,
        rule: Rule::BadSuppression,
        message: format!("malformed lint:allow annotation: {what}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(path: &str, src: &str) -> Report {
        let mut report = Report::default();
        lint_source(Path::new(path), src, &mut report);
        report
    }

    fn rules_fired(report: &Report) -> Vec<Rule> {
        report.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unjustified_unsafe_block_is_flagged() {
        let r = lint_str(
            "crates/dwt/src/x.rs",
            "fn f(p: *mut u8) {\n    unsafe { *p = 1 };\n}\n",
        );
        assert_eq!(rules_fired(&r), vec![Rule::UnsafeNeedsSafety]);
        assert_eq!(r.violations[0].line, 2);
    }

    #[test]
    fn safety_comment_above_satisfies_rule() {
        let r = lint_str(
            "crates/dwt/src/x.rs",
            "fn f(p: *mut u8) {\n    // SAFETY: p is valid and exclusive.\n    unsafe { *p = 1 };\n}\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.unsafe_sites.len(), 1);
        assert!(r.unsafe_sites[0].justified);
    }

    #[test]
    fn safety_doc_section_satisfies_unsafe_fn() {
        let r = lint_str(
            "crates/parutil/src/x.rs",
            "/// Does a thing.\n///\n/// # Safety\n/// Caller must own `i`.\n#[inline]\npub unsafe fn poke(i: usize) {}\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn grouped_unsafe_impls_share_justification() {
        let src = "// SAFETY: disjointness is the caller's obligation.\nunsafe impl<T: Send> Send for P<T> {}\nunsafe impl<T: Send> Sync for P<T> {}\n";
        let r = lint_str("crates/parutil/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.unsafe_sites.len(), 2);
    }

    #[test]
    fn safety_comment_does_not_leak_across_code() {
        let src = "// SAFETY: only covers the first block.\nlet a = unsafe { f() };\nlet b = 1;\nlet c = unsafe { g() };\n";
        let r = lint_str("crates/dwt/src/x.rs", src);
        assert_eq!(rules_fired(&r), vec![Rule::UnsafeNeedsSafety]);
        assert_eq!(r.violations[0].line, 4);
    }

    #[test]
    fn unwrap_in_hot_path_is_flagged() {
        let r = lint_str("crates/mq/src/x.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(rules_fired(&r), vec![Rule::HotPathPanic]);
    }

    #[test]
    fn expect_and_panic_in_hot_path_are_flagged() {
        let r = lint_str(
            "crates/tier2/src/x.rs",
            "fn f() { x.expect(\"boom\"); panic!(\"no\"); }\n",
        );
        assert_eq!(
            rules_fired(&r),
            vec![Rule::HotPathPanic, Rule::HotPathPanic]
        );
    }

    #[test]
    fn unwrap_outside_hot_path_is_fine() {
        let r = lint_str("crates/image/src/x.rs", "fn f() { x.unwrap(); }\n");
        assert!(r.violations.is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let r = lint_str("crates/mq/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn unwrap_in_test_file_is_fine() {
        let r = lint_str("crates/mq/tests/t.rs", "fn f() { x.unwrap(); }\n");
        assert!(r.violations.is_empty());
    }

    #[test]
    fn unwrap_in_string_is_not_flagged() {
        let r = lint_str(
            "crates/mq/src/x.rs",
            "fn f() { let s = \"call .unwrap() later\"; }\n",
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn expect_named_method_is_not_flagged() {
        let r = lint_str(
            "crates/tier2/src/x.rs",
            "fn f(r: &mut R) -> Result<(), E> { r.expect_marker(SOC)?; Ok(()) }\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn thread_spawn_outside_parutil_is_flagged() {
        let r = lint_str(
            "crates/core/src/x.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        );
        assert_eq!(rules_fired(&r), vec![Rule::RawThreadSpawn]);
    }

    #[test]
    fn thread_scope_and_builder_are_flagged() {
        let r = lint_str(
            "crates/dwt/src/x.rs",
            "fn f() { thread::scope(|s| {}); thread::Builder::new(); }\n",
        );
        assert_eq!(
            rules_fired(&r),
            vec![Rule::RawThreadSpawn, Rule::RawThreadSpawn]
        );
    }

    #[test]
    fn thread_spawn_inside_parutil_is_fine() {
        let r = lint_str(
            "crates/parutil/src/x.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn safety_comment_above_wrapped_statement_works() {
        // rustfmt may break `let x = unsafe { ... }` after the `=`; the
        // SAFETY comment above the statement head must still count.
        let src = "// SAFETY: disjoint rows.\nlet row =\n    unsafe { ptr.slice_mut(0, w) };\n";
        let r = lint_str("crates/dwt/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn suppression_with_reason_works() {
        let src = "fn f() { x.unwrap(); // lint:allow(hot_path_panic) -- length checked above\n}\n";
        let r = lint_str("crates/mq/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn suppression_on_line_above_works() {
        let src = "// lint:allow(hot_path_panic) -- table index is clamped to 46\nlet q = TABLE[i].unwrap();\n";
        let r = lint_str("crates/mq/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn suppression_with_wrapped_reason_works() {
        // The reason continues onto a second comment line; the annotation
        // still covers the statement below the block.
        let src = "// lint:allow(hot_path_panic) -- table index is clamped\n// to 46 by the state machine.\nlet q = TABLE[i].unwrap();\n";
        let r = lint_str("crates/mq/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn suppression_does_not_leak_past_code() {
        // An annotation above an *intervening statement* covers only that
        // statement, not later ones.
        let src =
            "// lint:allow(hot_path_panic) -- covered\nlet a = x.unwrap();\nlet b = y.unwrap();\n";
        let r = lint_str("crates/mq/src/x.rs", src);
        assert_eq!(rules_fired(&r), vec![Rule::HotPathPanic]);
    }

    #[test]
    fn suppression_without_reason_is_flagged() {
        let src = "fn f() { x.unwrap(); // lint:allow(hot_path_panic)\n}\n";
        let r = lint_str("crates/mq/src/x.rs", src);
        assert!(rules_fired(&r).contains(&Rule::BadSuppression));
        // ... and does NOT suppress the original finding.
        assert!(rules_fired(&r).contains(&Rule::HotPathPanic));
    }

    #[test]
    fn suppression_of_unknown_rule_is_flagged() {
        let src = "fn f() { x.unwrap(); // lint:allow(no_such_rule) -- because\n}\n";
        let r = lint_str("crates/mq/src/x.rs", src);
        assert!(rules_fired(&r).contains(&Rule::BadSuppression));
    }

    #[test]
    fn suppression_only_covers_its_rule() {
        let src = "fn f(p: *mut u8) { unsafe { *p = 1 }; x.unwrap(); // lint:allow(hot_path_panic) -- checked\n}\n";
        let r = lint_str("crates/mq/src/x.rs", src);
        assert_eq!(rules_fired(&r), vec![Rule::UnsafeNeedsSafety]);
    }

    #[test]
    fn inventory_counts_test_sites_without_flagging() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(p: *mut u8) { unsafe { *p = 1 }; }\n}\n";
        let r = lint_str("crates/dwt/src/x.rs", src);
        assert!(r.violations.is_empty());
        assert_eq!(r.unsafe_sites.len(), 1);
        assert!(r.unsafe_sites[0].in_test);
    }

    #[test]
    fn unsafe_impl_in_test_code_needs_safety() {
        // A Send/Sync impl in a test harness still transfers real data
        // across real threads — the contract must be written down.
        let src =
            "#[cfg(test)]\nmod tests {\n    struct W(*mut u8);\n    unsafe impl Send for W {}\n}\n";
        let r = lint_str("crates/parutil/src/x.rs", src);
        assert_eq!(rules_fired(&r), vec![Rule::UnsafeNeedsSafety]);
        assert_eq!(r.violations[0].line, 4);
    }

    #[test]
    fn unsafe_fn_in_test_file_needs_safety() {
        let r = lint_str(
            "crates/parutil/tests/t.rs",
            "unsafe fn poke(p: *mut u8) { unsafe { *p = 1 } }\n",
        );
        assert_eq!(rules_fired(&r), vec![Rule::UnsafeNeedsSafety]);
    }

    #[test]
    fn justified_unsafe_impl_in_test_code_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    struct W(*mut u8);\n    \
                   // SAFETY: each test thread gets a disjoint pointer.\n    \
                   unsafe impl Send for W {}\n}\n";
        let r = lint_str("crates/parutil/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn unsafe_block_in_test_code_stays_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(p: *mut u8) { unsafe { *p = 1 }; }\n}\n";
        let r = lint_str("crates/parutil/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn unsafe_kind_classification() {
        assert_eq!(unsafe_kinds("pub unsafe fn f()"), vec![UnsafeKind::Fn]);
        assert_eq!(
            unsafe_kinds("unsafe impl Send for X {}"),
            vec![UnsafeKind::Impl]
        );
        assert_eq!(unsafe_kinds("unsafe trait T {}"), vec![UnsafeKind::Trait]);
        assert_eq!(
            unsafe_kinds("let x = unsafe { f() };"),
            vec![UnsafeKind::Block]
        );
        assert_eq!(unsafe_kinds("unsafe_op_in_unsafe_fn"), vec![]);
        assert_eq!(unsafe_kinds("unsafe { a }; unsafe { b };").len(), 2);
    }

    #[test]
    fn fused_kernels_stay_panic_free() {
        // Regression guard for the fused lifting hot loops specifically:
        // `dwt` is a HOT_PATH_CRATES member, so any unwrap/expect/panic!
        // creeping into the single-pass kernels must fail this lint.
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../dwt/src/fused.rs")
            .canonicalize()
            .expect("crates/dwt/src/fused.rs must exist");
        let src = std::fs::read_to_string(&path).unwrap();
        let mut r = Report::default();
        lint_source(Path::new("crates/dwt/src/fused.rs"), &src, &mut r);
        let panics: Vec<_> = r
            .violations
            .iter()
            .filter(|v| v.rule == Rule::HotPathPanic)
            .collect();
        assert!(panics.is_empty(), "{panics:?}");
    }

    #[test]
    fn simd_kernels_stay_panic_free_and_justified() {
        // Same regression guard for the SIMD lifting kernels: every
        // intrinsics `unsafe` block/fn must carry a SAFETY justification,
        // and no unwrap/expect/panic! may creep into the vector hot loops.
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../dwt/src/simd.rs")
            .canonicalize()
            .expect("crates/dwt/src/simd.rs must exist");
        let src = std::fs::read_to_string(&path).unwrap();
        let mut r = Report::default();
        lint_source(Path::new("crates/dwt/src/simd.rs"), &src, &mut r);
        let bad: Vec<_> = r
            .violations
            .iter()
            .filter(|v| v.rule == Rule::HotPathPanic || v.rule == Rule::UnsafeNeedsSafety)
            .collect();
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn inventory_render_mentions_counts() {
        let mut r = Report::default();
        lint_source(
            Path::new("crates/dwt/src/x.rs"),
            "// SAFETY: fine.\nunsafe fn f() {}\n",
            &mut r,
        );
        let text = r.render_inventory();
        assert!(text.contains("dwt: 1 sites"), "{text}");
        assert!(text.contains("unsafe fn"), "{text}");
    }
}
