//! `xtask audit-panics` — static panic-path audit of the decode pipeline.
//!
//! The decoder consumes untrusted bytes (DESIGN.md §9): every way it could
//! panic is a potential denial-of-service. This pass inventories every
//! *panic site* in the decoder-reachable scope — panicking calls
//! (`unwrap`/`expect`/`panic!`/`unreachable!`/asserts), slice/array
//! indexing expressions, and scoped `#[allow(clippy::...)]` escapes from
//! the no-panic lints — and requires each one to carry an explicit
//! `// AUDIT:` justification classifying it as unreachable-from-input.
//!
//! Three annotation forms are accepted, mirroring the SAFETY discipline of
//! the concurrency lint ([`crate::lint`]):
//!
//! * `// AUDIT: <reason>` on the site's line or in the contiguous
//!   comment/attribute block directly above it;
//! * `// AUDIT(fn): <reason>` above an item — covers every site inside the
//!   braced body that follows (used for encoder-only functions, which are
//!   never fed untrusted bytes);
//! * `// AUDIT(block): <reason>` above a statement or block — same
//!   mechanics, scoped to the next braced region (or, for brace-less
//!   statements, the statement itself via the lookback rule).
//!
//! The scope additionally must *declare* the no-panic lint wall: each
//! audited file (or its crate root) carries
//! `#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]`,
//! so unchecked arithmetic and unguarded indexing are compile errors unless
//! explicitly allowed — and every such `allow` is itself an audit site.
//!
//! Test code is exempt (tests may panic freely); the inventory still counts
//! it so the report shows the full picture.

use crate::scan::{classify, Line};
use std::fmt;
use std::path::{Path, PathBuf};

/// The audited scope: everything untrusted bytes flow through
/// (decoder-reachable code), plus encoder hot loops dense enough in
/// index/shift arithmetic that they carry the same wall (the Tier-1
/// bitplane engine). Directories mean "every `.rs` file directly inside".
const SCOPED_DIRS: &[&str] = &["crates/tier2/src", "crates/mq/src"];
const SCOPED_FILES: &[&str] = &[
    "crates/ebcot/src/decoder.rs",
    "crates/ebcot/src/bitplane.rs",
    "crates/core/src/decode.rs",
    "crates/image/src/pnm.rs",
    // Encoder hot DWT kernels: same index/arithmetic density as the
    // Tier-1 bitplane engine, and the same wall (ISSUE 8 satellite).
    "crates/dwt/src/lift.rs",
    "crates/dwt/src/fused.rs",
    "crates/dwt/src/vertical.rs",
    "crates/dwt/src/simd.rs",
];

/// The lint wall every scoped file must live behind.
const DENY_ARITH: &str = "clippy::arithmetic_side_effects";
const DENY_INDEX: &str = "clippy::indexing_slicing";

/// Panicking calls the audit looks for. Needles starting with an
/// identifier character are matched at word boundaries, so
/// `debug_assert!` (compiled out in release builds) does not match
/// `assert!`.
const PANIC_NEEDLES: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// Kind of panic site, for the inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// A panicking call (`unwrap`, `expect`, `panic!`, an assert, ...).
    PanicCall,
    /// A bracket-indexing expression (`x[i]`, `x[a..b]`).
    Indexing,
    /// A scoped `#[allow(clippy::arithmetic_side_effects)]` /
    /// `#[allow(clippy::indexing_slicing)]` escape from the lint wall.
    AllowAttr,
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SiteKind::PanicCall => "panic call",
            SiteKind::Indexing => "indexing",
            SiteKind::AllowAttr => "allow attr",
        };
        f.write_str(s)
    }
}

/// One inventoried site.
#[derive(Debug, Clone)]
pub struct AuditSite {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What kind of site.
    pub kind: SiteKind,
    /// The matched token (needle or `[`-context snippet).
    pub what: String,
    /// Whether the site is in test code.
    pub in_test: bool,
    /// Whether an AUDIT justification covers it.
    pub audited: bool,
}

/// One audit failure.
#[derive(Debug, Clone)]
pub struct AuditViolation {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} {}", self.path.display(), self.line, self.message)
    }
}

/// Result of auditing the scope.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Every site found, in file order.
    pub sites: Vec<AuditSite>,
    /// Unaudited sites and missing deny declarations.
    pub violations: Vec<AuditViolation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// Render the inventory grouped by file.
    pub fn render(&self) -> String {
        use std::collections::BTreeMap;
        let mut by_file: BTreeMap<String, Vec<&AuditSite>> = BTreeMap::new();
        for site in &self.sites {
            by_file
                .entry(site.path.display().to_string())
                .or_default()
                .push(site);
        }
        let mut out = String::new();
        out.push_str("== panic-site inventory (decoder-reachable scope) ==\n");
        for (file, sites) in &by_file {
            let tests = sites.iter().filter(|s| s.in_test).count();
            out.push_str(&format!(
                "{file}: {} sites ({} in tests)\n",
                sites.len(),
                tests
            ));
            for s in sites {
                out.push_str(&format!(
                    "  {}:{} {} `{}`{}{}\n",
                    s.path.display(),
                    s.line,
                    s.kind,
                    s.what,
                    if s.in_test { " [test]" } else { "" },
                    if s.audited || s.in_test {
                        ""
                    } else {
                        " [NO AUDIT]"
                    }
                ));
            }
        }
        let unaudited = self
            .sites
            .iter()
            .filter(|s| !s.in_test && !s.audited)
            .count();
        out.push_str(&format!(
            "total: {} sites across {} files ({} non-test sites lack an AUDIT comment)\n",
            self.sites.len(),
            self.files_scanned,
            unaudited
        ));
        out
    }
}

/// Audit every file in the decoder-reachable scope under `root`.
pub fn audit_workspace(root: &Path) -> std::io::Result<AuditReport> {
    let mut files = Vec::new();
    for dir in SCOPED_DIRS {
        let dir_path = root.join(dir);
        if !dir_path.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&dir_path)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    for file in SCOPED_FILES {
        let path = root.join(file);
        if path.is_file() {
            files.push(path);
        }
    }
    files.sort();
    let mut report = AuditReport::default();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        // The lint wall may be declared per-file or at the crate root.
        let crate_root_deny = file
            .parent()
            .map(|dir| dir.join("lib.rs"))
            .filter(|lib| lib != file)
            .and_then(|lib| std::fs::read_to_string(lib).ok())
            .is_some_and(|src| declares_deny(&src));
        audit_source(&rel, &source, crate_root_deny, &mut report);
    }
    Ok(report)
}

/// True when `source` declares the scoped no-panic lint wall.
fn declares_deny(source: &str) -> bool {
    source.lines().any(|l| {
        let l = l.trim();
        l.starts_with("#![deny(") && l.contains(DENY_ARITH) && l.contains(DENY_INDEX)
    })
}

/// Audit one file's source text into `report`.
pub fn audit_source(
    path: &Path,
    source: &str,
    crate_root_declares_deny: bool,
    report: &mut AuditReport,
) {
    report.files_scanned += 1;
    if !declares_deny(source) && !crate_root_declares_deny {
        report.violations.push(AuditViolation {
            path: path.to_path_buf(),
            line: 0,
            message: format!(
                "scoped file lacks `#![deny({DENY_ARITH}, {DENY_INDEX})]` \
                 (here or in the crate root)"
            ),
        });
    }
    let lines = classify(source);
    let covered = block_coverage(&lines);
    for (idx, line) in lines.iter().enumerate() {
        let in_test = line.in_test_item || near_cfg_test(&lines, idx);
        let mut sites: Vec<(SiteKind, String)> = Vec::new();
        for needle in PANIC_NEEDLES {
            if find_needle(&line.code, needle).is_some() {
                sites.push((SiteKind::PanicCall, (*needle).to_string()));
            }
        }
        for snippet in indexing_sites(&line.code) {
            sites.push((SiteKind::Indexing, snippet));
        }
        if line.code.contains("allow(")
            && (line.code.contains(DENY_ARITH) || line.code.contains(DENY_INDEX))
        {
            sites.push((SiteKind::AllowAttr, "#[allow(clippy::..)]".to_string()));
        }
        if sites.is_empty() {
            continue;
        }
        let audited =
            covered.get(idx).copied().unwrap_or(false) || has_audit_justification(&lines, idx);
        for (kind, what) in sites {
            report.sites.push(AuditSite {
                path: path.to_path_buf(),
                line: line.number,
                kind,
                what: what.clone(),
                in_test,
                audited,
            });
            if !in_test && !audited {
                report.violations.push(AuditViolation {
                    path: path.to_path_buf(),
                    line: line.number,
                    message: format!(
                        "{kind} `{what}` without an `// AUDIT:` justification \
                         (classify it as unreachable-from-input or return an error)"
                    ),
                });
            }
        }
    }
}

/// Bracket-indexing expressions on a code line: a `[` directly preceded by
/// an identifier character, `)` or `]` is an index/slice of a place
/// expression (attribute `#[..]`, macro `vec![..]`, array type `[u8; 4]`
/// and slice pattern `&[a, b]` all fail the predecessor test). Returns a
/// short context snippet per hit for the report.
fn indexing_sites(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']' {
            let start = i.saturating_sub(12);
            let end = (i + 8).min(chars.len());
            out.push(chars[start..end].iter().collect::<String>());
        }
    }
    out
}

/// Find `needle` in `code`. Needles starting with an identifier character
/// are matched at word boundaries (so `debug_assert!` does not match
/// `assert!`, and `my_panic!` does not match `panic!`); needles starting
/// with `.` match anywhere.
fn find_needle(code: &str, needle: &str) -> Option<usize> {
    let needs_boundary = needle
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut start = 0;
    while let Some(rel) = code[start..].find(needle) {
        let pos = start + rel;
        let before_ok = !needs_boundary
            || pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok {
            return Some(pos);
        }
        start = pos + needle.len();
    }
    None
}

/// True when line `idx` sits within (a few lines below) a `#[cfg(test)]`
/// attribute — covers attribute stacks between the cfg and the item brace,
/// which the brace-tracking test marker cannot see yet.
fn near_cfg_test(lines: &[Line], idx: usize) -> bool {
    (idx.saturating_sub(3)..=idx).any(|i| lines[i].code.contains("#[cfg(test)]"))
}

/// How far above a site the contiguous-block lookback searches for its
/// AUDIT comment (matches the SAFETY lookback of the concurrency lint).
const AUDIT_LOOKBACK: usize = 24;

/// True when line `idx` is covered by a per-site AUDIT comment: on the
/// line itself, or in the contiguous run of comment/attribute/blank or
/// wrapped-statement-head lines directly above.
fn has_audit_justification(lines: &[Line], idx: usize) -> bool {
    if is_audit_comment(&lines[idx].comment) {
        return true;
    }
    let mut i = idx;
    let mut looked = 0;
    while i > 0 && looked < AUDIT_LOOKBACK {
        i -= 1;
        looked += 1;
        let l = &lines[i];
        if is_audit_comment(&l.comment) {
            return true;
        }
        let code = l.code.trim();
        let is_pass_through = code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#![")
            // A statement head rustfmt wrapped above the site.
            || code.ends_with('=')
            || code.ends_with('(')
            || code.ends_with(',');
        if !is_pass_through {
            return false;
        }
    }
    false
}

fn is_audit_comment(comment: &str) -> bool {
    comment.contains("AUDIT")
}

/// How many lines below an `AUDIT(fn)` / `AUDIT(block)` comment the opening
/// brace of the covered item may sit (a multi-line comment, attributes and
/// a fully wrapped signature all push the brace down).
const BLOCK_SCAN: usize = 24;

/// Per-line coverage by `AUDIT(fn)` / `AUDIT(block)` comments: from each
/// such comment, scan forward to the first code line containing `{`, then
/// brace-match (on comment-and-string-stripped code) to the region's end;
/// every line in between is covered.
fn block_coverage(lines: &[Line]) -> Vec<bool> {
    let mut covered = vec![false; lines.len()];
    for idx in 0..lines.len() {
        let c = &lines[idx].comment;
        if !(c.contains("AUDIT(fn)") || c.contains("AUDIT(block)")) {
            continue;
        }
        // Find the opening brace of the item the comment annotates.
        let open = lines
            .iter()
            .enumerate()
            .take(lines.len().min(idx + BLOCK_SCAN))
            .skip(idx)
            .find(|(_, l)| l.code.contains('{'))
            .map(|(j, _)| j);
        let Some(open) = open else { continue };
        let mut depth: i64 = 0;
        let mut end = open;
        'scan: for (j, line) in lines.iter().enumerate().skip(open) {
            for ch in line.code.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    _ => {}
                }
            }
            end = j;
        }
        for slot in covered.iter_mut().take(end + 1).skip(idx) {
            *slot = true;
        }
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_str(path: &str, src: &str) -> AuditReport {
        let mut report = AuditReport::default();
        audit_source(Path::new(path), src, false, &mut report);
        report
    }

    const DENY: &str = "#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]\n";

    #[test]
    fn missing_deny_is_flagged() {
        let r = audit_str("crates/tier2/src/x.rs", "fn f() {}\n");
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("deny"));
    }

    #[test]
    fn crate_root_deny_satisfies_file() {
        let mut r = AuditReport::default();
        audit_source(
            Path::new("crates/mq/src/raw.rs"),
            "fn f() {}\n",
            true,
            &mut r,
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn unaudited_unwrap_is_flagged() {
        let src = format!("{DENY}fn f() {{ x.unwrap(); }}\n");
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains(".unwrap()"));
        assert_eq!(r.violations[0].line, 2);
    }

    #[test]
    fn audit_comment_above_covers_site() {
        let src = format!(
            "{DENY}fn f() {{\n    // AUDIT: length checked two lines up.\n    x.unwrap();\n}}\n"
        );
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.sites.len(), 1);
        assert!(r.sites[0].audited);
    }

    #[test]
    fn audit_comment_same_line_covers_site() {
        let src = format!("{DENY}fn f() {{ x.unwrap(); // AUDIT: cannot fail\n}}\n");
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn audit_fn_covers_whole_body() {
        let src = format!(
            "{DENY}// AUDIT(fn): encoder side, no untrusted input.\n\
             #[allow(clippy::indexing_slicing)]\n\
             fn encode(v: &[u8]) {{\n    let a = v[0];\n    let b = v[1].max(2);\n}}\n"
        );
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // allow attr + two indexing sites, all audited
        assert!(r.sites.len() >= 3);
        assert!(r.sites.iter().all(|s| s.audited));
    }

    #[test]
    fn audit_fn_does_not_leak_past_body() {
        let src = format!(
            "{DENY}// AUDIT(fn): covered.\nfn a(v: &[u8]) {{\n    let x = v[0];\n}}\n\
             fn b(v: &[u8]) {{\n    let y = v[1];\n}}\n"
        );
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 7);
    }

    #[test]
    fn indexing_heuristic_skips_non_indexing_brackets() {
        let src = format!(
            "{DENY}fn f(v: &[u8; 4]) -> Vec<u8> {{\n    #[cfg(feature = \"x\")]\n    let a: [u8; 2] = [1, 2];\n    vec![0u8; 3]\n}}\n"
        );
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert!(
            r.sites.iter().all(|s| s.kind != SiteKind::Indexing),
            "{:?}",
            r.sites
        );
    }

    #[test]
    fn indexing_heuristic_catches_place_expressions() {
        let src = format!("{DENY}fn f(v: &[u8], i: usize) {{\n    let a = v[i];\n}}\n");
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert_eq!(
            r.sites
                .iter()
                .filter(|s| s.kind == SiteKind::Indexing)
                .count(),
            1
        );
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn debug_assert_is_not_a_site() {
        let src = format!("{DENY}fn f(x: u8) {{ debug_assert!(x < 2); }}\n");
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert!(r.sites.is_empty(), "{:?}", r.sites);
    }

    #[test]
    fn assert_is_a_site() {
        let src = format!("{DENY}fn f(x: u8) {{ assert!(x < 2); }}\n");
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn test_code_is_exempt_but_inventoried() {
        let src = format!(
            "{DENY}#[cfg(test)]\n#[allow(clippy::indexing_slicing)]\nmod tests {{\n    fn t(v: &[u8]) {{ let a = v[0]; v.last().unwrap(); }}\n}}\n"
        );
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.sites.iter().all(|s| s.in_test), "{:?}", r.sites);
    }

    #[test]
    fn scoped_allow_needs_audit() {
        let src = format!(
            "{DENY}#[allow(clippy::arithmetic_side_effects)]\nfn f(a: u32, b: u32) -> u32 {{ a + b }}\n"
        );
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("allow"));
    }

    #[test]
    fn needle_in_string_is_not_a_site() {
        let src = format!("{DENY}fn f() {{ let s = \"call .unwrap() or panic!\"; }}\n");
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert!(r.sites.is_empty(), "{:?}", r.sites);
    }

    #[test]
    fn expect_named_method_is_not_a_site() {
        let src =
            format!("{DENY}fn f(r: &mut R) -> Result<(), E> {{ r.expect_marker(SOC)?; Ok(()) }}\n");
        let r = audit_str("crates/tier2/src/x.rs", &src);
        assert!(r.sites.iter().all(|s| s.kind != SiteKind::PanicCall));
    }

    #[test]
    fn render_mentions_counts() {
        let src = format!("{DENY}fn f() {{ x.unwrap(); }}\n");
        let r = audit_str("crates/tier2/src/x.rs", &src);
        let text = r.render();
        assert!(text.contains("1 sites"), "{text}");
        assert!(text.contains("NO AUDIT"), "{text}");
    }
}
