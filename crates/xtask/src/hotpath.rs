//! `xtask audit-hotpath` — static hot-path discipline audit.
//!
//! The measured wins of this workspace live in a handful of inner loops:
//! the Tier-1 bit-plane passes, the MQ coder, the lifting kernels, the
//! dynamic-schedule claim loop, quantization. PRs 2–7 made those loops
//! allocation-free, lock-free and branch-lean (scratch arenas, packed flag
//! words, SIMD tiers) — but nothing *enforced* that discipline. One stray
//! `Vec::push` into a fresh vector, a `format!`, or a mutex deep in a
//! helper silently reintroduces the memory traffic the optimization PRs
//! removed. This pass makes the performance contract a CI gate.
//!
//! Mechanics (all dependency-free, built on [`crate::scan`]):
//!
//! 1. **Roots** are declared in a checked-in `hotpaths.toml` at the
//!    workspace root: each `[[root]]` names a crate + module file (and
//!    optionally a single function) whose functions are hot entry points.
//!    New subsystems opt in by adding a root.
//! 2. The pass parses every `crates/*/src/**.rs` file, extracts function
//!    definitions (name, body extent, enclosing `impl` type) and the call
//!    tokens inside each body, and builds an **approximate intra-workspace
//!    call graph** by name resolution: qualified calls (`Type::f`,
//!    `module::f`) filter candidates by impl type / module / crate, method
//!    calls prefer impl methods, bare calls prefer same-module then
//!    same-crate definitions, and anything still ambiguous links to every
//!    candidate — an over-approximation, which for a wall is the safe
//!    direction. Two guards keep the over-approximation honest: test code
//!    is excluded on both ends, and a call can only resolve into the
//!    caller's own crate or its (transitive) workspace dependencies, as
//!    parsed from the `crates/*/Cargo.toml` `[dependencies]` sections —
//!    same-name methods in crates the caller cannot even link against do
//!    not create edges.
//! 3. Every function in the transitive closure of the roots is scanned for
//!    **discipline sites**: heap allocation (`Vec::new`/`with_capacity`/
//!    `push`/`collect`, `Box::new`, `to_vec`, `clone`, `format!`/`String`),
//!    locking (`Mutex`/`RwLock`/`Condvar`/`lock`/`wait`/`notify`),
//!    blocking I/O (`File::*`, `read_to_*`, `println!` and friends), and
//!    panicking constructs (the [`crate::audit`] needle set).
//! 4. Each non-test site must carry an `// AUDIT(hot): …` justification
//!    naming why it is setup-time, amortized (e.g. a push into a recycled
//!    buffer whose steady state the counting-allocator oracle pins at
//!    zero), or cold. The comment covers the site's line, the contiguous
//!    comment/attribute block above it, or — when placed in the comment
//!    block above a `fn` — the whole body. Panic sites already justified
//!    for [`crate::audit`] (`AUDIT:`/`AUDIT(fn)`/`AUDIT(block)`) are
//!    accepted as-is: reachability is that audit's contract, and a second
//!    marker would be noise.
//!
//! The runtime cross-check lives in `crates/bench`: a counting global
//! allocator asserts zero steady-state allocations per coded block and per
//! DWT strip after warm-up (`tests/alloc_oracle.rs`, plus the
//! `bench_tier1`/`bench_dwt` self-validation). The static wall keeps the
//! sites enumerable and justified; the dynamic floor proves the
//! justifications ("amortized", "setup-time") are actually true.

use crate::scan::{classify, Line};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};

/// One hot-root declaration from `hotpaths.toml`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RootSpec {
    /// Package name (`pj2k-ebcot`) or bare crate dir name (`ebcot`).
    pub krate: String,
    /// Module file stem relative to `src/` (`bitplane`, `lib`, `raw`).
    pub module: String,
    /// Restrict the root to one function instead of the whole module.
    pub function: Option<String>,
    /// Why this is a hot entry point (documentation only).
    pub note: String,
}

/// Parse the `hotpaths.toml` subset: `[[root]]` tables with string
/// key/value assignments. A hand parser keeps xtask dependency-free; the
/// file's grammar is deliberately restricted to what this reads.
pub fn parse_roots(text: &str) -> Result<Vec<RootSpec>, String> {
    let mut roots: Vec<RootSpec> = Vec::new();
    let mut open = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[root]]" {
            roots.push(RootSpec::default());
            open = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "hotpaths.toml:{}: expected `key = \"value\"`",
                ln + 1
            ));
        };
        if !open {
            return Err(format!(
                "hotpaths.toml:{}: assignment outside a [[root]] table",
                ln + 1
            ));
        }
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("hotpaths.toml:{}: value must be a \"string\"", ln + 1))?;
        let root = roots.last_mut().expect("open implies a root");
        match key.trim() {
            "crate" => root.krate = value.to_string(),
            "module" => root.module = value.to_string(),
            "function" => root.function = Some(value.to_string()),
            "note" => root.note = value.to_string(),
            other => {
                return Err(format!("hotpaths.toml:{}: unknown key `{other}`", ln + 1));
            }
        }
    }
    for (i, r) in roots.iter().enumerate() {
        if r.krate.is_empty() || r.module.is_empty() {
            return Err(format!("hotpaths.toml: root #{} lacks crate/module", i + 1));
        }
    }
    Ok(roots)
}

/// Discipline-site category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotKind {
    /// Heap allocation or growth.
    Alloc,
    /// Lock or condition-variable traffic.
    Lock,
    /// Blocking or console I/O.
    Io,
    /// Panicking construct (shared needle set with `audit-panics`).
    Panic,
}

impl fmt::Display for HotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HotKind::Alloc => "alloc",
            HotKind::Lock => "lock",
            HotKind::Io => "io",
            HotKind::Panic => "panic",
        })
    }
}

/// Allocation needles. `.`-prefixed needles match anywhere; identifier
/// needles match at word boundaries (so `my_format!` is not `format!`).
const ALLOC_NEEDLES: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "vec!",
    "Box::new",
    ".to_vec()",
    ".to_owned()",
    ".to_string()",
    ".collect()",
    ".collect::",
    "String::new",
    "String::from",
    "String::with_capacity",
    "format!",
    ".push(",
    ".push_str(",
    ".extend_from_slice(",
    ".extend(",
    ".resize(",
    ".reserve(",
    ".clone()",
];

const LOCK_NEEDLES: &[&str] = &[
    "Mutex::new",
    "RwLock::new",
    "Condvar::new",
    ".lock()",
    ".wait(",
    ".wait_while(",
    ".notify_one()",
    ".notify_all()",
];

const IO_NEEDLES: &[&str] = &[
    "File::open",
    "File::create",
    "read_to_string",
    "read_to_end",
    "println!",
    "eprintln!",
    "print!",
    "eprint!",
    "stdout()",
    "stderr()",
    "stdin()",
];

/// Same set as `audit-panics` (minus `debug_assert*`, which the word
/// boundary already excludes).
const PANIC_NEEDLES: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// One function definition extracted from a source file.
#[derive(Debug, Clone)]
struct FnDef {
    /// Crate directory name under `crates/` (e.g. `ebcot`).
    krate: String,
    /// Module file stem relative to `src/` (e.g. `bitplane`, `lib`).
    module: String,
    name: String,
    /// Enclosing `impl` block's type name, when inside one.
    impl_type: Option<String>,
    /// Workspace-relative path.
    path: PathBuf,
    /// 0-based line index of the `fn` keyword.
    sig_idx: usize,
    /// 0-based inclusive body line range (covers the signature too).
    body: (usize, usize),
    in_test: bool,
}

/// One call token found inside a function body.
#[derive(Debug, Clone)]
struct CallTok {
    name: String,
    /// Last path segment before `::name(`, when qualified.
    qualifier: Option<String>,
    /// `.name(` method-call syntax.
    method: bool,
}

/// One inventoried discipline site.
#[derive(Debug, Clone)]
pub struct HotSite {
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub kind: HotKind,
    /// The matched needle.
    pub what: String,
    /// `crate::module::fn` the site lives in.
    pub in_fn: String,
    pub in_test: bool,
    pub justified: bool,
}

/// One audit failure.
#[derive(Debug, Clone)]
pub struct HotViolation {
    pub path: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for HotViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} {}", self.path.display(), self.line, self.message)
    }
}

/// Result of the hot-path audit.
#[derive(Debug, Default)]
pub struct HotpathReport {
    pub sites: Vec<HotSite>,
    pub violations: Vec<HotViolation>,
    pub files_scanned: usize,
    /// All function definitions indexed (non-test).
    pub fns_indexed: usize,
    /// Root spec label -> number of root functions it matched.
    pub roots: Vec<(String, usize)>,
    /// Functions in the transitive closure (roots included).
    pub closure: Vec<String>,
    /// Resolved call-graph edges inside the closure frontier.
    pub edges: usize,
}

impl HotpathReport {
    /// Render the inventory grouped by file, with per-category counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== hot-path inventory (transitive closure of hotpaths.toml roots) ==\n");
        out.push_str("roots:\n");
        for (label, n) in &self.roots {
            out.push_str(&format!("  {label}: {n} root fn(s)\n"));
        }
        out.push_str(&format!(
            "closure: {} hot fns ({} indexed workspace-wide), {} resolved edges\n",
            self.closure.len(),
            self.fns_indexed,
            self.edges
        ));
        let mut by_file: BTreeMap<String, Vec<&HotSite>> = BTreeMap::new();
        for site in &self.sites {
            by_file
                .entry(site.path.display().to_string())
                .or_default()
                .push(site);
        }
        for (file, sites) in &by_file {
            let justified = sites.iter().filter(|s| s.justified || s.in_test).count();
            out.push_str(&format!(
                "{file}: {} sites ({justified} justified)\n",
                sites.len()
            ));
            for s in sites {
                out.push_str(&format!(
                    "  {}:{} [{}] `{}` in {}{}\n",
                    s.path.display(),
                    s.line,
                    s.kind,
                    s.what,
                    s.in_fn,
                    if s.justified || s.in_test {
                        ""
                    } else {
                        " [NO AUDIT(hot)]"
                    }
                ));
            }
        }
        let (mut alloc, mut lock, mut io, mut panic) = (0usize, 0usize, 0usize, 0usize);
        for s in &self.sites {
            match s.kind {
                HotKind::Alloc => alloc += 1,
                HotKind::Lock => lock += 1,
                HotKind::Io => io += 1,
                HotKind::Panic => panic += 1,
            }
        }
        let unjustified = self
            .sites
            .iter()
            .filter(|s| !s.in_test && !s.justified)
            .count();
        out.push_str(&format!(
            "total: {} sites (alloc {alloc}, lock {lock}, io {io}, panic {panic}) across {} files; \
             {unjustified} lack an AUDIT(hot) justification\n",
            self.sites.len(),
            self.files_scanned,
        ));
        out
    }
}

/// Audit the workspace rooted at `root`, reading `hotpaths.toml` from it.
pub fn audit_hotpath_workspace(root: &Path) -> std::io::Result<HotpathReport> {
    let toml_path = root.join("hotpaths.toml");
    let roots = match std::fs::read_to_string(&toml_path) {
        Ok(text) => match parse_roots(&text) {
            Ok(r) => r,
            Err(msg) => {
                let mut report = HotpathReport::default();
                report.violations.push(HotViolation {
                    path: PathBuf::from("hotpaths.toml"),
                    line: 0,
                    message: msg,
                });
                return Ok(report);
            }
        },
        Err(err) => {
            let mut report = HotpathReport::default();
            report.violations.push(HotViolation {
                path: PathBuf::from("hotpaths.toml"),
                line: 0,
                message: format!("cannot read hot-root declarations: {err}"),
            });
            return Ok(report);
        }
    };
    let mut files = Vec::new();
    collect_src_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        sources.push((rel, source));
    }
    let deps = workspace_deps(root)?;
    Ok(audit_sources(&sources, &roots, &deps))
}

/// Direct intra-workspace dependency edges, crate dir name → dep dir
/// names, parsed from each `crates/*/Cargo.toml` `[dependencies]` section
/// (dev-dependencies excluded: test-only edges are not hot edges).
pub fn workspace_deps(root: &Path) -> std::io::Result<DepMap> {
    let mut deps = DepMap::new();
    for entry in std::fs::read_dir(root.join("crates"))? {
        let dir = entry?.path();
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(&manifest)?;
        deps.insert(name, parse_manifest_deps(&text));
    }
    Ok(deps)
}

/// Crate dir name → the crate dir names it directly depends on.
pub type DepMap = HashMap<String, BTreeSet<String>>;

/// `pj2k-*` entries in the `[dependencies]` section of a manifest,
/// returned as crate dir names (prefix stripped).
fn parse_manifest_deps(manifest: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_deps = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(rest) = line.strip_prefix("pj2k-") {
            let dep: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
                .collect();
            if !dep.is_empty() {
                out.insert(dep);
            }
        }
    }
    out
}

/// Crates reachable from `krate` through the dependency graph, including
/// `krate` itself.
fn reachable_crates(deps: &DepMap, krate: &str) -> HashSet<String> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    seen.insert(krate.to_string());
    queue.push_back(krate.to_string());
    while let Some(cur) = queue.pop_front() {
        if let Some(direct) = deps.get(&cur) {
            for d in direct {
                if seen.insert(d.clone()) {
                    queue.push_back(d.clone());
                }
            }
        }
    }
    seen
}

/// Every `.rs` file under `crates/*/src`, excluding `crates/xtask` (the
/// audit tool itself: its needle tables would self-match).
fn collect_src_files(crates_dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(crates_dir)? {
        let krate = entry?.path();
        if !krate.is_dir() || krate.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs_recursive(&src, out)?;
        }
    }
    Ok(())
}

fn collect_rs_recursive(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_recursive(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crate dir name and module stem for a workspace-relative path like
/// `crates/ebcot/src/bitplane.rs` → (`ebcot`, `bitplane`). Files in
/// subdirectories keep the directory: `src/bin/bench_dwt.rs` → `bin/bench_dwt`.
fn crate_and_module(rel: &Path) -> (String, String) {
    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let krate = comps.get(1).cloned().unwrap_or_default();
    let module = comps
        .get(3..)
        .map(|rest| rest.join("/"))
        .unwrap_or_default()
        .trim_end_matches(".rs")
        .to_string();
    (krate, module)
}

/// Audit a set of (workspace-relative path, source) pairs against roots.
/// Split out from [`audit_hotpath_workspace`] so fixture tests can feed
/// in-memory snippets.
pub fn audit_sources(
    sources: &[(PathBuf, String)],
    roots: &[RootSpec],
    deps: &DepMap,
) -> HotpathReport {
    let mut report = HotpathReport {
        files_scanned: sources.len(),
        ..Default::default()
    };

    // Pass 1: extract function definitions and classified lines per file.
    let mut defs: Vec<FnDef> = Vec::new();
    let mut calls: Vec<Vec<CallTok>> = Vec::new();
    let mut file_lines: Vec<Vec<Line>> = Vec::new();
    for (rel, source) in sources {
        let lines = classify(source);
        let (krate, module) = crate_and_module(rel);
        let start = defs.len();
        extract_fns(rel, &krate, &module, &lines, &mut defs);
        for def in &defs[start..] {
            calls.push(extract_calls(&lines, def));
        }
        file_lines.push(lines);
    }
    report.fns_indexed = defs.iter().filter(|d| !d.in_test).count();

    // Name index over non-test definitions.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, d) in defs.iter().enumerate() {
        if !d.in_test {
            by_name.entry(d.name.as_str()).or_default().push(i);
        }
    }

    // Roots: every non-test fn matching a spec.
    let mut root_ids: Vec<usize> = Vec::new();
    for spec in roots {
        let krate_dir = spec
            .krate
            .strip_prefix("pj2k-")
            .unwrap_or(spec.krate.as_str());
        let matched: Vec<usize> = defs
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                !d.in_test
                    && d.krate == krate_dir
                    && d.module == spec.module
                    && spec.function.as_ref().is_none_or(|f| *f == d.name)
            })
            .map(|(i, _)| i)
            .collect();
        let label = format!(
            "{}::{}{}",
            spec.krate,
            spec.module,
            spec.function
                .as_ref()
                .map(|f| format!("::{f}"))
                .unwrap_or_default()
        );
        if matched.is_empty() {
            report.violations.push(HotViolation {
                path: PathBuf::from("hotpaths.toml"),
                line: 0,
                message: format!("root `{label}` matches no function in the workspace"),
            });
        }
        report.roots.push((label, matched.len()));
        root_ids.extend(matched);
    }

    // Pass 2: BFS over the approximate call graph.
    let mut hot: HashSet<usize> = HashSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for id in root_ids {
        if hot.insert(id) {
            queue.push_back(id);
        }
    }
    let mut edges = 0usize;
    let mut reach_cache: HashMap<String, HashSet<String>> = HashMap::new();
    while let Some(id) = queue.pop_front() {
        let caller_crate = defs[id].krate.clone();
        let reach = reach_cache
            .entry(caller_crate.clone())
            .or_insert_with(|| reachable_crates(deps, &caller_crate))
            .clone();
        for tok in &calls[id] {
            for cand in resolve(&defs, &by_name, &defs[id], tok, &reach) {
                edges += 1;
                if hot.insert(cand) {
                    queue.push_back(cand);
                }
            }
        }
    }
    report.edges = edges;
    let mut hot_sorted: Vec<usize> = hot.iter().copied().collect();
    hot_sorted.sort();
    report.closure = hot_sorted.iter().map(|&i| fn_label(&defs[i])).collect();

    // Pass 3: scan hot function bodies for discipline sites.
    let mut path_to_file: HashMap<&Path, usize> = HashMap::new();
    for (fi, (rel, _)) in sources.iter().enumerate() {
        path_to_file.insert(rel.as_path(), fi);
    }
    for &id in &hot_sorted {
        let def = &defs[id];
        let Some(&fi) = path_to_file.get(def.path.as_path()) else {
            continue;
        };
        scan_fn_sites(&file_lines[fi], def, &mut report);
    }
    report.sites.sort_by_key(|s| (s.path.clone(), s.line));
    report
}

fn fn_label(def: &FnDef) -> String {
    match &def.impl_type {
        Some(t) => format!("{}::{}::{}::{}", def.krate, def.module, t, def.name),
        None => format!("{}::{}::{}", def.krate, def.module, def.name),
    }
}

/// Keywords that look like call tokens but are not.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "loop", "unsafe", "move", "as", "in", "else",
    "impl", "let", "mut", "ref", "await", "where", "dyn", "pub", "use", "mod", "crate", "super",
    "self", "Self", "break", "continue", "true", "false", "static", "const", "enum", "struct",
    "trait", "type", "union",
];

/// Extract function definitions (with body extents and impl context) from
/// a classified file.
fn extract_fns(rel: &Path, krate: &str, module: &str, lines: &[Line], out: &mut Vec<FnDef>) {
    // Impl regions: (type, body range).
    let impl_regions = impl_regions(lines);
    for (idx, line) in lines.iter().enumerate() {
        for name_pos in fn_def_positions(&line.code) {
            let (pos, name) = name_pos;
            let _ = pos;
            // Find the body's opening brace: first `{` at/after the
            // signature, unless a `;` (trait/extern declaration) comes
            // first.
            let Some((open_idx, open_col)) = find_body_open(lines, idx, &line.code, &name) else {
                continue;
            };
            let end = match_braces(lines, open_idx, open_col);
            let impl_type = impl_regions
                .iter()
                .filter(|(_, (s, e))| *s <= idx && idx <= *e)
                .map(|(t, _)| t.clone())
                .next_back();
            let in_test = lines[idx].in_test_item;
            out.push(FnDef {
                krate: krate.to_string(),
                module: module.to_string(),
                name,
                impl_type,
                path: rel.to_path_buf(),
                sig_idx: idx,
                body: (idx, end),
                in_test,
            });
        }
    }
}

/// Positions and names of `fn` *definitions* on a code line. Matches the
/// `fn` keyword at a word boundary followed by an identifier — which
/// excludes `Fn(`/`fn(`-pointer types (no identifier follows).
fn fn_def_positions(code: &str) -> Vec<(usize, String)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(rel) = code[start..].find("fn ") {
        let pos = start + rel;
        start = pos + 3;
        let before_ok = pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !before_ok {
            continue;
        }
        // Skip whitespace, collect identifier.
        let mut i = pos + 3;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let id_start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        if i > id_start {
            out.push((pos, code[id_start..i].to_string()));
        }
    }
    out
}

/// From the signature line, find the opening brace of the body as
/// (line index, column), or `None` for a brace-less declaration
/// (trait method signature, extern fn).
fn find_body_open(
    lines: &[Line],
    sig_idx: usize,
    sig_code: &str,
    name: &str,
) -> Option<(usize, usize)> {
    // Start searching after the fn name on the signature line.
    let after = sig_code.find(name).map_or(0, |p| p + name.len());
    const SIG_SCAN: usize = 24;
    for (j, line) in lines
        .iter()
        .enumerate()
        .take(lines.len().min(sig_idx + SIG_SCAN))
        .skip(sig_idx)
    {
        let code = &line.code;
        let from = if j == sig_idx { after } else { 0 };
        for (col, ch) in code.char_indices().skip(from) {
            match ch {
                '{' => return Some((j, col)),
                ';' => return None,
                _ => {}
            }
        }
    }
    None
}

/// Match braces from an opening `{` at (line, column); returns the line
/// index of the closing brace (or the last line on malformed input).
fn match_braces(lines: &[Line], open_idx: usize, open_col: usize) -> usize {
    let mut depth: i64 = 0;
    for (j, line) in lines.iter().enumerate().skip(open_idx) {
        let from = if j == open_idx { open_col } else { 0 };
        for (col, ch) in line.code.char_indices() {
            if col < from {
                continue;
            }
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    lines.len().saturating_sub(1)
}

/// `impl` block regions: (type name, inclusive line range).
fn impl_regions(lines: &[Line]) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.trim_start();
        if !(code.starts_with("impl ") || code.starts_with("impl<")) {
            continue;
        }
        let Some(ty) = impl_type_name(code) else {
            continue;
        };
        // The impl body's opening brace.
        let Some((open_idx, open_col)) = find_impl_open(lines, idx) else {
            continue;
        };
        let end = match_braces(lines, open_idx, open_col);
        out.push((ty, (idx, end)));
    }
    out
}

fn find_impl_open(lines: &[Line], idx: usize) -> Option<(usize, usize)> {
    const SCAN: usize = 12;
    for (j, line) in lines
        .iter()
        .enumerate()
        .take(lines.len().min(idx + SCAN))
        .skip(idx)
    {
        if let Some(col) = line.code.find('{') {
            return Some((j, col));
        }
    }
    None
}

/// The implemented type's name from an `impl` header: the first identifier
/// after ` for ` when present (trait impls), else the first type identifier
/// after the generics.
fn impl_type_name(code: &str) -> Option<String> {
    let rest = if let Some(p) = code.find(" for ") {
        &code[p + 5..]
    } else {
        // Skip `impl` and an optional generic parameter list.
        let mut rest = code.strip_prefix("impl")?;
        if rest.starts_with('<') {
            let mut depth = 0usize;
            let mut cut = rest.len();
            for (i, c) in rest.char_indices() {
                match c {
                    '<' => depth += 1,
                    '>' => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            cut = i + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            rest = &rest[cut..];
        }
        rest
    };
    let ident: String = rest
        .chars()
        .skip_while(|c| c.is_whitespace() || *c == '&')
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty() && ident.chars().next().is_some_and(char::is_alphabetic)).then_some(ident)
}

/// Call tokens inside a function body: `name(`, `path::name(`, `.name(`.
fn extract_calls(lines: &[Line], def: &FnDef) -> Vec<CallTok> {
    let mut out = Vec::new();
    for line in lines.iter().take(def.body.1 + 1).skip(def.body.0) {
        collect_calls_on_line(&line.code, &mut out);
    }
    out
}

fn collect_calls_on_line(code: &str, out: &mut Vec<CallTok>) {
    let bytes = code.as_bytes();
    let n = bytes.len();
    let mut i = 0usize;
    while i < n {
        if !(bytes[i].is_ascii_alphabetic() || bytes[i] == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let name = &code[start..i];
        // Optional turbofish between name and `(`.
        let mut j = i;
        if code[j..].starts_with("::<") {
            let mut depth = 0usize;
            let mut k = j + 2;
            for (off, c) in code[j + 2..].char_indices() {
                match c {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            k = j + 2 + off + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            j = k;
        }
        if !code[j..].starts_with('(') {
            continue;
        }
        if KEYWORDS.contains(&name) {
            continue;
        }
        // Uppercase-initial tokens are tuple-struct/enum constructors or
        // types, never workspace fn names (all snake_case); skip to keep
        // resolution noise down.
        if name.chars().next().is_some_and(char::is_uppercase) {
            continue;
        }
        let before = &code[..start];
        let method = before.ends_with('.');
        let qualifier = if let Some(q) = before.strip_suffix("::") {
            let qid: String = q
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            (!qid.is_empty()).then_some(qid)
        } else {
            None
        };
        out.push(CallTok {
            name: name.to_string(),
            qualifier,
            method,
        });
    }
}

/// Resolve a call token from `caller` to candidate definition indices.
/// Candidates outside `reach` (the caller's dep-reachable crate set) are
/// discarded up front: the caller cannot link against them.
fn resolve(
    defs: &[FnDef],
    by_name: &HashMap<&str, Vec<usize>>,
    caller: &FnDef,
    tok: &CallTok,
    reach: &HashSet<String>,
) -> Vec<usize> {
    let Some(all) = by_name.get(tok.name.as_str()) else {
        return Vec::new();
    };
    let cands: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| reach.contains(&defs[i].krate))
        .collect();
    if cands.is_empty() {
        return cands;
    }
    let cands = &cands;
    if let Some(q) = &tok.qualifier {
        // `self::f()` / `Self::f()` mean the caller's module / impl type.
        let q_norm = q.replace('-', "_");
        let filtered: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                let d = &defs[i];
                let crate_norm = format!("pj2k_{}", d.krate.replace('-', "_"));
                d.impl_type.as_deref() == Some(q.as_str())
                    || d.module == *q
                    || d.module.ends_with(&format!("/{q}"))
                    || crate_norm == q_norm
                    || (q == "self" && d.module == caller.module && d.krate == caller.krate)
                    || (q == "Self" && d.impl_type == caller.impl_type)
            })
            .collect();
        if !filtered.is_empty() {
            return filtered;
        }
        return cands.clone();
    }
    if tok.method {
        let methods: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| defs[i].impl_type.is_some())
            .collect();
        if !methods.is_empty() {
            return methods;
        }
        return cands.clone();
    }
    // Bare call: same module first, then same crate, then anything.
    let same_module: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| defs[i].krate == caller.krate && defs[i].module == caller.module)
        .collect();
    if !same_module.is_empty() {
        return same_module;
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| defs[i].krate == caller.krate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.clone()
}

/// Find `needle` in `code` at a word boundary (for identifier-initial
/// needles). Mirrors `audit-panics`' matcher.
fn find_needle(code: &str, needle: &str) -> bool {
    let needs_boundary = needle
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut start = 0;
    while let Some(rel) = code[start..].find(needle) {
        let pos = start + rel;
        let before_ok = !needs_boundary
            || pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok {
            return true;
        }
        start = pos + needle.len();
    }
    false
}

/// How far above a site or signature the contiguous-block lookback
/// searches for its justification (matches `audit-panics`).
const LOOKBACK: usize = 24;

/// True when an `AUDIT(hot)` comment covers line `idx`: on the line or in
/// the contiguous comment/attribute/blank block directly above.
fn hot_justified(lines: &[Line], idx: usize) -> bool {
    if lines[idx].comment.contains("AUDIT(hot)") {
        return true;
    }
    let mut i = idx;
    let mut looked = 0;
    while i > 0 && looked < LOOKBACK {
        i -= 1;
        looked += 1;
        let l = &lines[i];
        if l.comment.contains("AUDIT(hot)") {
            return true;
        }
        let code = l.code.trim();
        let pass_through = code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#![")
            || code.ends_with('=')
            || code.ends_with('(')
            || code.ends_with(',');
        if !pass_through {
            return false;
        }
    }
    false
}

/// True when any plain `AUDIT` comment covers line `idx` (same lookback).
/// Panic sites use this: their reachability contract belongs to
/// `audit-panics`, whose annotations we honor rather than duplicate.
fn any_audit_justified(lines: &[Line], idx: usize) -> bool {
    if lines[idx].comment.contains("AUDIT") {
        return true;
    }
    let mut i = idx;
    let mut looked = 0;
    while i > 0 && looked < LOOKBACK {
        i -= 1;
        looked += 1;
        let l = &lines[i];
        if l.comment.contains("AUDIT") {
            return true;
        }
        let code = l.code.trim();
        let pass_through = code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#![")
            || code.ends_with('=')
            || code.ends_with('(')
            || code.ends_with(',');
        if !pass_through {
            return false;
        }
    }
    false
}

/// Per-line coverage by `AUDIT(fn)` / `AUDIT(block)` regions, for panic
/// sites (same mechanics as `audit-panics`).
fn audit_block_coverage(lines: &[Line]) -> Vec<bool> {
    let mut covered = vec![false; lines.len()];
    for idx in 0..lines.len() {
        let c = &lines[idx].comment;
        if !(c.contains("AUDIT(fn)") || c.contains("AUDIT(block)")) {
            continue;
        }
        let open = lines
            .iter()
            .enumerate()
            .take(lines.len().min(idx + LOOKBACK))
            .skip(idx)
            .find(|(_, l)| l.code.contains('{'))
            .map(|(j, _)| j);
        let Some(open) = open else { continue };
        let col = lines[open].code.find('{').unwrap_or(0);
        let end = match_braces(lines, open, col);
        for slot in covered.iter_mut().take(end + 1).skip(idx) {
            *slot = true;
        }
    }
    covered
}

/// Scan one hot function's body for discipline sites and record them.
fn scan_fn_sites(lines: &[Line], def: &FnDef, report: &mut HotpathReport) {
    // An AUDIT(hot) comment in the block above the signature covers the
    // whole body.
    let fn_covered = hot_justified(lines, def.sig_idx)
        && !lines[def.sig_idx].code.trim_start().starts_with("//");
    let block_cov = audit_block_coverage(lines);
    let label = fn_label(def);
    for idx in def.body.0..=def.body.1.min(lines.len().saturating_sub(1)) {
        let line = &lines[idx];
        let mut found: Vec<(HotKind, &str)> = Vec::new();
        for (kind, needles) in [
            (HotKind::Alloc, ALLOC_NEEDLES),
            (HotKind::Lock, LOCK_NEEDLES),
            (HotKind::Io, IO_NEEDLES),
            (HotKind::Panic, PANIC_NEEDLES),
        ] {
            for needle in needles {
                if find_needle(&line.code, needle) {
                    found.push((kind, needle));
                }
            }
        }
        if found.is_empty() {
            continue;
        }
        let in_test = def.in_test || line.in_test_item;
        for (kind, what) in found {
            let justified = fn_covered
                || hot_justified(lines, idx)
                || (kind == HotKind::Panic
                    && (any_audit_justified(lines, idx)
                        || block_cov.get(idx).copied().unwrap_or(false)));
            report.sites.push(HotSite {
                path: def.path.clone(),
                line: line.number,
                kind,
                what: what.to_string(),
                in_fn: label.clone(),
                in_test,
                justified,
            });
            if !in_test && !justified {
                report.violations.push(HotViolation {
                    path: def.path.clone(),
                    line: line.number,
                    message: format!(
                        "hot-path {kind} site `{what}` in `{label}` without an \
                         `// AUDIT(hot):` justification (setup-time, amortized, or cold?)"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(files: &[(&str, &str)]) -> Vec<(PathBuf, String)> {
        files
            .iter()
            .map(|(p, s)| (PathBuf::from(p), (*s).to_string()))
            .collect()
    }

    fn root(krate: &str, module: &str) -> RootSpec {
        RootSpec {
            krate: krate.to_string(),
            module: module.to_string(),
            function: None,
            note: String::new(),
        }
    }

    /// Dep map for fixtures: ebcot → mq, everything else a leaf.
    fn fixture_deps() -> DepMap {
        let mut deps = DepMap::new();
        deps.insert("ebcot".to_string(), ["mq".to_string()].into());
        deps
    }

    fn run(files: &[(PathBuf, String)], roots: &[RootSpec]) -> HotpathReport {
        audit_sources(files, roots, &fixture_deps())
    }

    #[test]
    fn parse_roots_reads_tables() {
        let text = "# comment\n[[root]]\ncrate = \"pj2k-ebcot\"\nmodule = \"bitplane\"\n\
                    note = \"passes\"\n\n[[root]]\ncrate = \"pj2k-mq\"\nmodule = \"lib\"\n\
                    function = \"encode\"\nnote = \"mq\"\n";
        let roots = parse_roots(text).unwrap();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].krate, "pj2k-ebcot");
        assert_eq!(roots[0].module, "bitplane");
        assert_eq!(roots[1].function.as_deref(), Some("encode"));
    }

    #[test]
    fn parse_roots_rejects_malformed() {
        assert!(parse_roots("crate = \"x\"\n").is_err());
        assert!(parse_roots("[[root]]\ncrate = unquoted\n").is_err());
        assert!(parse_roots("[[root]]\nnote = \"incomplete\"\n").is_err());
        assert!(parse_roots("[[root]]\ncrate = \"c\"\nmodule = \"m\"\nbogus = \"v\"\n").is_err());
    }

    #[test]
    fn hot_loop_push_without_audit_fails() {
        // The seeded violation fixture: a root fn pushing into a Vec with
        // no justification must fail the audit.
        let files = src(&[(
            "crates/ebcot/src/hotmod.rs",
            "pub fn hot_entry(out: &mut Vec<u8>) {\n    out.push(1);\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-ebcot", "hotmod")]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].message.contains(".push("));
        assert_eq!(r.sites.len(), 1);
        assert!(!r.sites[0].justified);
    }

    #[test]
    fn justified_site_passes() {
        let files = src(&[(
            "crates/ebcot/src/hotmod.rs",
            "pub fn hot_entry(out: &mut Vec<u8>) {\n    \
             // AUDIT(hot): amortized — capacity reserved at setup.\n    out.push(1);\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-ebcot", "hotmod")]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.sites.len(), 1);
        assert!(r.sites[0].justified);
    }

    #[test]
    fn fn_level_audit_hot_covers_body() {
        let files = src(&[(
            "crates/ebcot/src/hotmod.rs",
            "// AUDIT(hot): all growth amortized; oracle holds 0/block.\n\
             pub fn hot_entry(out: &mut Vec<u8>) {\n    out.push(1);\n    out.extend_from_slice(&[2]);\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-ebcot", "hotmod")]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.sites.len(), 2);
        assert!(r.sites.iter().all(|s| s.justified));
    }

    #[test]
    fn cold_fn_outside_closure_is_not_flagged() {
        // `cold_helper` is in the same file but never called from the hot
        // root, so its allocation is not a site.
        let files = src(&[(
            "crates/ebcot/src/hotmod.rs",
            "pub fn hot_entry(x: u32) -> u32 {\n    x + 1\n}\n\
             pub fn cold_helper() -> Vec<u8> {\n    Vec::new()\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-ebcot", "hotmod")]);
        // Only hot_entry is rooted; wait — module roots pull in *every* fn
        // of the module. Root a single function instead.
        let spec = RootSpec {
            function: Some("hot_entry".to_string()),
            ..root("pj2k-ebcot", "hotmod")
        };
        let r2 = run(&files, &[spec]);
        assert!(r2.sites.is_empty(), "{:?}", r2.sites);
        assert!(r2.violations.is_empty());
        // Whole-module root does flag the helper.
        assert_eq!(r.sites.len(), 1);
    }

    #[test]
    fn transitive_callee_is_flagged_across_files() {
        let files = src(&[
            (
                "crates/ebcot/src/hotmod.rs",
                "pub fn hot_entry(out: &mut Vec<u8>) {\n    helper(out);\n}\n",
            ),
            (
                "crates/mq/src/helpers.rs",
                "pub fn helper(out: &mut Vec<u8>) {\n    out.push(9);\n}\n",
            ),
        ]);
        let spec = RootSpec {
            function: Some("hot_entry".to_string()),
            ..root("pj2k-ebcot", "hotmod")
        };
        let r = run(&files, &[spec]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].path.to_string_lossy().contains("mq"));
        assert_eq!(r.closure.len(), 2);
    }

    #[test]
    fn method_call_resolves_to_impl_fn() {
        let files = src(&[
            (
                "crates/ebcot/src/hotmod.rs",
                "pub fn hot_entry(c: &mut Coder) {\n    c.emit();\n}\n",
            ),
            (
                "crates/mq/src/coder.rs",
                "pub struct Coder;\nimpl Coder {\n    pub fn emit(&mut self) {\n        \
                 let v: Vec<u8> = Vec::new();\n        drop(v);\n    }\n}\n",
            ),
        ]);
        let spec = RootSpec {
            function: Some("hot_entry".to_string()),
            ..root("pj2k-ebcot", "hotmod")
        };
        let r = run(&files, &[spec]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].message.contains("Vec::new"));
    }

    #[test]
    fn test_code_is_exempt() {
        let files = src(&[(
            "crates/ebcot/src/hotmod.rs",
            "pub fn hot_entry(out: &mut Vec<u8>) {\n    out.push(1); // AUDIT(hot): amortized.\n}\n\
             #[cfg(test)]\nmod tests {\n    fn t() {\n        let mut v = Vec::new();\n        \
             v.push(1);\n        super::hot_entry(&mut v);\n    }\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-ebcot", "hotmod")]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn panic_site_accepts_plain_audit() {
        let files = src(&[(
            "crates/ebcot/src/hotmod.rs",
            "pub fn hot_entry(v: &[u8]) -> u8 {\n    \
             // AUDIT: length checked by caller.\n    *v.last().unwrap()\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-ebcot", "hotmod")]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.sites[0].kind, HotKind::Panic);
    }

    #[test]
    fn alloc_site_does_not_accept_plain_audit() {
        let files = src(&[(
            "crates/ebcot/src/hotmod.rs",
            "pub fn hot_entry(out: &mut Vec<u8>) {\n    \
             // AUDIT: fine really.\n    out.push(1);\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-ebcot", "hotmod")]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    }

    #[test]
    fn lock_and_io_sites_flagged() {
        let files = src(&[(
            "crates/parutil/src/hotmod.rs",
            "pub fn hot_entry() {\n    let m = Mutex::new(0u32);\n    \
             let g = m.lock();\n    println!(\"{:?}\", g);\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-parutil", "hotmod")]);
        let kinds: Vec<HotKind> = r.sites.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&HotKind::Lock), "{kinds:?}");
        assert!(kinds.contains(&HotKind::Io), "{kinds:?}");
        assert_eq!(r.violations.len(), 3, "{:?}", r.violations);
    }

    #[test]
    fn unmatched_root_is_a_violation() {
        let r = run(
            &src(&[("crates/mq/src/lib.rs", "pub fn f() {}\n")]),
            &[root("pj2k-ebcot", "nothere")],
        );
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("matches no function"));
    }

    #[test]
    fn needle_in_string_is_not_a_site() {
        let files = src(&[(
            "crates/mq/src/lib.rs",
            "pub fn f() -> &'static str {\n    \"call Vec::new or .push( here\"\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-mq", "lib")]);
        assert!(r.sites.is_empty(), "{:?}", r.sites);
    }

    #[test]
    fn debug_assert_is_not_a_panic_site() {
        let files = src(&[(
            "crates/mq/src/lib.rs",
            "pub fn f(x: u8) {\n    debug_assert!(x < 4);\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-mq", "lib")]);
        assert!(r.sites.is_empty(), "{:?}", r.sites);
    }

    #[test]
    fn qualified_call_filters_by_module() {
        // Two `helper` fns; the qualified call resolves only to the named
        // module, so the other crate's helper stays cold.
        let files = src(&[
            (
                "crates/ebcot/src/hotmod.rs",
                "pub fn hot_entry() {\n    near::helper();\n}\n",
            ),
            (
                "crates/ebcot/src/near.rs",
                "pub fn helper() {\n    let _x = 0u32;\n}\n",
            ),
            (
                "crates/mq/src/far.rs",
                "pub fn helper() {\n    let v: Vec<u8> = Vec::new();\n    drop(v);\n}\n",
            ),
        ]);
        let spec = RootSpec {
            function: Some("hot_entry".to_string()),
            ..root("pj2k-ebcot", "hotmod")
        };
        let r = run(&files, &[spec]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.closure.len(), 2, "{:?}", r.closure);
    }

    #[test]
    fn render_mentions_roots_and_counts() {
        let files = src(&[(
            "crates/ebcot/src/hotmod.rs",
            "pub fn hot_entry(out: &mut Vec<u8>) {\n    out.push(1);\n}\n",
        )]);
        let r = run(&files, &[root("pj2k-ebcot", "hotmod")]);
        let text = r.render();
        assert!(text.contains("pj2k-ebcot::hotmod: 1 root fn(s)"), "{text}");
        assert!(text.contains("NO AUDIT(hot)"), "{text}");
        assert!(text.contains("alloc 1"), "{text}");
    }
}
