//! Workspace automation for pj2k.
//!
//! * `cargo run -p xtask -- lint` — project-specific concurrency/safety
//!   lint over every crate (see [`lint`] for the rules) plus a full
//!   `unsafe` inventory report. Exits non-zero on any violation.
//! * `cargo run -p xtask -- audit-panics` — static panic-path audit of the
//!   decoder-reachable scope (see [`audit`]): every panic site must carry
//!   an `// AUDIT:` justification. Exits non-zero on any unaudited site.
//! * `cargo run -p xtask -- audit-unsafe` — static concurrency-contract
//!   audit (see [`unsafe_audit`]): Send/Sync impls need SAFETY contracts,
//!   raw parallel writes must route through `DisjointClaim` or carry an
//!   `// AUDIT(alias):` justification, and `SendPtr` stays inside its
//!   allowlisted modules. Exits non-zero on any uncovered site.
//! * `cargo run -p xtask -- audit-hotpath` — static hot-path discipline
//!   audit (see [`hotpath`]): builds an approximate call graph from the
//!   roots declared in `hotpaths.toml` and requires every allocation,
//!   lock, I/O, or panic site in the transitive closure to carry an
//!   `// AUDIT(hot):` justification. Exits non-zero on any uncovered site.
//! * `cargo run -p xtask -- ci` — the full verification gate: fmt check,
//!   clippy `-D warnings`, the custom lint, all three audits, and the
//!   test suite.
//! * `cargo run -p xtask -- bench-smoke` — run every benchmark harness in
//!   smoke mode and re-validate the JSON it emits (see [`bench`]).
//!
//! The binary is intentionally dependency-free so it builds anywhere the
//! Rust toolchain exists, including offline CI runners.

mod audit;
mod bench;
mod ci;
mod hotpath;
mod lint;
mod scan;
mod unsafe_audit;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let quiet = args.iter().any(|a| a == "--quiet");
            run_lint(&root, quiet)
        }
        Some("audit-panics") => {
            let quiet = args.iter().any(|a| a == "--quiet");
            run_audit(&root, quiet)
        }
        Some("audit-unsafe") => {
            let quiet = args.iter().any(|a| a == "--quiet");
            run_unsafe_audit(&root, quiet)
        }
        Some("audit-hotpath") => {
            let quiet = args.iter().any(|a| a == "--quiet");
            let report_path = args
                .iter()
                .position(|a| a == "--report")
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from);
            run_hotpath_audit(&root, quiet, report_path.as_deref())
        }
        Some("ci") => {
            let opts = ci::CiOptions {
                skip_fmt: args.iter().any(|a| a == "--skip-fmt"),
                skip_clippy: args.iter().any(|a| a == "--skip-clippy"),
                skip_tests: args.iter().any(|a| a == "--skip-tests"),
            };
            ExitCode::from(ci::run(&root, &opts) as u8)
        }
        Some("bench-smoke") => ExitCode::from(bench::run(&root) as u8),
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn run_lint(root: &Path, quiet: bool) -> ExitCode {
    match lint::lint_workspace(root) {
        Ok(report) => {
            if !quiet {
                print!("{}", report.render_inventory());
            } else {
                println!(
                    "unsafe inventory: {} sites across {} files",
                    report.unsafe_sites.len(),
                    report.files_scanned
                );
            }
            if report.violations.is_empty() {
                println!("lint: clean ({} files scanned)", report.files_scanned);
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!("lint: {} violation(s)", report.violations.len());
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("lint: io error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_audit(root: &Path, quiet: bool) -> ExitCode {
    match audit::audit_workspace(root) {
        Ok(report) => {
            if !quiet {
                print!("{}", report.render());
            } else {
                println!(
                    "panic-site inventory: {} sites across {} files",
                    report.sites.len(),
                    report.files_scanned
                );
            }
            if report.violations.is_empty() {
                println!(
                    "audit-panics: clean ({} files scanned)",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!("audit-panics: {} violation(s)", report.violations.len());
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("audit-panics: io error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_unsafe_audit(root: &Path, quiet: bool) -> ExitCode {
    match unsafe_audit::audit_unsafe_workspace(root) {
        Ok(report) => {
            if !quiet {
                print!("{}", report.render());
            } else {
                println!(
                    "concurrency-contract inventory: {} sites across {} files",
                    report.sites.len(),
                    report.files_scanned
                );
            }
            if report.violations.is_empty() {
                println!(
                    "audit-unsafe: clean ({} files scanned)",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!("audit-unsafe: {} violation(s)", report.violations.len());
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("audit-unsafe: io error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_hotpath_audit(root: &Path, quiet: bool, report_path: Option<&Path>) -> ExitCode {
    match hotpath::audit_hotpath_workspace(root) {
        Ok(report) => {
            let rendered = report.render();
            if !quiet {
                print!("{rendered}");
            } else {
                println!(
                    "hot-path inventory: {} sites across {} hot fns",
                    report.sites.len(),
                    report.closure.len()
                );
            }
            if let Some(path) = report_path {
                if let Err(err) = std::fs::write(path, &rendered) {
                    eprintln!("audit-hotpath: cannot write {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("audit-hotpath: report written to {}", path.display());
            }
            if report.violations.is_empty() {
                println!(
                    "audit-hotpath: clean ({} hot fns from {} roots)",
                    report.closure.len(),
                    report.roots.len()
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!("audit-hotpath: {} violation(s)", report.violations.len());
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("audit-hotpath: io error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Locate the workspace root: walk up from the current directory to the
/// first directory containing a `crates/` subdirectory and a `Cargo.toml`.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn print_help() {
    println!(
        "xtask — pj2k workspace automation\n\
         \n\
         USAGE:\n\
         \tcargo run -p xtask -- <command> [flags]\n\
         \n\
         COMMANDS:\n\
         \tlint\trun the project lint rules + unsafe inventory\n\
         \t\t--quiet\tsummarize the inventory instead of listing sites\n\
         \taudit-panics\tstatic panic-path audit of the decode pipeline\n\
         \t\t--quiet\tsummarize the inventory instead of listing sites\n\
         \taudit-unsafe\tconcurrency-contract audit (Send/Sync, SendPtr, claims)\n\
         \t\t--quiet\tsummarize the inventory instead of listing sites\n\
         \taudit-hotpath\thot-path discipline audit (hotpaths.toml call-graph closure)\n\
         \t\t--quiet\tsummarize the inventory instead of listing sites\n\
         \t\t--report <path>\talso write the inventory report to a file\n\
         \tci\tfmt-check + clippy -D warnings + lint + audits + tests\n\
         \t\t--skip-fmt | --skip-clippy | --skip-tests\n\
         \tbench-smoke\trun every bench harness in smoke mode, validate JSON\n\
         \thelp\tthis message\n\
         \n\
         LINT RULES (suppress with `// lint:allow(<rule>) -- <reason>`):\n\
         \tunsafe_needs_safety\tunsafe code must carry a SAFETY justification\n\
         \thot_path_panic\tno unwrap/expect/panic! in mq, ebcot, dwt, tier2\n\
         \traw_thread_spawn\tno raw thread creation outside parutil"
    );
}
