//! Line-oriented "lexer-lite" for Rust sources.
//!
//! The custom lint rules (see [`crate::lint`]) do not need a full AST: they
//! key off tokens (`unsafe`, `.unwrap()`, `thread::spawn`) and comments
//! (`// SAFETY:`, `// lint:allow(...)`). What they *do* need is to never
//! confuse a token inside a string literal or a comment with real code, and
//! to know which lines live inside `#[cfg(test)]` items. This module
//! produces, per source line, the code text (string/char literals blanked
//! out, comments removed), the comment text, and a test-region flag, by
//! running a small character-level state machine that understands line
//! comments, nested block comments, string/byte strings, raw strings, char
//! literals vs. lifetimes, and brace depth.

/// One classified source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Code text with string and char literal *contents* blanked out and
    /// comments removed. Token boundaries are preserved.
    pub code: String,
    /// Concatenated comment text of the line (line and block comments),
    /// without the comment delimiters.
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` item (test module or
    /// test function) — such lines are exempt from most rules.
    pub in_test_item: bool,
}

/// Lexer carry-over state between lines.
enum Mode {
    Code,
    /// Inside a block comment at the given nesting depth.
    BlockComment(u32),
    /// Inside a normal (possibly multi-line) string literal.
    Str,
    /// Inside a raw string literal closed by `"` followed by this many `#`.
    RawStr(u32),
}

/// Classify a whole source file into lines. Never panics on malformed
/// input: an unterminated literal simply swallows the rest of the file,
/// which for lint purposes is a safe failure mode.
pub fn classify(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for (idx, raw) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        let n = bytes.len();
        while i < n {
            match mode {
                Mode::BlockComment(depth) => {
                    if i + 1 < n && bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        if depth == 1 {
                            mode = Mode::Code;
                            comment.push(' ');
                        } else {
                            mode = Mode::BlockComment(depth - 1);
                        }
                    } else if i + 1 < n && bytes[i] == '/' && bytes[i + 1] == '*' {
                        i += 2;
                        mode = Mode::BlockComment(depth + 1);
                    } else {
                        comment.push(bytes[i]);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if bytes[i] == '\\' {
                        i += 2; // skip escaped char (may run past EOL harmlessly)
                    } else if bytes[i] == '"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if bytes[i] == '"' {
                        let closing =
                            (0..hashes as usize).all(|k| i + 1 + k < n && bytes[i + 1 + k] == '#');
                        if closing {
                            code.push('"');
                            mode = Mode::Code;
                            i += 1 + hashes as usize;
                        } else {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                }
                Mode::Code => {
                    let c = bytes[i];
                    if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
                        // Line comment (also covers /// and //!).
                        let text: String = bytes[i + 2..].iter().collect();
                        comment.push_str(text.trim_start_matches(['/', '!']));
                        i = n;
                    } else if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        mode = Mode::BlockComment(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if is_raw_string_start(&bytes, i) {
                        // r"..."  r#"..."#  br#"..."# etc.
                        let mut j = i;
                        while bytes[j] != 'r' {
                            j += 1; // skip the b prefix
                        }
                        j += 1;
                        let mut hashes = 0u32;
                        while j < n && bytes[j] == '#' {
                            hashes += 1;
                            j += 1;
                        }
                        code.push('"');
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else if c == '\'' {
                        // Char literal or lifetime.
                        if i + 2 < n && bytes[i + 1] == '\\' {
                            // Escaped char literal: skip to closing quote.
                            let mut j = i + 2;
                            while j < n && bytes[j] != '\'' {
                                j += 1;
                            }
                            code.push_str("' '");
                            i = (j + 1).min(n);
                        } else if i + 2 < n && bytes[i + 2] == '\'' {
                            code.push_str("' '");
                            i += 3;
                        } else {
                            // Lifetime — keep the tick, it separates tokens.
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        // Note: plain string literals may contain literal newlines, so both
        // Str and RawStr mode legitimately carry over to the next line.
        out.push(Line {
            number: idx + 1,
            code,
            comment,
            in_test_item: false,
        });
    }
    mark_test_items(&mut out);
    out
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // Must not be preceded by an identifier character (e.g. `for r in ..`).
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if j >= n {
            return false;
        }
    }
    if j >= n || bytes[j] != 'r' {
        return false;
    }
    j += 1;
    while j < n && bytes[j] == '#' {
        j += 1;
    }
    j < n && bytes[j] == '"'
}

/// Whether a line carries a test-gating cfg attribute: plain `#[cfg(test)]`
/// or an `all(...)` conjunction containing `test`, like the
/// `#[cfg(all(test, not(loom)))]` gate on modules whose tests must not run
/// under loom. (A conjunction containing `test` only ever *narrows* the
/// plain gate, so treating it as test code is always sound.)
fn is_test_cfg(code: &str) -> bool {
    code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test,")
}

/// Mark lines inside `#[cfg(test)]` items by tracking brace depth: after a
/// `#[cfg(test)]` attribute (or a test-containing `#[cfg(all(test, ...))]`),
/// the next `{` opens a region that ends when its brace closes.
fn mark_test_items(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    // Stack entry: depth *before* the region's opening brace.
    let mut region_entry: Option<i64> = None;
    for line in lines.iter_mut() {
        let code = line.code.clone();
        if region_entry.is_some() {
            line.in_test_item = true;
        }
        if is_test_cfg(&code) && region_entry.is_none() {
            pending_attr = true;
            line.in_test_item = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    if pending_attr && region_entry.is_none() {
                        region_entry = Some(depth);
                        pending_attr = false;
                        line.in_test_item = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(entry) = region_entry {
                        if depth <= entry {
                            region_entry = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments() {
        let lines = classify("let x = 1; // unsafe here\n");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("unsafe here"));
    }

    #[test]
    fn strips_string_contents() {
        let lines = classify("let s = \"unsafe panic! thread::spawn\";\n");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].code.contains("let s ="));
    }

    #[test]
    fn handles_multiline_block_comment() {
        let src = "a\n/* unsafe\n still comment\n*/ let b = 2;\n";
        let lines = classify(src);
        assert_eq!(lines[0].code.trim(), "a");
        assert!(lines[1].code.is_empty());
        assert!(lines[1].comment.contains("unsafe"));
        assert!(lines[2].code.is_empty());
        assert!(lines[3].code.contains("let b = 2;"));
    }

    #[test]
    fn handles_nested_block_comment() {
        let src = "/* outer /* inner */ still */ code();\n";
        let lines = classify(src);
        assert!(lines[0].code.contains("code();"));
        assert!(!lines[0].code.contains("outer"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"unsafe \" quote\"# ; done();\n";
        let lines = classify(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("done();"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "fn f<'a>(x: &'a u8) { let c = '{'; let d = '\\''; }\n";
        let lines = classify(src);
        // The brace inside the char literal must not appear in code.
        let braces = lines[0].code.matches('{').count();
        assert_eq!(braces, 1, "code: {}", lines[0].code);
    }

    #[test]
    fn multiline_string_swallows_tokens() {
        let src = "let s = \"line one\nunsafe panic!\nend\"; after();\n";
        let lines = classify(src);
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[2].code.contains("after();"));
    }

    #[test]
    fn cfg_test_module_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = classify(src);
        assert!(!lines[0].in_test_item);
        assert!(lines[1].in_test_item);
        assert!(lines[2].in_test_item);
        assert!(lines[3].in_test_item);
        assert!(lines[4].in_test_item);
        assert!(!lines[5].in_test_item);
    }

    #[test]
    fn cfg_all_test_module_marked() {
        // Modules gated `#[cfg(all(test, not(loom)))]` (so their tests do
        // not run under the loom model checker) are still test code.
        let src = "fn real() {}\n#[cfg(all(test, not(loom)))]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = classify(src);
        assert!(!lines[0].in_test_item);
        assert!(lines[1].in_test_item);
        assert!(lines[3].in_test_item);
        assert!(!lines[5].in_test_item);
    }

    #[test]
    fn cfg_test_fn_marked() {
        let src = "#[cfg(test)]\nfn helper() {\n    body();\n}\nfn real() {}\n";
        let lines = classify(src);
        assert!(lines[2].in_test_item);
        assert!(!lines[4].in_test_item);
    }
}
