//! `xtask ci` — the one-command verification gate.
//!
//! Runs, in order: `cargo fmt --check`, `cargo clippy -D warnings`, the
//! project lint pass (in-process), the panic-path audit (in-process), the
//! concurrency-contract audit (in-process), the hot-path discipline audit
//! (in-process), and `cargo test`. All steps
//! run even if an earlier one fails, so a single
//! invocation reports every problem; the exit status is non-zero if any
//! step failed.

use std::path::Path;
use std::process::Command;

/// Options for [`run`], parsed from `xtask ci` flags.
#[derive(Debug, Default)]
pub struct CiOptions {
    /// Skip `cargo fmt --check` (e.g. when rustfmt is unavailable).
    pub skip_fmt: bool,
    /// Skip `cargo clippy` (e.g. when clippy is unavailable).
    pub skip_clippy: bool,
    /// Skip `cargo test` (lint-only gate).
    pub skip_tests: bool,
}

struct StepResult {
    name: &'static str,
    outcome: Outcome,
}

#[derive(PartialEq)]
enum Outcome {
    Pass,
    Fail,
    Skipped,
}

/// Run the gate rooted at `root`. Returns the process exit code.
pub fn run(root: &Path, opts: &CiOptions) -> i32 {
    let fmt = step_cmd(
        "fmt",
        opts.skip_fmt,
        Command::new("cargo")
            .args(["fmt", "--all", "--check"])
            .current_dir(root),
    );
    let clippy = step_cmd(
        "clippy",
        opts.skip_clippy,
        Command::new("cargo")
            .args([
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ])
            .current_dir(root),
    );
    let lint = step_lint(root);
    let audit = step_audit(root);
    let unsafe_audit = step_unsafe_audit(root);
    let hotpath = step_hotpath(root);
    let test = step_cmd(
        "test",
        opts.skip_tests,
        Command::new("cargo")
            .args(["test", "--workspace", "-q"])
            .current_dir(root),
    );
    let results = [fmt, clippy, lint, audit, unsafe_audit, hotpath, test];

    println!("\n== ci summary ==");
    let mut failed = false;
    for r in &results {
        let mark = match r.outcome {
            Outcome::Pass => "ok  ",
            Outcome::Fail => "FAIL",
            Outcome::Skipped => "skip",
        };
        println!("  [{mark}] {}", r.name);
        failed |= r.outcome == Outcome::Fail;
    }
    i32::from(failed)
}

fn step_cmd(name: &'static str, skip: bool, cmd: &mut Command) -> StepResult {
    if skip {
        return StepResult {
            name,
            outcome: Outcome::Skipped,
        };
    }
    println!("== ci: {name} ==");
    let outcome = match cmd.status() {
        Ok(status) if status.success() => Outcome::Pass,
        Ok(status) => {
            eprintln!("ci: {name} exited with {status}");
            Outcome::Fail
        }
        Err(err) => {
            eprintln!("ci: failed to launch {name}: {err}");
            Outcome::Fail
        }
    };
    StepResult { name, outcome }
}

fn step_lint(root: &Path) -> StepResult {
    println!("== ci: lint ==");
    let outcome = match crate::lint::lint_workspace(root) {
        Ok(report) => {
            print!("{}", report.render_inventory());
            if report.violations.is_empty() {
                println!("lint: clean ({} files)", report.files_scanned);
                Outcome::Pass
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!("lint: {} violation(s)", report.violations.len());
                Outcome::Fail
            }
        }
        Err(err) => {
            eprintln!("lint: io error: {err}");
            Outcome::Fail
        }
    };
    StepResult {
        name: "lint",
        outcome,
    }
}

fn step_audit(root: &Path) -> StepResult {
    println!("== ci: audit-panics ==");
    let outcome = match crate::audit::audit_workspace(root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.violations.is_empty() {
                println!("audit-panics: clean ({} files)", report.files_scanned);
                Outcome::Pass
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!("audit-panics: {} violation(s)", report.violations.len());
                Outcome::Fail
            }
        }
        Err(err) => {
            eprintln!("audit-panics: io error: {err}");
            Outcome::Fail
        }
    };
    StepResult {
        name: "audit-panics",
        outcome,
    }
}

fn step_unsafe_audit(root: &Path) -> StepResult {
    println!("== ci: audit-unsafe ==");
    let outcome = match crate::unsafe_audit::audit_unsafe_workspace(root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.violations.is_empty() {
                println!("audit-unsafe: clean ({} files)", report.files_scanned);
                Outcome::Pass
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!("audit-unsafe: {} violation(s)", report.violations.len());
                Outcome::Fail
            }
        }
        Err(err) => {
            eprintln!("audit-unsafe: io error: {err}");
            Outcome::Fail
        }
    };
    StepResult {
        name: "audit-unsafe",
        outcome,
    }
}

fn step_hotpath(root: &Path) -> StepResult {
    println!("== ci: audit-hotpath ==");
    let outcome = match crate::hotpath::audit_hotpath_workspace(root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.violations.is_empty() {
                println!(
                    "audit-hotpath: clean ({} hot fns from {} roots)",
                    report.closure.len(),
                    report.roots.len()
                );
                Outcome::Pass
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!("audit-hotpath: {} violation(s)", report.violations.len());
                Outcome::Fail
            }
        }
        Err(err) => {
            eprintln!("audit-hotpath: io error: {err}");
            Outcome::Fail
        }
    };
    StepResult {
        name: "audit-hotpath",
        outcome,
    }
}
