//! `xtask bench-smoke` — run every benchmark harness in smoke mode and
//! re-validate the JSON it emits.
//!
//! The bench binaries already self-validate before exiting, so a green run
//! means "the harness builds, the workload completes, and the document
//! matches the schema". This command exists so local runs and CI share the
//! exact invocation and the exact follow-up checks, and so adding a new
//! harness is a one-line [`BENCHES`] edit rather than a YAML diff.
//!
//! Validation is intentionally dependency-free (substring keys plus
//! balanced-delimiter counts) — same posture as the binaries themselves.

use std::path::Path;
use std::process::Command;

/// One benchmark harness: the binary name, where its smoke output lands
/// (relative to the workspace root), and the keys the JSON must contain.
struct BenchSpec {
    bin: &'static str,
    out: &'static str,
    schema: &'static str,
    keys: &'static [&'static str],
    /// Numeric regression floors: the first number following each key in
    /// the document must be strictly greater than the given value.
    floors: &'static [(&'static str, f64)],
    /// Numeric ceilings: the first number following each key must be less
    /// than or equal to the given value (inclusive, so exact-zero
    /// contracts are expressible as a 0.0 ceiling).
    ceilings: &'static [(&'static str, f64)],
}

const BENCHES: &[BenchSpec] = &[
    BenchSpec {
        bin: "bench_tier1",
        out: "target/BENCH_tier1_smoke.json",
        schema: "pj2k.bench_tier1.v3",
        keys: &[
            "\"microbench\"",
            "\"steady_state\"",
            "\"steady_allocs_per_block\"",
            "\"encoder\"",
            "\"dynamic_over_staggered\"",
            "\"engines\"",
            "\"bitplane_speedup\"",
            "\"per_pass\"",
            "\"sig_prop\"",
            "\"mag_ref\"",
            "\"cleanup\"",
            "\"decisions\"",
            "\"components\"",
            "\"entropy_secs_est\"",
            "\"context_formation_secs_est\"",
        ],
        // The default bitplane engine must beat the reference engine in
        // the same run; the binary exits non-zero on <= 1.0, and this
        // floor re-checks the emitted document with headroom for a real
        // regression: full runs land ≈2.0-2.2x, smoke runs similar, so
        // dipping under 1.2 means the engine lost most of its advantage,
        // not that the runner was noisy.
        floors: &[("\"bitplane_speedup\"", 1.2)],
        // The warm Tier-1 arena must allocate exactly zero times per
        // block — the runtime half of the audit-hotpath contract.
        ceilings: &[("\"steady_allocs_per_block\"", 0.0)],
    },
    BenchSpec {
        bin: "bench_dwt",
        out: "target/BENCH_dwt_smoke.json",
        schema: "pj2k.bench_dwt.v2",
        keys: &[
            "\"kernels\"",
            "\"steady_state\"",
            "\"allocs_marginal_per_strip\"",
            "\"fused_strip_speedup_97\"",
            "\"fused_naive_speedup_97\"",
            "\"fused_strip_speedup_53\"",
            "\"simd_tiers\"",
            "\"simd_best_tier\"",
            "\"simd_strip_speedup_97\"",
            "\"simd_strip_speedup_53\"",
            "\"simd_bit_identity\"",
            "\"encoder\"",
            "\"barriered_secs\"",
            "\"pipelined_secs\"",
            "\"modeled_pipelined_speedup\"",
        ],
        floors: &[],
        // Extra DWT strips must not cost extra allocations.
        ceilings: &[("\"allocs_marginal_per_strip\"", 0.0)],
    },
    BenchSpec {
        bin: "bench_decode",
        out: "target/BENCH_decode_smoke.json",
        schema: "pj2k.bench_decode.v1",
        keys: &[
            "\"bit_identity\"",
            "\"steady_state\"",
            "\"steady_allocs_per_block\"",
            "\"workloads\"",
            "\"pyramid\"",
            "\"skewed\"",
            "\"measured\"",
            "\"barriered_mpix_per_sec\"",
            "\"pipelined_mpix_per_sec\"",
            "\"modeled\"",
            "\"barriered_speedup\"",
            "\"pipelined_speedup\"",
            "\"skewed_p4_pipelined_speedup\"",
        ],
        // On the skewed workload at 4 CPUs the cost-weighted pipeline must
        // beat the static barriered decoder (modeled from measured stage
        // totals, so the claim holds on single-core runners too; the
        // binary itself enforces 1.25 in full runs).
        floors: &[("\"skewed_p4_pipelined_speedup\"", 1.0)],
        // The warm Tier-1 decode scratch must allocate exactly zero times
        // per block — the decode half of the audit-hotpath contract.
        ceilings: &[("\"steady_allocs_per_block\"", 0.0)],
    },
    BenchSpec {
        bin: "bench_serve",
        out: "target/BENCH_serve_smoke.json",
        schema: "pj2k.bench_serve.v1",
        keys: &[
            "\"bit_identity\"",
            "\"workload\"",
            "\"classes\"",
            "\"measured\"",
            "\"images_per_sec\"",
            "\"p50_latency_secs\"",
            "\"p99_latency_secs\"",
            "\"batch_over_serial\"",
            "\"modeled\"",
            "\"batch_speedup\"",
            "\"memory\"",
            "\"peak_2x_bytes\"",
            "\"flatness_ratio\"",
            "\"measured_p4_batch_over_serial\"",
            "\"mixed_p4_batch_speedup\"",
        ],
        // At a budget of 4 the batch scheduler must beat serial whole-pool
        // encoding in the deterministic model (measured cost splits, so it
        // holds on single-core runners; the binary itself enforces 1.1).
        floors: &[("\"mixed_p4_batch_speedup\"", 1.0)],
        // Doubling offered load must not grow peak heap by more than 25% —
        // the flat-memory half of the bounded-admission contract (the
        // binary additionally checks the absolute admission ceiling).
        ceilings: &[("\"flatness_ratio\"", 1.25)],
    },
];

/// Run all smoke benches rooted at `root`. Returns the process exit code.
pub fn run(root: &Path) -> i32 {
    let mut failed = false;
    for spec in BENCHES {
        println!("== bench-smoke: {} ==", spec.bin);
        let out = root.join(spec.out);
        let status = Command::new("cargo")
            .args(["run", "--release", "-q", "-p", "pj2k-bench", "--bin"])
            .arg(spec.bin)
            .arg("--")
            .arg("--smoke")
            .arg("--out")
            .arg(&out)
            .current_dir(root)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("bench-smoke: {} exited with {s}", spec.bin);
                failed = true;
                continue;
            }
            Err(err) => {
                eprintln!("bench-smoke: failed to launch {}: {err}", spec.bin);
                failed = true;
                continue;
            }
        }
        match std::fs::read_to_string(&out) {
            Ok(doc) => match check_doc(&doc, spec) {
                Ok(()) => println!(
                    "bench-smoke: {} ok ({} bytes, schema {})",
                    spec.bin,
                    doc.len(),
                    spec.schema
                ),
                Err(msg) => {
                    eprintln!("bench-smoke: {} emitted bad JSON: {msg}", spec.bin);
                    failed = true;
                }
            },
            Err(err) => {
                eprintln!("bench-smoke: cannot read {}: {err}", out.display());
                failed = true;
            }
        }
    }
    i32::from(failed)
}

/// Check one emitted document against its spec.
fn check_doc(doc: &str, spec: &BenchSpec) -> Result<(), String> {
    if !doc.contains(spec.schema) {
        return Err(format!("missing schema marker `{}`", spec.schema));
    }
    for key in spec.keys {
        if !doc.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    if doc.matches('{').count() != doc.matches('}').count()
        || doc.matches('[').count() != doc.matches(']').count()
    {
        return Err("unbalanced JSON delimiters".to_string());
    }
    for (key, floor) in spec.floors {
        match extract_number(doc, key) {
            Some(v) if v > *floor => {}
            Some(v) => return Err(format!("{key} = {v} is not above the floor {floor}")),
            None => return Err(format!("no numeric value found for {key}")),
        }
    }
    for (key, ceiling) in spec.ceilings {
        match extract_number(doc, key) {
            Some(v) if v <= *ceiling => {}
            Some(v) => return Err(format!("{key} = {v} exceeds the ceiling {ceiling}")),
            None => return Err(format!("no numeric value found for {key}")),
        }
    }
    Ok(())
}

/// First number following `"key":` in the document (dependency-free JSON
/// peeking, good enough for the flat documents the harnesses emit).
fn extract_number(doc: &str, key: &str) -> Option<f64> {
    let at = doc.find(key)?;
    let rest = doc.get(at + key.len()..)?;
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest.get(..end)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A document with every required key; keys named in `ceilings` get 0
    /// (the steady-state contracts are exact-zero), everything else 1.
    fn doc_with_all_keys(spec: &BenchSpec) -> String {
        let mut doc = format!("{{\"schema\": \"{}\"", spec.schema);
        for key in spec.keys {
            let ceiled = spec.ceilings.iter().any(|(k, _)| k == key);
            doc.push_str(&format!(", {key}: {}", if ceiled { 0 } else { 1 }));
        }
        doc.push('}');
        doc
    }

    #[test]
    fn check_doc_accepts_minimal_valid_doc() {
        let spec = &BENCHES[1];
        assert!(check_doc(&doc_with_all_keys(spec), spec).is_ok());
    }

    #[test]
    fn floors_enforce_numeric_minimums() {
        let spec = &BENCHES[0];
        assert_eq!(spec.floors, &[("\"bitplane_speedup\"", 1.2)]);
        // keys list contains bitplane_speedup: 1 — under the floor, which
        // must be rejected (strictly-greater comparison).
        let at_floor = doc_with_all_keys(spec);
        assert!(check_doc(&at_floor, spec).is_err());
        let above = at_floor.replace("\"bitplane_speedup\": 1", "\"bitplane_speedup\": 2.75");
        assert!(check_doc(&above, spec).is_ok());
        assert_eq!(extract_number("{\"x\": -3.5e2,", "\"x\""), Some(-350.0));
        assert_eq!(extract_number("{\"x\": []}", "\"x\""), None);
    }

    #[test]
    fn ceilings_enforce_exact_zero_contracts() {
        let spec = &BENCHES[0];
        assert_eq!(spec.ceilings, &[("\"steady_allocs_per_block\"", 0.0)]);
        let good =
            doc_with_all_keys(spec).replace("\"bitplane_speedup\": 1", "\"bitplane_speedup\": 2.0");
        assert!(check_doc(&good, spec).is_ok());
        // Any steady-state allocation breaks the ceiling (inclusive
        // comparison: 0 passes, 0.5 does not).
        let leaky = good.replace(
            "\"steady_allocs_per_block\": 0",
            "\"steady_allocs_per_block\": 0.5",
        );
        assert!(check_doc(&leaky, spec).is_err());
        let dwt = &BENCHES[1];
        assert_eq!(dwt.ceilings, &[("\"allocs_marginal_per_strip\"", 0.0)]);
    }

    #[test]
    fn decode_spec_enforces_speedup_floor_and_alloc_ceiling() {
        let spec = &BENCHES[2];
        assert_eq!(spec.bin, "bench_decode");
        assert_eq!(spec.floors, &[("\"skewed_p4_pipelined_speedup\"", 1.0)]);
        assert_eq!(spec.ceilings, &[("\"steady_allocs_per_block\"", 0.0)]);
        // The floor is strict: a pipeline exactly matching the barriered
        // decoder (1.0) is a regression of the overlap win.
        let at_floor = doc_with_all_keys(spec);
        assert!(check_doc(&at_floor, spec).is_err());
        let above = at_floor.replace(
            "\"skewed_p4_pipelined_speedup\": 1",
            "\"skewed_p4_pipelined_speedup\": 1.7",
        );
        assert!(check_doc(&above, spec).is_ok());
    }

    #[test]
    fn serve_spec_enforces_speedup_floor_and_flat_memory_ceiling() {
        let spec = &BENCHES[3];
        assert_eq!(spec.bin, "bench_serve");
        assert_eq!(spec.floors, &[("\"mixed_p4_batch_speedup\"", 1.0)]);
        assert_eq!(spec.ceilings, &[("\"flatness_ratio\"", 1.25)]);
        // The floor is strict: a batch exactly matching serial whole-pool
        // throughput (1.0) is a regression of the j/k split win.
        let at_floor = doc_with_all_keys(spec);
        assert!(check_doc(&at_floor, spec).is_err());
        let above = at_floor.replace(
            "\"mixed_p4_batch_speedup\": 1",
            "\"mixed_p4_batch_speedup\": 1.4",
        );
        assert!(check_doc(&above, spec).is_ok());
        // A 2x-oversubscribed peak 30% above the 1x run blows the
        // flat-memory ceiling.
        let bloated = above.replace("\"flatness_ratio\": 0", "\"flatness_ratio\": 1.3");
        assert!(check_doc(&bloated, spec).is_err());
    }

    #[test]
    fn check_doc_rejects_missing_key_and_imbalance() {
        let spec = &BENCHES[1];
        assert!(check_doc("{\"schema\": \"pj2k.bench_dwt.v2\"}", spec).is_err());
        let mut doc = String::from("{\"schema\": \"pj2k.bench_dwt.v2\"");
        for key in spec.keys {
            doc.push_str(&format!(", {key}: ["));
        }
        assert!(check_doc(&doc, spec).is_err());
    }
}
