//! Property tests for the SMP execution model.

use pj2k_smpsim::{amdahl_speedup, bus_makespan, makespan, BusParams, Schedule, WorkItem};
use proptest::prelude::*;

fn schedules() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::StaticBlock),
        Just(Schedule::RoundRobin),
        Just(Schedule::StaggeredRoundRobin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Makespan bounds: total/p <= makespan <= total, and the single-CPU
    /// makespan is exactly the total.
    #[test]
    fn makespan_bounds(
        costs in proptest::collection::vec(0.0f64..10.0, 1..200),
        p in 1usize..17,
        s in schedules(),
    ) {
        let total: f64 = costs.iter().sum();
        let m = makespan(&costs, p, s);
        prop_assert!(m <= total + 1e-9);
        prop_assert!(m >= total / p as f64 - 1e-9);
        prop_assert!(m >= costs.iter().cloned().fold(0.0, f64::max) - 1e-9,
            "makespan below the largest item");
        let m1 = makespan(&costs, 1, s);
        prop_assert!((m1 - total).abs() < 1e-9);
    }

    /// Parallel execution never exceeds serial execution (note: makespans
    /// of *fixed* assignments are not strictly monotone in the CPU count —
    /// adding a CPU reshuffles round-robin lanes and can lengthen the
    /// worst one — so only the serial bound is a law).
    #[test]
    fn never_worse_than_serial(costs in proptest::collection::vec(0.0f64..5.0, 1..100), s in schedules()) {
        let serial = makespan(&costs, 1, s);
        for p in 2..=16 {
            let m = makespan(&costs, p, s);
            prop_assert!(m <= serial + 1e-9, "p={}: {} > serial {}", p, m, serial);
        }
    }

    /// Bus model: the single-CPU time is contention-free; multi-CPU time is
    /// bounded below by both the critical path and the bus floor.
    #[test]
    fn bus_model_bounds(
        items_raw in proptest::collection::vec((0.0f64..5.0, 0.0f64..5.0), 1..100),
        p in 2usize..17,
        overlap in 1.0f64..8.0,
    ) {
        let items: Vec<WorkItem> = items_raw
            .iter()
            .map(|&(compute, stall)| WorkItem { compute, stall })
            .collect();
        let bus = BusParams { overlap };
        let serial: f64 = items.iter().map(|i| i.compute + i.stall).sum();
        let t1 = bus_makespan(&items, 1, Schedule::StaticBlock, bus);
        prop_assert!((t1 - serial).abs() < 1e-9);
        let tp = bus_makespan(&items, p, Schedule::StaticBlock, bus);
        let stall_total: f64 = items.iter().map(|i| i.stall).sum();
        prop_assert!(tp + 1e-9 >= stall_total / overlap, "below bus floor");
        prop_assert!(tp <= t1 + 1e-9, "parallel worse than serial");
    }

    /// Amdahl: bounded by n and by total/serial, exact at the extremes.
    #[test]
    fn amdahl_bounds(s in 0.0f64..100.0, par in 0.0f64..100.0, n in 1usize..64) {
        let sp = amdahl_speedup(s, par, n);
        prop_assert!(sp >= 1.0 - 1e-12);
        prop_assert!(sp <= n as f64 + 1e-9);
        if s > 0.0 {
            prop_assert!(sp <= (s + par) / s + 1e-9);
        }
    }
}
