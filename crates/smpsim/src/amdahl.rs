//! Amdahl's law (paper §3.4).
//!
//! The paper writes the bound as `S = (s + p) / (s + p/n)` where `s` is the
//! runtime of the inherently sequential code, `p` of the parallelizable
//! code, and `n` the CPU count, and derives theoretical 4-CPU speedups of
//! ~2.1 (JJ2000) and ~2.4 (filtering-optimized Jasper) against measured
//! 1.75/1.85.

/// Amdahl speedup bound for sequential time `s`, parallel time `p`, and
/// `n` CPUs (any consistent time unit).
///
/// # Panics
/// Panics for `n == 0` or negative times.
pub fn amdahl_speedup(s: f64, p: f64, n: usize) -> f64 {
    assert!(n > 0, "need at least one CPU");
    assert!(s >= 0.0 && p >= 0.0, "times must be non-negative");
    let total = s + p;
    if total == 0.0 {
        return 1.0;
    }
    total / (s + p / n as f64)
}

/// Sequential fraction `s / (s + p)` from stage timings: `serial` = the sum
/// of inherently sequential stage times, `parallel` = the sum of
/// parallelizable stage times.
pub fn serial_fraction(serial: f64, parallel: f64) -> f64 {
    let total = serial + parallel;
    if total == 0.0 {
        0.0
    } else {
        serial / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits() {
        // No sequential part: perfect scaling.
        assert!((amdahl_speedup(0.0, 10.0, 8) - 8.0).abs() < 1e-12);
        // No parallel part: no speedup.
        assert!((amdahl_speedup(10.0, 0.0, 8) - 1.0).abs() < 1e-12);
        // One CPU: no speedup.
        assert!((amdahl_speedup(3.0, 7.0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_magnitudes() {
        // ~40% sequential (paper: "intrinsically sequential stages
        // contribute already about 40%") on 4 CPUs gives ~1.8x.
        let s = amdahl_speedup(0.4, 0.6, 4);
        assert!(s > 1.7 && s < 1.9, "{s}");
        // ~25% sequential gives ~2.3x on 4 CPUs.
        let s = amdahl_speedup(0.25, 0.75, 4);
        assert!(s > 2.1 && s < 2.4, "{s}");
    }

    #[test]
    fn infinite_cpu_limit_is_inverse_serial_fraction() {
        let s = amdahl_speedup(0.25, 0.75, 1_000_000);
        assert!((s - 4.0).abs() < 0.01, "{s}");
    }

    #[test]
    fn monotone_in_cpus() {
        let mut prev = 0.0;
        for n in 1..=32 {
            let s = amdahl_speedup(1.0, 9.0, n);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn serial_fraction_basics() {
        assert_eq!(serial_fraction(0.0, 0.0), 0.0);
        assert!((serial_fraction(2.0, 8.0) - 0.2).abs() < 1e-12);
    }
}
