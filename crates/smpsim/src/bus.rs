//! Shared-bus contention model.
//!
//! The paper explains the constrained speedup of naive vertical filtering
//! as *"the congestion of the bus caused by the high number of cache
//! misses"* (§3.2). First-order model: each work item splits into pure
//! compute time and per-CPU memory-stall time (cache-miss latency). One
//! CPU's stalls are latency-bound — they do not saturate the bus — but the
//! bus can only sustain about [`BusParams::overlap`] CPUs' worth of
//! concurrent miss traffic, so
//!
//! ```text
//! T(p) = max( makespan_p(compute_i + stall_i),  Σ stall_i / overlap )
//! ```
//!
//! At `p = 1` the left term is the plain serial time; as `p` grows,
//! memory-bound work stops scaling once the aggregate stall time hits the
//! bus floor. `overlap = 1.6` reproduces the paper's naive-vertical
//! 4-CPU speedup of ~1.9 given its measured serial cache gap.

use crate::makespan::makespan;
use pj2k_parutil::Schedule;

/// One schedulable work item.
#[derive(Debug, Clone, Copy)]
pub struct WorkItem {
    /// Pure compute seconds (scales perfectly with CPUs).
    pub compute: f64,
    /// Per-CPU memory-stall seconds (cache-miss latency, unshared).
    pub stall: f64,
}

/// Bus characteristics.
#[derive(Debug, Clone, Copy)]
pub struct BusParams {
    /// How many CPUs' worth of concurrent miss traffic the shared bus
    /// sustains before it saturates (>= 1).
    pub overlap: f64,
}

impl BusParams {
    /// A Pentium II-era front-side bus: miss latency dominates a single
    /// CPU; the bus sustains roughly 1.6 CPUs' concurrent miss streams.
    pub const PENTIUM2_FSB: BusParams = BusParams { overlap: 1.6 };

    /// The SGI Power Challenge's slower, wider shared bus feeding many
    /// CPUs: a little more concurrency headroom.
    pub const SGI_POWER_CHALLENGE: BusParams = BusParams { overlap: 2.5 };
}

/// Completion time of `items` on `p` CPUs under `schedule` with a shared
/// bus.
///
/// # Panics
/// Panics if `p == 0` or `overlap < 1`.
pub fn bus_makespan(items: &[WorkItem], p: usize, schedule: Schedule, bus: BusParams) -> f64 {
    assert!(p > 0, "need at least one CPU");
    assert!(bus.overlap >= 1.0, "overlap must be at least 1");
    let per_item: Vec<f64> = items.iter().map(|it| it.compute + it.stall).collect();
    let critical_path = makespan(&per_item, p, schedule);
    if p == 1 {
        return critical_path;
    }
    let bus_floor: f64 = items.iter().map(|it| it.stall).sum::<f64>() / bus.overlap;
    critical_path.max(bus_floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUS: BusParams = BusParams { overlap: 1.6 };

    fn uniform(n: usize, compute: f64, stall: f64) -> Vec<WorkItem> {
        vec![WorkItem { compute, stall }; n]
    }

    #[test]
    fn compute_bound_scales_linearly() {
        let items = uniform(64, 1.0, 0.0);
        let t1 = bus_makespan(&items, 1, Schedule::StaticBlock, BUS);
        let t8 = bus_makespan(&items, 8, Schedule::StaticBlock, BUS);
        assert!((t1 / t8 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_saturates_at_overlap() {
        // stall:compute = 10:1 — speedup caps near (c+s)/(s/overlap).
        let items = uniform(64, 1.0e-3, 10.0e-3);
        let t1 = bus_makespan(&items, 1, Schedule::StaticBlock, BUS);
        let t4 = bus_makespan(&items, 4, Schedule::StaticBlock, BUS);
        let t16 = bus_makespan(&items, 16, Schedule::StaticBlock, BUS);
        let s4 = t1 / t4;
        let s16 = t1 / t16;
        let cap = 11.0 / (10.0 / 1.6);
        assert!((s4 - cap).abs() < 0.1, "expected ~{cap}, got {s4}");
        assert!(
            (s16 - s4).abs() < 1e-9,
            "extra CPUs cannot help: {s4} vs {s16}"
        );
    }

    #[test]
    fn paper_naive_vertical_shape() {
        // Calibration check: serial cache gap ~6.7x (paper Fig. 7:
        // 32.1 s naive vs 4.8 s improved) => naive 4-CPU speedup ~1.9.
        let compute = 4.8 / 64.0;
        let stall = (32.1 - 4.8) / 64.0;
        let items = uniform(64, compute, stall);
        let t1 = bus_makespan(&items, 1, Schedule::StaticBlock, BUS);
        let t4 = bus_makespan(&items, 4, Schedule::StaticBlock, BUS);
        let s = t1 / t4;
        assert!(s > 1.6 && s < 2.2, "paper-like naive speedup, got {s}");
    }

    #[test]
    fn low_stall_items_scale_like_the_paper_improved_filtering() {
        // Improved filtering: ~25% stall — close to linear at 4 CPUs.
        let items = uniform(256, 3.0e-3, 1.0e-3);
        let t1 = bus_makespan(&items, 1, Schedule::StaticBlock, BUS);
        let t4 = bus_makespan(&items, 4, Schedule::StaticBlock, BUS);
        let s = t1 / t4;
        assert!(s > 3.0, "expected near-linear, got {s}");
    }

    #[test]
    fn single_cpu_has_no_contention_penalty() {
        let items = uniform(10, 0.5, 0.9);
        let t1 = bus_makespan(&items, 1, Schedule::RoundRobin, BUS);
        assert!((t1 - 14.0).abs() < 1e-9);
    }

    #[test]
    fn sgi_overlap_helps_memory_bound_work() {
        let items = uniform(64, 1.0e-3, 6.0e-3);
        let intel = bus_makespan(&items, 8, Schedule::StaticBlock, BusParams::PENTIUM2_FSB);
        let sgi = bus_makespan(
            &items,
            8,
            Schedule::StaticBlock,
            BusParams::SGI_POWER_CHALLENGE,
        );
        assert!(sgi < intel, "more bus headroom must help: {sgi} vs {intel}");
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlap_below_one_panics() {
        let _ = bus_makespan(&[], 2, Schedule::StaticBlock, BusParams { overlap: 0.5 });
    }
}
