//! Deterministic SMP execution model.
//!
//! The paper reports speedups on a 4-CPU Intel SMP and a 16-CPU SGI Power
//! Challenge. This reproduction cannot assume such hardware (the reference
//! CI host has a single core), so in addition to real threaded execution
//! the harness projects parallel runtimes through this model:
//!
//! * per-work-item costs are **measured** on the host (per code-block
//!   Tier-1 times from `pj2k-core`'s `EncodeReport`, per-direction DWT
//!   times, cache miss traffic from [`pj2k_cachesim`]),
//! * [`makespan()`] computes the completion time of those items on `p`
//!   virtual CPUs under the paper's schedules (static block split,
//!   round-robin, staggered round-robin — the same [`Schedule`] type the
//!   real executors use),
//! * [`bus`] adds the shared-memory-bus contention that the paper blames
//!   for the poor scalability of naive vertical filtering ("the congestion
//!   of the bus caused by the high number of cache misses"),
//! * [`amdahl`] provides the §3.4 theoretical-speedup bounds,
//! * [`decode`] projects the decode side: barriered stage serialization
//!   versus the staged pipeline (DESIGN.md §15) whose Tier-1 jobs are
//!   *released over time* by the serial Tier-2 parse,
//! * [`batch`] projects the batch service (DESIGN.md §16): `j` concurrent
//!   images × `k` intra-image threads under one budget, and the
//!   throughput-first/latency-tie-break split tuner.
//!
//! The model's claims are *shape* claims (who wins, where scaling
//! saturates), matching how EXPERIMENTS.md compares against the paper.

pub mod amdahl;
pub mod batch;
pub mod bus;
pub mod decode;
pub mod makespan;

pub use amdahl::{amdahl_speedup, serial_fraction};
pub use batch::{
    batch_makespan, batch_speedup, choose_split, serial_whole_pool_makespan, ImageCost,
};
pub use bus::{bus_makespan, BusParams, WorkItem};
pub use decode::{
    barriered_decode_makespan, decode_speedup_curve, pipelined_decode_makespan, DecodeStageCosts,
};
pub use makespan::{makespan, speedup_curve};
pub use pj2k_parutil::Schedule;
