//! Decode-side pipeline makespan: barriered vs staged overlap.
//!
//! The encoder-side models in [`makespan`](crate::makespan) answer "how do
//! the paper's schedules split a fixed Tier-1 workload?". The decoder adds
//! a dimension the encoder does not have: the work *arrives over time*.
//! Tier-2 packet parsing is inherently serial (each packet header's
//! position depends on the previous packet's length), so a barriered
//! decoder pays `parse + tier1/p + dwt` while the staged pipeline
//! (DESIGN.md §15) starts Tier-1 block decoding the moment each
//! precinct's segment lengths are known and runs coarse inverse-DWT
//! levels on the driver while the fine-level blocks are still draining.
//!
//! [`pipelined_decode_makespan`] models that overlap as list scheduling
//! with release times — the same greedy "idle worker claims the next
//! ready job" rule the real queue drain implements — and exposes only the
//! DWT share that genuinely cannot be hidden (the finest level, which
//! completes last). The claims are *shape* claims, like the rest of this
//! crate: where pipelining pays (serial parse share, skewed block costs)
//! and where it cannot (one CPU, DWT-dominated streams).

use crate::makespan::makespan;
use pj2k_parutil::Schedule;

/// Per-stage decode costs feeding the pipeline model, all in seconds.
#[derive(Debug, Clone, Default)]
pub struct DecodeStageCosts {
    /// Serial Tier-2 parse cost of each code-block's packets, in the
    /// order the producer publishes jobs (layer-major arrival order).
    pub parse: Vec<f64>,
    /// Tier-1 decode cost of each code-block, same order as `parse`.
    pub tier1: Vec<f64>,
    /// Inverse-DWT time the pipeline can run on the driver while Tier-1
    /// workers are still draining (every level but the finest).
    pub dwt_overlapped: f64,
    /// Inverse-DWT time that stays exposed after the last block lands
    /// (the finest level — its bands complete last by construction).
    pub dwt_exposed: f64,
}

impl DecodeStageCosts {
    /// Total sequential decode time: every stage back to back on one CPU.
    pub fn sequential(&self) -> f64 {
        self.parse.iter().sum::<f64>()
            + self.tier1.iter().sum::<f64>()
            + self.dwt_overlapped
            + self.dwt_exposed
    }
}

/// Makespan of the *barriered* decoder on `p` CPUs: the full serial parse,
/// then the Tier-1 blocks under `schedule`, then the whole inverse DWT
/// (the barrier forbids any DWT/Tier-1 overlap; the DWT's own row-level
/// parallelism is second-order next to the stage serialization and is
/// left out of the shape model).
pub fn barriered_decode_makespan(costs: &DecodeStageCosts, p: usize, schedule: Schedule) -> f64 {
    assert!(p > 0, "need at least one CPU");
    let parse: f64 = costs.parse.iter().sum();
    parse + makespan(&costs.tier1, p, schedule) + costs.dwt_overlapped + costs.dwt_exposed
}

/// Makespan of the *pipelined* decoder on `p` CPUs.
///
/// Block `i` is released at the parse-cost prefix sum (the serial producer
/// publishes jobs in order); `p` workers claim ready jobs greedily, which
/// is list scheduling with release times — the queue-drain equivalent of
/// [`Schedule::Dynamic`] with chunk 1. The driver finishes parsing, runs
/// the overlappable coarse-level DWT concurrently with the drain tail,
/// and only then pays the exposed finest-level share.
///
/// With one CPU there is nothing to overlap (the real decoder's `p <= 1`
/// path drains inline), so the model returns the sequential total.
pub fn pipelined_decode_makespan(costs: &DecodeStageCosts, p: usize) -> f64 {
    assert!(p > 0, "need at least one CPU");
    if p == 1 {
        return costs.sequential();
    }
    let mut release = 0.0f64;
    let mut free = vec![0.0f64; p];
    for (i, &t1) in costs.tier1.iter().enumerate() {
        release += costs.parse.get(i).copied().unwrap_or(0.0);
        let min = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(w, _)| w)
            .unwrap_or(0);
        free[min] = free[min].max(release) + t1;
    }
    let drain_end = free.into_iter().fold(0.0, f64::max);
    // The driver is busy until the parse ends, then interleaves the
    // coarse-level DWT with the drain tail; the finest level waits for
    // the last block either way.
    let parse_total: f64 = costs.parse.iter().sum();
    drain_end.max(parse_total + costs.dwt_overlapped) + costs.dwt_exposed
}

/// Barriered and pipelined speedups over the sequential decode for each
/// CPU count in `cpus`, as `(barriered, pipelined)` pairs.
pub fn decode_speedup_curve(
    costs: &DecodeStageCosts,
    cpus: &[usize],
    schedule: Schedule,
) -> Vec<(f64, f64)> {
    let seq = costs.sequential();
    cpus.iter()
        .map(|&p| {
            let bar = barriered_decode_makespan(costs, p, schedule);
            let pipe = pipelined_decode_makespan(costs, p);
            (
                if bar > 0.0 { seq / bar } else { 1.0 },
                if pipe > 0.0 { seq / pipe } else { 1.0 },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, parse: f64, tier1: f64) -> DecodeStageCosts {
        DecodeStageCosts {
            parse: vec![parse; n],
            tier1: vec![tier1; n],
            dwt_overlapped: 0.0,
            dwt_exposed: 0.0,
        }
    }

    #[test]
    fn one_cpu_is_sequential_for_both() {
        let mut costs = uniform(32, 0.1, 1.0);
        costs.dwt_overlapped = 3.0;
        costs.dwt_exposed = 1.0;
        let seq = costs.sequential();
        assert!(
            (barriered_decode_makespan(&costs, 1, Schedule::StaggeredRoundRobin) - seq).abs()
                < 1e-12
        );
        assert!((pipelined_decode_makespan(&costs, 1) - seq).abs() < 1e-12);
    }

    #[test]
    fn pipelined_never_loses_to_barriered() {
        // Overlap can only remove exposed time: on uniform, skewed, and
        // DWT-heavy workloads alike the pipeline is at least as fast.
        let mut skewed = uniform(48, 0.05, 0.2);
        skewed.tier1[0] = 4.0;
        skewed.dwt_overlapped = 1.5;
        skewed.dwt_exposed = 0.5;
        let mut dwt_heavy = uniform(16, 0.01, 0.1);
        dwt_heavy.dwt_overlapped = 8.0;
        dwt_heavy.dwt_exposed = 2.0;
        for costs in [uniform(64, 0.1, 1.0), skewed, dwt_heavy] {
            for p in [2usize, 4, 8, 16] {
                let pipe = pipelined_decode_makespan(&costs, p);
                for s in [
                    Schedule::StaggeredRoundRobin,
                    Schedule::Dynamic { chunk: 1 },
                    Schedule::StaticBlock,
                ] {
                    let bar = barriered_decode_makespan(&costs, p, s);
                    assert!(pipe <= bar + 1e-9, "p={p} {s:?}: pipe {pipe} vs bar {bar}");
                }
            }
        }
    }

    #[test]
    fn pipeline_hides_the_serial_parse() {
        // Parse-dominated stream with plenty of workers: the barriered
        // decoder pays parse + tier1/p; the pipeline decodes each block
        // the moment it is parsed, leaving essentially only the parse.
        let costs = uniform(256, 1.0, 0.5);
        let p = 8;
        let bar = barriered_decode_makespan(&costs, p, Schedule::Dynamic { chunk: 1 });
        let pipe = pipelined_decode_makespan(&costs, p);
        // parse = 256, tier1/p = 16: the pipeline should land within one
        // block of the 256.5 lower bound.
        assert!(pipe < 258.0, "pipe {pipe}");
        assert!(bar > 271.0, "bar {bar}");
    }

    #[test]
    fn coarse_dwt_levels_overlap_the_drain() {
        // Tier-1-bound drain tail with overlappable DWT work smaller than
        // the tail: the pipeline hides all of it and pays only the
        // exposed finest level.
        let mut costs = uniform(64, 0.01, 1.0);
        costs.dwt_overlapped = 4.0;
        costs.dwt_exposed = 1.0;
        let p = 4;
        let pipe = pipelined_decode_makespan(&costs, p);
        let drain = 64.0 / p as f64 + 0.64; // ideal drain + release skew bound
        assert!(
            pipe <= drain + costs.dwt_exposed + 1e-9,
            "pipe {pipe}: overlappable DWT was not hidden"
        );
        let bar = barriered_decode_makespan(&costs, p, Schedule::Dynamic { chunk: 1 });
        assert!(
            bar >= pipe + costs.dwt_overlapped - 0.64,
            "bar {bar} pipe {pipe}"
        );
    }

    #[test]
    fn release_times_bound_the_drain() {
        // A single worker pair cannot finish before the last job is even
        // published: drain end >= total parse + last block's cost.
        let costs = uniform(16, 0.5, 0.1);
        let pipe = pipelined_decode_makespan(&costs, 2);
        assert!(pipe >= 16.0 * 0.5 + 0.1 - 1e-12, "pipe {pipe}");
    }

    #[test]
    fn speedup_curve_shapes() {
        let mut costs = uniform(128, 0.02, 0.5);
        costs.dwt_overlapped = 2.0;
        costs.dwt_exposed = 0.7;
        let curve = decode_speedup_curve(&costs, &[1, 2, 4, 8], Schedule::StaggeredRoundRobin);
        // p=1: both exactly sequential.
        assert!((curve[0].0 - 1.0).abs() < 1e-9);
        assert!((curve[0].1 - 1.0).abs() < 1e-9);
        for (i, (bar, pipe)) in curve.iter().enumerate() {
            assert!(pipe + 1e-9 >= *bar, "entry {i}: {pipe} vs {bar}");
        }
        // Pipelined speedup grows with p on this Tier-1-bound workload.
        assert!(
            curve[3].1 > curve[1].1 && curve[1].1 > curve[0].1,
            "{curve:?}"
        );
    }

    #[test]
    fn empty_costs_are_total_zero() {
        let costs = DecodeStageCosts::default();
        assert_eq!(costs.sequential(), 0.0);
        assert_eq!(pipelined_decode_makespan(&costs, 4), 0.0);
        assert_eq!(
            barriered_decode_makespan(&costs, 4, Schedule::RoundRobin),
            0.0
        );
    }
}
