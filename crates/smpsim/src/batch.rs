//! Batch-service makespan: inter-image (`j`) versus intra-image (`k`)
//! parallelism under one thread budget.
//!
//! The paper parallelizes *one* image; a service encodes a stream of them.
//! With a budget of `B` worker threads the scheduler must pick a split
//! `j × k ≤ B`: run `j` images concurrently, each encoded by a `k`-thread
//! intra-image executor. The trade-off is the bi-criteria pipeline-mapping
//! problem of arXiv 0801.1772 (PAPERS.md): large `k` minimizes per-image
//! *latency* but pays the image's serial fraction and granularity losses
//! once per image with the whole pool idle elsewhere; large `j` maximizes
//! *throughput* by overlapping one image's serial stages with another
//! image's parallel ones, at the cost of per-image latency.
//!
//! [`ImageCost`] summarizes an image the same way the Amdahl split in
//! [`amdahl`](crate::amdahl) does — a serial share, a parallelizable
//! share, and a granule that caps intra-image scaling —
//! [`batch_makespan`] list-schedules a workload onto `j` image slots, and
//! [`choose_split`] is the greedy tuner the `pj2k-serve` scheduler runs:
//! enumerate the feasible splits, keep the best-throughput one, and break
//! near-ties toward larger `k` (lower latency). As everywhere in this
//! crate the claims are *shape* claims, so the CI floor on batch-vs-serial
//! throughput is checked against this deterministic model and cannot flake
//! on a single-core host.

/// Cost summary of encoding one image, in seconds (or any fixed unit —
/// only ratios matter to the model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageCost {
    /// Time in the inherently serial stages (image IO, setup, rate
    /// allocation, Tier-2, bitstream IO) — unaffected by `k`.
    pub serial: f64,
    /// Time in the parallelizable stages (component transform tiles, DWT,
    /// quantization, Tier-1), which divides by `k`.
    pub parallel: f64,
    /// The largest indivisible work item (e.g. the most expensive code
    /// block): intra-image time never drops below it no matter how large
    /// `k` grows.
    pub granule: f64,
}

impl ImageCost {
    /// An image cost summary; negative inputs are clamped to zero.
    pub fn new(serial: f64, parallel: f64, granule: f64) -> Self {
        Self {
            serial: serial.max(0.0),
            parallel: parallel.max(0.0),
            granule: granule.max(0.0),
        }
    }

    /// Wall-clock encode time of this image alone on a `k`-thread
    /// intra-image executor: the serial share plus the larger of the ideal
    /// parallel split and the granularity floor.
    pub fn image_time(&self, k: usize) -> f64 {
        assert!(k > 0, "need at least one intra-image worker");
        self.serial + (self.parallel / k as f64).max(self.granule.min(self.parallel))
    }

    /// Total one-thread work of this image.
    pub fn sequential(&self) -> f64 {
        self.serial + self.parallel
    }
}

/// Makespan of encoding `images` (in arrival order) on `j` concurrent
/// image slots, each an independent `k`-thread intra-image executor:
/// greedy list scheduling, the model twin of the bounded-admission queue
/// drain (an idle slot claims the next admitted image).
pub fn batch_makespan(images: &[ImageCost], j: usize, k: usize) -> f64 {
    assert!(j > 0, "need at least one image slot");
    let mut free = vec![0.0f64; j];
    for img in images {
        let min = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(s, _)| s)
            .unwrap_or(0);
        free[min] += img.image_time(k);
    }
    free.into_iter().fold(0.0, f64::max)
}

/// Makespan of the *serial whole-pool* baseline the acceptance floor is
/// measured against: one image at a time, each given the entire budget.
pub fn serial_whole_pool_makespan(images: &[ImageCost], budget: usize) -> f64 {
    batch_makespan(images, 1, budget.max(1))
}

/// Pick the `(j, k)` split for `budget` worker threads: enumerate the
/// maximal feasible splits (`k = budget / j`, so `j × k ≤ budget` always
/// holds), keep the best modeled throughput, and break near-ties (within
/// `2%`) toward larger `k` — the bi-criteria rule: throughput first,
/// latency as tie-breaker.
///
/// Returns `(j, k)` with `j, k ≥ 1`. With `budget == 1` or an empty
/// workload this degenerates to `(1, budget.max(1))`.
pub fn choose_split(images: &[ImageCost], budget: usize) -> (usize, usize) {
    let budget = budget.max(1);
    if images.is_empty() {
        return (1, budget);
    }
    let mut best = (1usize, budget);
    let mut best_span = batch_makespan(images, 1, budget);
    for j in 2..=budget {
        let k = budget / j;
        if k == 0 {
            break;
        }
        let span = batch_makespan(images, j, k);
        // Strictly-better throughput wins; a near-tie keeps the earlier
        // (smaller-j, larger-k) split, i.e. the lower-latency mapping.
        if span < best_span * 0.98 {
            best = (j, k);
            best_span = span;
        }
    }
    best
}

/// Modeled throughput gain of the chosen batch split over the serial
/// whole-pool baseline at the same budget (≥ 1 when the tuner works).
pub fn batch_speedup(images: &[ImageCost], budget: usize) -> f64 {
    let serial = serial_whole_pool_makespan(images, budget);
    let (j, k) = choose_split(images, budget);
    let batch = batch_makespan(images, j, k);
    if batch > 0.0 {
        serial / batch
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A mixed-size workload shaped like the bench harness's: small,
    /// medium, and large images with a realistic serial share (IO + Tier-2
    /// + rate allocation ≈ 25–40% at these sizes) and a Tier-1 granule.
    fn mixed_workload() -> Vec<ImageCost> {
        let mut v = Vec::new();
        for round in 0..8 {
            let scale = 1.0 + 0.1 * round as f64;
            v.push(ImageCost::new(0.4 * scale, 0.6 * scale, 0.05));
            v.push(ImageCost::new(0.9 * scale, 1.8 * scale, 0.08));
            v.push(ImageCost::new(1.6 * scale, 4.2 * scale, 0.12));
        }
        v
    }

    #[test]
    fn image_time_monotone_and_floored() {
        let img = ImageCost::new(1.0, 8.0, 0.5);
        let mut prev = f64::INFINITY;
        for k in 1..=64 {
            let t = img.image_time(k);
            assert!(t <= prev + 1e-12, "k={k}: {t} > {prev}");
            assert!(t >= img.serial + img.granule - 1e-12, "granularity floor");
            prev = t;
        }
        assert!((img.image_time(1) - img.sequential()).abs() < 1e-12);
    }

    #[test]
    fn granule_never_exceeds_parallel_share() {
        // A degenerate granule larger than the parallel work must not
        // inflate the image beyond its sequential time.
        let img = ImageCost::new(1.0, 0.2, 5.0);
        assert!(img.image_time(8) <= img.sequential() + 1e-12);
    }

    #[test]
    fn single_slot_is_the_sum() {
        let images = mixed_workload();
        let want: f64 = images.iter().map(|i| i.image_time(4)).sum();
        assert!((batch_makespan(&images, 1, 4) - want).abs() < 1e-9);
    }

    #[test]
    fn more_slots_than_images_is_max() {
        let images = mixed_workload();
        let want = images.iter().map(|i| i.image_time(1)).fold(0.0, f64::max);
        assert!((batch_makespan(&images, 64, 1) - want).abs() < 1e-9);
    }

    #[test]
    fn chosen_split_is_feasible() {
        for budget in 1..=16 {
            let (j, k) = choose_split(&mixed_workload(), budget);
            assert!(j >= 1 && k >= 1, "budget={budget}: ({j}, {k})");
            assert!(j * k <= budget.max(1), "budget={budget}: ({j}, {k})");
        }
    }

    #[test]
    fn one_huge_image_prefers_intra_parallelism() {
        // A workload dominated by a single highly parallel image: splitting
        // the pool across images cannot help, so the tuner keeps the
        // whole-pool (low-latency) mapping.
        let images = vec![ImageCost::new(0.1, 40.0, 0.01)];
        let (j, k) = choose_split(&images, 8);
        assert_eq!((j, k), (1, 8));
    }

    #[test]
    fn serial_heavy_stream_prefers_inter_parallelism() {
        // Images that are mostly serial scale terribly intra-image; the
        // tuner must overlap them across slots instead.
        let images: Vec<ImageCost> = (0..16).map(|_| ImageCost::new(1.0, 0.25, 0.0)).collect();
        let (j, _k) = choose_split(&images, 4);
        assert!(j >= 3, "expected inter-image split, got j={j}");
    }

    #[test]
    fn batch_beats_serial_whole_pool_on_the_mixed_workload() {
        // The acceptance-criteria anchor: at budget 4 on the mixed-size
        // workload the modeled batch throughput clears the 1.5× full floor
        // (and a fortiori the 1.1× smoke floor). The gain comes from
        // overlapping serial shares and granularity losses across images —
        // exactly what the real bounded-admission scheduler does.
        let s = batch_speedup(&mixed_workload(), 4);
        assert!(s >= 1.5, "modeled batch-over-serial at p=4: {s}");
        // And the tuner never loses to the baseline it replaces.
        for budget in 1..=8 {
            let s = batch_speedup(&mixed_workload(), budget);
            assert!(s >= 1.0 - 1e-12, "budget={budget}: {s}");
        }
    }

    #[test]
    fn budget_one_degenerates_to_sequential() {
        let images = mixed_workload();
        assert_eq!(choose_split(&images, 1), (1, 1));
        let seq: f64 = images.iter().map(|i| i.sequential()).sum();
        assert!((serial_whole_pool_makespan(&images, 1) - seq).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_is_zero() {
        assert_eq!(batch_makespan(&[], 4, 2), 0.0);
        assert_eq!(choose_split(&[], 4), (1, 4));
    }
}
