//! Schedule makespan: completion time of a fixed item-to-CPU assignment.

use pj2k_parutil::Schedule;

/// Completion time of `costs` (seconds per item, in submission order) on
/// `p` virtual CPUs under `schedule`: the maximum per-CPU cost sum.
///
/// Static schedules fix the item-to-CPU mapping up front, so the makespan
/// is the worst per-CPU sum of [`pj2k_parutil::assign`]. The dynamic
/// schedule is modeled by its runtime behavior instead: chunks are claimed
/// in submission order by whichever CPU goes idle first (list scheduling),
/// which is exactly what [`pj2k_parutil::pool_map`]'s atomic claim counter
/// does when per-item costs dominate claim overhead.
///
/// # Panics
/// Panics if `p == 0` (or, for [`Schedule::Dynamic`], if `chunk == 0`).
pub fn makespan(costs: &[f64], p: usize, schedule: Schedule) -> f64 {
    assert!(p > 0, "need at least one CPU");
    if let Schedule::Dynamic { chunk } = schedule {
        assert!(chunk > 0, "dynamic chunk size must be positive");
        let mut loads = vec![0.0f64; p];
        for chunk_costs in costs.chunks(chunk) {
            let min = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            loads[min] += chunk_costs.iter().sum::<f64>();
        }
        return loads.into_iter().fold(0.0, f64::max);
    }
    pj2k_parutil::assign(costs.len(), p, schedule)
        .into_iter()
        .map(|items| items.into_iter().map(|i| costs[i]).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Speedup of the schedule over sequential execution for each CPU count in
/// `cpus`: `sum(costs) / makespan(p)`.
pub fn speedup_curve(costs: &[f64], cpus: &[usize], schedule: Schedule) -> Vec<f64> {
    let total: f64 = costs.iter().sum();
    cpus.iter()
        .map(|&p| {
            let m = makespan(costs, p, schedule);
            if m == 0.0 {
                1.0
            } else {
                total / m
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_items_scale_linearly() {
        let costs = vec![1.0; 64];
        for p in [1, 2, 4, 8] {
            for s in [
                Schedule::StaticBlock,
                Schedule::RoundRobin,
                Schedule::StaggeredRoundRobin,
                Schedule::Dynamic { chunk: 1 },
                Schedule::Dynamic { chunk: 4 },
            ] {
                let m = makespan(&costs, p, s);
                assert!((m - 64.0 / p as f64).abs() < 1e-12, "p={p} {s:?}: {m}");
            }
        }
    }

    #[test]
    fn single_cpu_is_total() {
        let costs = vec![0.5, 1.5, 3.0];
        assert!((makespan(&costs, 1, Schedule::StaticBlock) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn staggered_beats_static_on_gradient() {
        // Linearly decreasing costs (like code-blocks ordered coarse to
        // fine): a static block split gives one CPU all the cheap items.
        let costs: Vec<f64> = (0..64).map(|i| 64.0 - i as f64).collect();
        let p = 4;
        let stat = makespan(&costs, p, Schedule::StaticBlock);
        let stag = makespan(&costs, p, Schedule::StaggeredRoundRobin);
        assert!(
            stag < stat,
            "staggered ({stag}) should balance the gradient better than static ({stat})"
        );
        // And staggered should be near-perfect here.
        let ideal = costs.iter().sum::<f64>() / p as f64;
        assert!(stag < ideal * 1.05, "stag={stag} ideal={ideal}");
    }

    #[test]
    fn dynamic_never_loses_to_static_on_gradient() {
        // On the coarse-to-fine cost gradient, runtime self-scheduling
        // matches or beats every static split, and fine chunks beat coarse
        // ones.
        let costs: Vec<f64> = (0..64).map(|i| 64.0 - i as f64).collect();
        for p in [2, 4, 8] {
            let dyn1 = makespan(&costs, p, Schedule::Dynamic { chunk: 1 });
            for s in [
                Schedule::StaticBlock,
                Schedule::RoundRobin,
                Schedule::StaggeredRoundRobin,
            ] {
                let stat = makespan(&costs, p, s);
                assert!(dyn1 <= stat + 1e-12, "p={p} {s:?}: dyn {dyn1} vs {stat}");
            }
            let dyn16 = makespan(&costs, p, Schedule::Dynamic { chunk: 16 });
            assert!(dyn1 <= dyn16 + 1e-12, "p={p}: chunk 1 {dyn1} vs 16 {dyn16}");
        }
    }

    #[test]
    fn dynamic_single_cpu_is_total() {
        let costs = vec![0.5, 1.5, 3.0];
        let m = makespan(&costs, 1, Schedule::Dynamic { chunk: 2 });
        assert!((m - 5.0).abs() < 1e-12);
        assert_eq!(makespan(&[], 4, Schedule::Dynamic { chunk: 3 }), 0.0);
    }

    #[test]
    fn speedup_curve_monotone_for_many_uniform_items() {
        let costs = vec![2.0; 1024];
        let curve = speedup_curve(&costs, &[1, 2, 4, 8, 16], Schedule::StaggeredRoundRobin);
        assert!((curve[0] - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((curve[4] - 16.0).abs() < 1e-9);
    }

    #[test]
    fn one_huge_item_caps_speedup() {
        let mut costs = vec![0.01; 100];
        costs[0] = 10.0;
        let curve = speedup_curve(&costs, &[16], Schedule::StaggeredRoundRobin);
        assert!(curve[0] < 1.2, "dominated by the big item: {curve:?}");
    }

    #[test]
    fn empty_costs() {
        assert_eq!(makespan(&[], 4, Schedule::RoundRobin), 0.0);
        assert_eq!(speedup_curve(&[], &[2], Schedule::RoundRobin), vec![1.0]);
    }
}
