//! Image substrate for the pj2k workspace.
//!
//! Provides the containers and utilities every codec in this reproduction
//! shares: a strided 2-D sample plane ([`Plane`]), a multi-component
//! [`Image`], PGM/PPM I/O ([`pnm`]), deterministic synthetic test imagery
//! ([`synth`] — the stand-in for the paper's photographic test set, see
//! DESIGN.md §2), quality metrics ([`metrics`]), the JPEG2000 component
//! transforms ([`transform`]) and tiling ([`tile`]).
//!
//! The [`Plane`] type carries an explicit row stride so the paper's
//! "pad the image width off a power of two" cache fix (§3.2) can be
//! expressed without copying: samples stay at their logical coordinates
//! while rows are laid out `stride` elements apart.

pub mod image;
pub mod metrics;
pub mod plane;
pub mod pnm;
pub mod synth;
pub mod tile;
pub mod transform;

pub use image::Image;
pub use plane::Plane;
