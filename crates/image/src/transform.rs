//! DC level shift and inter-component transforms (ISO 15444-1 Annex G).
//!
//! JPEG2000 applies, before the wavelet stage:
//!
//! * a **DC level shift** of unsigned components by `2^(bits-1)`, and
//! * for 3-component images, either the **reversible color transform**
//!   (RCT, integer, used with the 5/3 wavelet for lossless coding) or the
//!   **irreversible color transform** (ICT, the floating-point RGB→YCbCr
//!   matrix, used with the 9/7 wavelet).
//!
//! This is the "inter-component transform" stage of the paper's Fig. 3
//! runtime breakdown.

use crate::image::Image;
use crate::plane::Plane;

/// Subtract `2^(bits-1)` from every sample of an unsigned image (in place).
/// No-op for signed images.
pub fn dc_level_shift_forward(img: &mut Image) {
    if img.signed() {
        return;
    }
    let shift = 1i32 << (img.bit_depth() - 1);
    for c in 0..img.num_components() {
        for v in img.component_mut(c).raw_mut() {
            *v -= shift;
        }
    }
}

/// Undo [`dc_level_shift_forward`].
pub fn dc_level_shift_inverse(img: &mut Image) {
    if img.signed() {
        return;
    }
    let shift = 1i32 << (img.bit_depth() - 1);
    for c in 0..img.num_components() {
        for v in img.component_mut(c).raw_mut() {
            *v += shift;
        }
    }
}

/// Forward reversible color transform on (R, G, B) planes, in place:
/// `Y = floor((R + 2G + B)/4)`, `U = B - G`, `V = R - G`.
///
/// # Panics
/// Panics if the planes differ in size.
pub fn rct_forward(r: &mut Plane<i32>, g: &mut Plane<i32>, b: &mut Plane<i32>) {
    let (w, h) = (r.width(), r.height());
    assert!(
        g.width() == w && g.height() == h && b.width() == w && b.height() == h,
        "RCT plane size mismatch"
    );
    for y in 0..h {
        for x in 0..w {
            let (rv, gv, bv) = (r.get(x, y), g.get(x, y), b.get(x, y));
            let yv = (rv + 2 * gv + bv) >> 2; // floor division for the sum
            let uv = bv - gv;
            let vv = rv - gv;
            r.set(x, y, yv);
            g.set(x, y, uv);
            b.set(x, y, vv);
        }
    }
}

/// Inverse reversible color transform, exactly undoing [`rct_forward`]:
/// `G = Y - floor((U + V)/4)`, `R = V + G`, `B = U + G`.
pub fn rct_inverse(y_p: &mut Plane<i32>, u_p: &mut Plane<i32>, v_p: &mut Plane<i32>) {
    let (w, h) = (y_p.width(), y_p.height());
    for yy in 0..h {
        for x in 0..w {
            let (yv, uv, vv) = (y_p.get(x, yy), u_p.get(x, yy), v_p.get(x, yy));
            let g = yv - ((uv + vv) >> 2);
            let r = vv + g;
            let b = uv + g;
            y_p.set(x, yy, r);
            u_p.set(x, yy, g);
            v_p.set(x, yy, b);
        }
    }
}

/// Forward irreversible color transform (RGB→YCbCr) on float planes,
/// in place. Coefficients from ISO 15444-1 Table G.3.
pub fn ict_forward(r: &mut Plane<f32>, g: &mut Plane<f32>, b: &mut Plane<f32>) {
    let (w, h) = (r.width(), r.height());
    for y in 0..h {
        for x in 0..w {
            let (rv, gv, bv) = (r.get(x, y), g.get(x, y), b.get(x, y));
            let yv = 0.299 * rv + 0.587 * gv + 0.114 * bv;
            let cb = -0.168_736 * rv - 0.331_264 * gv + 0.5 * bv;
            let cr = 0.5 * rv - 0.418_688 * gv - 0.081_312 * bv;
            r.set(x, y, yv);
            g.set(x, y, cb);
            b.set(x, y, cr);
        }
    }
}

/// Inverse irreversible color transform (YCbCr→RGB), in place.
pub fn ict_inverse(y_p: &mut Plane<f32>, cb_p: &mut Plane<f32>, cr_p: &mut Plane<f32>) {
    let (w, h) = (y_p.width(), y_p.height());
    for yy in 0..h {
        for x in 0..w {
            let (yv, cb, cr) = (y_p.get(x, yy), cb_p.get(x, yy), cr_p.get(x, yy));
            let r = yv + 1.402 * cr;
            let g = yv - 0.344_136 * cb - 0.714_136 * cr;
            let b = yv + 1.772 * cb;
            y_p.set(x, yy, r);
            cb_p.set(x, yy, g);
            cr_p.set(x, yy, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_shift_roundtrip() {
        let mut img = Image::gray8(Plane::from_vec(2, 1, vec![0, 255]));
        dc_level_shift_forward(&mut img);
        assert_eq!(img.component(0).row(0), &[-128, 127]);
        dc_level_shift_inverse(&mut img);
        assert_eq!(img.component(0).row(0), &[0, 255]);
    }

    #[test]
    fn dc_shift_skips_signed() {
        let mut img = Image::new(vec![Plane::from_vec(1, 1, vec![-3])], 8, true);
        dc_level_shift_forward(&mut img);
        assert_eq!(img.component(0).get(0, 0), -3);
    }

    #[test]
    fn rct_is_exactly_reversible() {
        // Exhaustive-ish sweep over tricky values including negatives
        // (post-DC-shift samples are signed).
        let vals = [-128, -127, -64, -1, 0, 1, 63, 127];
        let mut triples = Vec::new();
        for &r in &vals {
            for &g in &vals {
                for &b in &vals {
                    triples.push((r, g, b));
                }
            }
        }
        let n = triples.len();
        let mut rp = Plane::from_vec(n, 1, triples.iter().map(|t| t.0).collect());
        let mut gp = Plane::from_vec(n, 1, triples.iter().map(|t| t.1).collect());
        let mut bp = Plane::from_vec(n, 1, triples.iter().map(|t| t.2).collect());
        let (r0, g0, b0) = (rp.clone(), gp.clone(), bp.clone());
        rct_forward(&mut rp, &mut gp, &mut bp);
        rct_inverse(&mut rp, &mut gp, &mut bp);
        assert_eq!(rp, r0);
        assert_eq!(gp, g0);
        assert_eq!(bp, b0);
    }

    #[test]
    fn rct_known_values() {
        let mut r = Plane::from_vec(1, 1, vec![100]);
        let mut g = Plane::from_vec(1, 1, vec![50]);
        let mut b = Plane::from_vec(1, 1, vec![25]);
        rct_forward(&mut r, &mut g, &mut b);
        assert_eq!(r.get(0, 0), (100 + 100 + 25) / 4); // Y = 56
        assert_eq!(g.get(0, 0), 25 - 50); // U = -25
        assert_eq!(b.get(0, 0), 100 - 50); // V = 50
    }

    #[test]
    fn ict_roundtrip_close() {
        let mut y = Plane::from_fn(8, 8, |x, yy| (x * 20 + yy) as f32 - 100.0);
        let mut cb = Plane::from_fn(8, 8, |x, yy| (yy * 15 + x) as f32 - 60.0);
        let mut cr = Plane::from_fn(8, 8, |x, yy| ((x + yy) * 9) as f32 - 50.0);
        let (y0, cb0, cr0) = (y.clone(), cb.clone(), cr.clone());
        ict_forward(&mut y, &mut cb, &mut cr);
        ict_inverse(&mut y, &mut cb, &mut cr);
        for yy in 0..8 {
            for x in 0..8 {
                assert!((y.get(x, yy) - y0.get(x, yy)).abs() < 1e-3);
                assert!((cb.get(x, yy) - cb0.get(x, yy)).abs() < 1e-3);
                assert!((cr.get(x, yy) - cr0.get(x, yy)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn ict_gray_input_has_zero_chroma() {
        let mut r = Plane::from_vec(1, 1, vec![77.0f32]);
        let mut g = r.clone();
        let mut b = r.clone();
        ict_forward(&mut r, &mut g, &mut b);
        assert!((r.get(0, 0) - 77.0).abs() < 1e-3);
        assert!(g.get(0, 0).abs() < 1e-3);
        assert!(b.get(0, 0).abs() < 1e-3);
    }
}
