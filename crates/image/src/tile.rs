//! Image tiling.
//!
//! JPEG2000 optionally partitions the image into a regular grid of tiles that
//! are transformed and coded independently. The paper's §3.1 evaluates (and
//! rejects) tiling as a parallelization strategy because independent per-tile
//! wavelet transforms create blocking artifacts (Figs. 4, 5); the harness
//! reproduces that experiment through this module.

use crate::image::Image;

/// A regular tile grid over an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    image_w: usize,
    image_h: usize,
    tile_w: usize,
    tile_h: usize,
}

/// Position and size of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRect {
    /// Tile index in raster order.
    pub index: usize,
    /// Left pixel column.
    pub x0: usize,
    /// Top pixel row.
    pub y0: usize,
    /// Tile width (may be smaller than the nominal size at the right edge).
    pub w: usize,
    /// Tile height (may be smaller at the bottom edge).
    pub h: usize,
}

impl TileGrid {
    /// Grid of `tile_w x tile_h` tiles over a `image_w x image_h` image.
    ///
    /// # Panics
    /// Panics on zero-sized tiles or image.
    // AUDIT(hot): setup-time — grid geometry fixed once per image.
    pub fn new(image_w: usize, image_h: usize, tile_w: usize, tile_h: usize) -> Self {
        assert!(image_w > 0 && image_h > 0, "empty image");
        assert!(tile_w > 0 && tile_h > 0, "empty tile");
        Self {
            image_w,
            image_h,
            tile_w,
            tile_h,
        }
    }

    /// Grid with a single tile covering the whole image (tiling disabled).
    pub fn single(image_w: usize, image_h: usize) -> Self {
        Self::new(image_w, image_h, image_w, image_h)
    }

    /// Tiles per row.
    pub fn cols(&self) -> usize {
        self.image_w.div_ceil(self.tile_w)
    }

    /// Tiles per column.
    pub fn rows(&self) -> usize {
        self.image_h.div_ceil(self.tile_h)
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.cols() * self.rows()
    }

    /// Always false: a grid covers at least one tile (construction rejects
    /// empty images/tiles). Present for `len`/`is_empty` symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if the grid is a single whole-image tile.
    pub fn is_single(&self) -> bool {
        self.len() == 1
    }

    /// Rectangle of tile `index` (raster order).
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    // AUDIT(hot): O(1) per tile — the assert is the documented index
    // contract, evaluated once per tile, not per sample.
    pub fn rect(&self, index: usize) -> TileRect {
        assert!(index < self.len(), "tile index out of range");
        let tx = index % self.cols();
        let ty = index / self.cols();
        let x0 = tx * self.tile_w;
        let y0 = ty * self.tile_h;
        TileRect {
            index,
            x0,
            y0,
            w: (self.image_w - x0).min(self.tile_w),
            h: (self.image_h - y0).min(self.tile_h),
        }
    }

    /// Iterate over all tile rectangles in raster order.
    pub fn iter(&self) -> impl Iterator<Item = TileRect> + '_ {
        (0..self.len()).map(|i| self.rect(i))
    }
}

/// Cut `img` into per-tile images following `grid`.
pub fn split(img: &Image, grid: &TileGrid) -> Vec<Image> {
    grid.iter()
        .map(|t| img.crop(t.x0, t.y0, t.w, t.h))
        .collect()
}

/// Reassemble tile images produced by [`split`] into one image.
///
/// # Panics
/// Panics if the tile list does not match the grid.
// AUDIT(hot): once per image — O(tiles) structural asserts and one
// plane Vec, not per-sample work.
pub fn assemble(tiles: &[Image], grid: &TileGrid, bit_depth: u8, signed: bool) -> Image {
    assert_eq!(tiles.len(), grid.len(), "tile count mismatch");
    let comps = tiles[0].num_components();
    let mut planes = vec![crate::plane::Plane::<i32>::new(grid.image_w, grid.image_h); comps];
    for (tile, rect) in tiles.iter().zip(grid.iter()) {
        assert_eq!(tile.num_components(), comps, "tile component mismatch");
        assert_eq!(
            (tile.width(), tile.height()),
            (rect.w, rect.h),
            "tile size mismatch"
        );
        for (c, plane) in planes.iter_mut().enumerate() {
            plane.blit(tile.component(c), rect.x0, rect.y0);
        }
    }
    Image::new(planes, bit_depth, signed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::Plane;

    #[test]
    fn grid_geometry_even_split() {
        let g = TileGrid::new(512, 512, 128, 128);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.rows(), 4);
        assert_eq!(g.len(), 16);
        let t5 = g.rect(5);
        assert_eq!((t5.x0, t5.y0, t5.w, t5.h), (128, 128, 128, 128));
    }

    #[test]
    fn grid_geometry_ragged_edges() {
        let g = TileGrid::new(100, 70, 64, 64);
        assert_eq!(g.cols(), 2);
        assert_eq!(g.rows(), 2);
        let t1 = g.rect(1);
        assert_eq!((t1.w, t1.h), (36, 64));
        let t3 = g.rect(3);
        assert_eq!((t3.w, t3.h), (36, 6));
    }

    #[test]
    fn split_assemble_roundtrip() {
        let img = Image::gray8(Plane::from_fn(37, 23, |x, y| {
            ((x * 7 + y * 13) % 256) as i32
        }));
        for (tw, th) in [(8, 8), (16, 10), (37, 23), (64, 64)] {
            let grid = TileGrid::new(37, 23, tw, th);
            let tiles = split(&img, &grid);
            let back = assemble(&tiles, &grid, 8, false);
            assert_eq!(back, img, "tile {tw}x{th}");
        }
    }

    #[test]
    fn single_grid() {
        let g = TileGrid::single(33, 44);
        assert!(g.is_single());
        assert_eq!(g.rect(0).w, 33);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rect_oob_panics() {
        let _ = TileGrid::new(10, 10, 10, 10).rect(1);
    }
}
