//! Image quality metrics: MSE, PSNR, maximum absolute error.
//!
//! PSNR here matches the paper's Fig. 5 convention: peak = `2^bits - 1`
//! (255 for 8-bit material), distortion averaged over all pixels of all
//! components.

use crate::image::Image;
use crate::plane::Plane;

/// Mean squared error between two planes.
///
/// # Panics
/// Panics if the planes differ in size.
pub fn mse_plane(a: &Plane<i32>, b: &Plane<i32>) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "plane size mismatch"
    );
    if a.is_empty() {
        return 0.0;
    }
    let mut acc = 0f64;
    for y in 0..a.height() {
        for (&va, &vb) in a.row(y).iter().zip(b.row(y)) {
            let d = f64::from(va - vb);
            acc += d * d;
        }
    }
    acc / a.len() as f64
}

/// Mean squared error across all components of two images.
///
/// # Panics
/// Panics if the images differ in geometry or component count.
pub fn mse(a: &Image, b: &Image) -> f64 {
    assert_eq!(
        a.num_components(),
        b.num_components(),
        "component count mismatch"
    );
    let mut acc = 0.0;
    for c in 0..a.num_components() {
        acc += mse_plane(a.component(c), b.component(c));
    }
    acc / a.num_components() as f64
}

/// PSNR in dB for a given peak value. Returns `f64::INFINITY` when the
/// images are identical.
pub fn psnr_with_peak(mse: f64, peak: f64) -> f64 {
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * ((peak * peak) / mse).log10()
    }
}

/// PSNR between two images using the first image's declared bit depth for
/// the peak value.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    let peak = f64::from((1i64 << a.bit_depth()) as i32 - 1);
    psnr_with_peak(mse(a, b), peak)
}

/// Largest absolute sample difference; 0 means bit-exact.
pub fn max_abs_error(a: &Image, b: &Image) -> i32 {
    assert_eq!(
        a.num_components(),
        b.num_components(),
        "component count mismatch"
    );
    let mut worst = 0;
    for c in 0..a.num_components() {
        let (pa, pb) = (a.component(c), b.component(c));
        assert_eq!((pa.width(), pa.height()), (pb.width(), pb.height()));
        for y in 0..pa.height() {
            for (&va, &vb) in pa.row(y).iter().zip(pb.row(y)) {
                worst = worst.max((va - vb).abs());
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(vals: &[i32], w: usize) -> Plane<i32> {
        Plane::from_vec(w, vals.len() / w, vals.to_vec())
    }

    #[test]
    fn identical_images_have_infinite_psnr() {
        let img = Image::gray8(plane(&[1, 2, 3, 4], 2));
        assert_eq!(mse(&img, &img), 0.0);
        assert_eq!(psnr(&img, &img), f64::INFINITY);
        assert_eq!(max_abs_error(&img, &img), 0);
    }

    #[test]
    fn mse_hand_computed() {
        let a = Image::gray8(plane(&[0, 0, 0, 0], 2));
        let b = Image::gray8(plane(&[1, 1, 3, 1], 2));
        // (1 + 1 + 9 + 1) / 4 = 3
        assert!((mse(&a, &b) - 3.0).abs() < 1e-12);
        assert_eq!(max_abs_error(&a, &b), 3);
    }

    #[test]
    fn psnr_known_value() {
        // MSE such that PSNR = 20*log10(255) - 10*log10(mse)
        let got = psnr_with_peak(255.0 * 255.0 / 100.0, 255.0);
        assert!((got - 20.0).abs() < 1e-9);
    }

    #[test]
    fn multi_component_averages() {
        let a = Image::rgb8(plane(&[0], 1), plane(&[0], 1), plane(&[0], 1));
        let b = Image::rgb8(plane(&[3], 1), plane(&[0], 1), plane(&[0], 1));
        assert!((mse(&a, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let _ = mse_plane(&Plane::new(2, 2), &Plane::new(3, 2));
    }
}
