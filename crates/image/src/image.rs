//! Multi-component image container.

use crate::plane::Plane;

/// A multi-component raster image with integer samples.
///
/// Samples are stored as `i32` regardless of the declared `bit_depth` so the
/// same container can hold unshifted pixels, DC-level-shifted pixels, and
/// reversible-transform residuals without conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    components: Vec<Plane<i32>>,
    bit_depth: u8,
    signed: bool,
}

impl Image {
    /// Build an image from component planes.
    ///
    /// # Panics
    /// Panics if `components` is empty, the planes disagree in size, or
    /// `bit_depth` is outside `1..=16`.
    // AUDIT(hot): setup-time — image construction happens once per
    // encode/decode, outside every coding loop; asserts are its
    // documented contract.
    pub fn new(components: Vec<Plane<i32>>, bit_depth: u8, signed: bool) -> Self {
        assert!(!components.is_empty(), "image needs at least one component");
        assert!(
            (1..=16).contains(&bit_depth),
            "bit depth {bit_depth} unsupported"
        );
        let (w, h) = (components[0].width(), components[0].height());
        assert!(
            components.iter().all(|c| c.width() == w && c.height() == h),
            "all components must share dimensions"
        );
        Self {
            components,
            bit_depth,
            signed,
        }
    }

    /// Single-component (grayscale) 8-bit image.
    pub fn gray8(plane: Plane<i32>) -> Self {
        Self::new(vec![plane], 8, false)
    }

    /// Three-component (RGB) 8-bit image.
    pub fn rgb8(r: Plane<i32>, g: Plane<i32>, b: Plane<i32>) -> Self {
        Self::new(vec![r, g, b], 8, false)
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.components[0].width()
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.components[0].height()
    }

    /// Total pixel count (`width * height`).
    pub fn pixels(&self) -> usize {
        self.width() * self.height()
    }

    /// Number of components (1 = gray, 3 = RGB, ...).
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Declared sample precision in bits.
    pub fn bit_depth(&self) -> u8 {
        self.bit_depth
    }

    /// Whether samples are declared signed.
    pub fn signed(&self) -> bool {
        self.signed
    }

    /// Component plane `c`.
    pub fn component(&self, c: usize) -> &Plane<i32> {
        &self.components[c]
    }

    /// Mutable component plane `c`.
    pub fn component_mut(&mut self, c: usize) -> &mut Plane<i32> {
        &mut self.components[c]
    }

    /// All component planes.
    pub fn components(&self) -> &[Plane<i32>] {
        &self.components
    }

    /// Consume the image, yielding its planes.
    pub fn into_components(self) -> Vec<Plane<i32>> {
        self.components
    }

    /// Clamp every sample into the representable range for the declared
    /// precision (`0..2^bits-1` unsigned, symmetric for signed). Used after
    /// lossy reconstruction.
    pub fn clamp_to_depth(&mut self) {
        let (lo, hi) = self.sample_range();
        for plane in &mut self.components {
            for v in plane.raw_mut() {
                *v = (*v).clamp(lo, hi);
            }
        }
    }

    /// Representable sample range for the declared precision.
    pub fn sample_range(&self) -> (i32, i32) {
        if self.signed {
            let half = 1i32 << (self.bit_depth - 1);
            (-half, half - 1)
        } else {
            (0, (1i32 << self.bit_depth) - 1)
        }
    }

    /// Extract the pixel rectangle `[x0, x0+w) x [y0, y0+h)` from every
    /// component as a new image.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Self {
        Self {
            components: self
                .components
                .iter()
                .map(|c| c.crop(x0, y0, w, h))
                .collect(),
            bit_depth: self.bit_depth,
            signed: self.signed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_checks_dimensions() {
        let img = Image::gray8(Plane::new(8, 4));
        assert_eq!(img.width(), 8);
        assert_eq!(img.height(), 4);
        assert_eq!(img.pixels(), 32);
        assert_eq!(img.num_components(), 1);
        assert_eq!(img.sample_range(), (0, 255));
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn mismatched_planes_panic() {
        let _ = Image::rgb8(Plane::new(4, 4), Plane::new(4, 4), Plane::new(4, 5));
    }

    #[test]
    fn signed_range() {
        let img = Image::new(vec![Plane::new(2, 2)], 10, true);
        assert_eq!(img.sample_range(), (-512, 511));
    }

    #[test]
    fn clamp_to_depth_clamps() {
        let mut img = Image::gray8(Plane::from_vec(2, 1, vec![-5, 300]));
        img.clamp_to_depth();
        assert_eq!(img.component(0).row(0), &[0, 255]);
    }

    #[test]
    fn crop_applies_to_all_components() {
        let r = Plane::from_fn(4, 4, |x, _| x as i32);
        let g = Plane::from_fn(4, 4, |_, y| y as i32);
        let b = Plane::from_fn(4, 4, |x, y| (x + y) as i32);
        let img = Image::rgb8(r, g, b).crop(1, 2, 2, 2);
        assert_eq!(img.width(), 2);
        assert_eq!(img.component(0).row(0), &[1, 2]);
        assert_eq!(img.component(1).row(0), &[2, 2]);
        assert_eq!(img.component(2).row(1), &[4, 5]);
    }
}
