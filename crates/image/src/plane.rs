//! Strided two-dimensional sample plane.

/// A rectangular plane of samples stored row-major with an explicit row
/// stride (`stride >= width`).
///
/// The stride exists so that the cache experiment of the paper's §3.2 can be
/// reproduced: vertical wavelet filtering over a plane whose row pitch is a
/// large power of two maps a whole column onto one cache set, and the
/// documented fix is to pad the pitch off the power of two. With `Plane`,
/// that fix is `Plane::with_stride(w, h, w + pad)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Plane<T> {
    width: usize,
    height: usize,
    stride: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Plane<T> {
    /// Dense plane (`stride == width`) filled with `T::default()`.
    pub fn new(width: usize, height: usize) -> Self {
        Self::with_stride(width, height, width)
    }

    /// Plane with an explicit row stride, filled with `T::default()`.
    ///
    /// # Panics
    /// Panics if `stride < width`.
    // AUDIT(hot): setup-time — the plane buffer is allocated once per
    // component/tile, never inside the per-sample loops.
    pub fn with_stride(width: usize, height: usize, stride: usize) -> Self {
        assert!(stride >= width, "stride {stride} < width {width}");
        Self {
            width,
            height,
            stride,
            data: vec![T::default(); stride * height],
        }
    }

    /// Build a dense plane from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), width * height, "data length mismatch");
        Self {
            width,
            height,
            stride: width,
            data,
        }
    }

    /// Fill the plane from a generator called as `f(x, y)`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut p = Self::new(width, height);
        for y in 0..height {
            let row = p.row_mut(y);
            for (x, slot) in row.iter_mut().enumerate() {
                *slot = f(x, y);
            }
        }
        p
    }

    /// Copy this plane into a new one with row stride `stride`.
    pub fn restride(&self, stride: usize) -> Self {
        let mut out = Self::with_stride(self.width, self.height, stride);
        for y in 0..self.height {
            out.row_mut(y).copy_from_slice(&self.row(y)[..self.width]);
        }
        out
    }

    /// Extract the rectangle `[x0, x0+w) x [y0, y0+h)` as a dense plane.
    ///
    /// # Panics
    /// Panics if the rectangle exceeds the plane bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Self {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop out of bounds"
        );
        let mut out = Self::new(w, h);
        for y in 0..h {
            out.row_mut(y)
                .copy_from_slice(&self.row(y0 + y)[x0..x0 + w]);
        }
        out
    }

    /// Write `src` into this plane with its top-left corner at `(x0, y0)`.
    ///
    /// # Panics
    /// Panics if `src` does not fit.
    // AUDIT(hot): one structural bounds assert per blit — O(blits), and a
    // caller bug, not data-dependent.
    pub fn blit(&mut self, src: &Plane<T>, x0: usize, y0: usize) {
        assert!(
            x0 + src.width <= self.width && y0 + src.height <= self.height,
            "blit out of bounds"
        );
        for y in 0..src.height {
            self.row_mut(y0 + y)[x0..x0 + src.width].copy_from_slice(src.row(y));
        }
    }
}

impl<T: Copy> Plane<T> {
    /// Plane width in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in samples.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Distance in elements between vertically adjacent samples.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of samples (`width * height`), excluding stride padding.
    #[inline]
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// True when the plane holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sample at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.stride + x]
    }

    /// Store `v` at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.stride + x] = v;
    }

    /// Row `y` including any stride padding tail is *not* exposed: the slice
    /// has exactly `width` elements.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        let start = y * self.stride;
        &self.data[start..start + self.width]
    }

    /// Mutable row `y` (exactly `width` elements).
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        let start = y * self.stride;
        &mut self.data[start..start + self.width]
    }

    /// Underlying storage including stride padding.
    #[inline]
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Mutable underlying storage including stride padding.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate over samples row-major (skipping stride padding).
    pub fn samples(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.height).flat_map(move |y| self.row(y).iter().copied())
    }

    /// Element-wise map into a new dense plane.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Plane<U> {
        let mut out = Plane::new(self.width, self.height);
        for y in 0..self.height {
            for (dst, src) in out.row_mut(y).iter_mut().zip(self.row(y)) {
                *dst = f(*src);
            }
        }
        out
    }

    /// Split the plane into non-overlapping horizontal bands of mutable rows.
    ///
    /// `bands` lists row counts; they must sum to `height`. Used to hand
    /// disjoint row ranges to worker threads during horizontal filtering.
    pub fn split_rows_mut(&mut self, bands: &[usize]) -> Vec<PlaneRowsMut<'_, T>> {
        assert_eq!(
            bands.iter().sum::<usize>(),
            self.height,
            "bands must cover height"
        );
        let width = self.width;
        let stride = self.stride;
        let mut out = Vec::with_capacity(bands.len());
        let mut rest: &mut [T] = &mut self.data;
        let mut y = 0;
        for &rows in bands {
            let take = rows * stride;
            let (head, tail) = rest.split_at_mut(take);
            out.push(PlaneRowsMut {
                data: head,
                width,
                stride,
                rows,
                first_row: y,
            });
            rest = tail;
            y += rows;
        }
        out
    }
}

/// A mutable horizontal band of a [`Plane`]: rows `first_row..first_row+rows`.
pub struct PlaneRowsMut<'a, T> {
    data: &'a mut [T],
    width: usize,
    stride: usize,
    rows: usize,
    first_row: usize,
}

impl<T: Copy> PlaneRowsMut<'_, T> {
    /// Number of rows in the band.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Index of the band's first row within the parent plane.
    pub fn first_row(&self) -> usize {
        self.first_row
    }

    /// Band width (same as the parent plane's).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mutable local row `r` (`0..rows`).
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        let start = r * self.stride;
        &mut self.data[start..start + self.width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut p = Plane::<i32>::new(4, 3);
        p.set(2, 1, 42);
        assert_eq!(p.get(2, 1), 42);
        assert_eq!(p.get(0, 0), 0);
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn strided_rows_are_width_long() {
        let mut p = Plane::<i32>::with_stride(5, 2, 8);
        assert_eq!(p.stride(), 8);
        p.row_mut(1).copy_from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(p.row(1), &[1, 2, 3, 4, 5]);
        assert_eq!(p.row(0), &[0; 5]);
        assert_eq!(p.raw().len(), 16);
    }

    #[test]
    fn from_fn_coordinates() {
        let p = Plane::from_fn(3, 2, |x, y| (10 * y + x) as i32);
        assert_eq!(p.row(0), &[0, 1, 2]);
        assert_eq!(p.row(1), &[10, 11, 12]);
    }

    #[test]
    fn restride_preserves_samples() {
        let p = Plane::from_fn(4, 4, |x, y| (y * 4 + x) as i32);
        let q = p.restride(7);
        assert_eq!(q.stride(), 7);
        for y in 0..4 {
            assert_eq!(p.row(y), q.row(y));
        }
        let back = q.restride(4);
        assert_eq!(back, p);
    }

    #[test]
    fn crop_and_blit_invert() {
        let p = Plane::from_fn(6, 5, |x, y| (y * 6 + x) as i32);
        let c = p.crop(2, 1, 3, 2);
        assert_eq!(c.row(0), &[8, 9, 10]);
        assert_eq!(c.row(1), &[14, 15, 16]);
        let mut q = Plane::<i32>::new(6, 5);
        q.blit(&c, 2, 1);
        assert_eq!(q.get(3, 2), 15);
        assert_eq!(q.get(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "crop out of bounds")]
    fn crop_oob_panics() {
        let p = Plane::<i32>::new(4, 4);
        let _ = p.crop(2, 2, 3, 1);
    }

    #[test]
    fn map_applies_elementwise() {
        let p = Plane::from_fn(2, 2, |x, y| (x + y) as i32);
        let q = p.map(|v| v * 2);
        assert_eq!(q.row(0), &[0, 2]);
        assert_eq!(q.row(1), &[2, 4]);
    }

    #[test]
    fn split_rows_mut_disjoint_bands() {
        let mut p = Plane::from_fn(3, 6, |_, _| 0i32);
        {
            let mut bands = p.split_rows_mut(&[2, 3, 1]);
            assert_eq!(bands.len(), 3);
            assert_eq!(bands[1].first_row(), 2);
            assert_eq!(bands[1].rows(), 3);
            for band in &mut bands {
                let fr = band.first_row();
                for r in 0..band.rows() {
                    band.row_mut(r).fill((fr + r) as i32);
                }
            }
        }
        for y in 0..6 {
            assert!(p.row(y).iter().all(|&v| v == y as i32));
        }
    }

    #[test]
    fn samples_iterator_skips_padding() {
        let mut p = Plane::<i32>::with_stride(2, 2, 4);
        p.set(0, 0, 1);
        p.set(1, 0, 2);
        p.set(0, 1, 3);
        p.set(1, 1, 4);
        let v: Vec<i32> = p.samples().collect();
        assert_eq!(v, vec![1, 2, 3, 4]);
    }
}
