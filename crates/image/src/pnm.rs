//! Minimal PGM (P5/P2) and PPM (P6/P3) image I/O.
//!
//! Supports 8-bit maxval (<= 255). This is the on-disk interchange format of
//! the harness: the paper's Fig. 4 visual comparison is emitted as PGM crops,
//! and users can feed their own photographic material through these readers.

use crate::image::Image;
use crate::plane::Plane;
use std::io::{self, BufRead, Write};

/// Read a PGM or PPM image (binary or ASCII variant) from `r`.
///
/// # Errors
/// Returns `InvalidData` on malformed headers, unsupported magic numbers,
/// maxval > 255, or truncated pixel data.
pub fn read(r: &mut impl BufRead) -> io::Result<Image> {
    let magic = read_token(r)?;
    let (components, binary) = match magic.as_str() {
        "P5" => (1, true),
        "P2" => (1, false),
        "P6" => (3, true),
        "P3" => (3, false),
        other => {
            return Err(invalid(format!("unsupported PNM magic {other:?}")));
        }
    };
    let width: usize = parse_token(r, "width")?;
    let height: usize = parse_token(r, "height")?;
    let maxval: usize = parse_token(r, "maxval")?;
    if width == 0 || height == 0 {
        return Err(invalid("zero image dimension".into()));
    }
    if maxval == 0 || maxval > 255 {
        return Err(invalid(format!("unsupported maxval {maxval}")));
    }
    let n = width * height;
    let mut planes = vec![Plane::<i32>::new(width, height); components];
    if binary {
        let mut buf = vec![0u8; n * components];
        r.read_exact(&mut buf)?;
        for y in 0..height {
            for x in 0..width {
                let base = (y * width + x) * components;
                for (c, plane) in planes.iter_mut().enumerate() {
                    plane.set(x, y, i32::from(buf[base + c]));
                }
            }
        }
    } else {
        for y in 0..height {
            for x in 0..width {
                for plane in planes.iter_mut() {
                    let v: i32 = parse_token(r, "pixel")?;
                    if !(0..=maxval as i32).contains(&v) {
                        return Err(invalid(format!("sample {v} out of range")));
                    }
                    plane.set(x, y, v);
                }
            }
        }
    }
    Ok(Image::new(planes, 8, false))
}

/// Write `img` as binary PGM (1 component) or PPM (3 components).
///
/// Samples are clamped to `0..=255`.
///
/// # Errors
/// Propagates I/O errors; returns `InvalidInput` for component counts other
/// than 1 or 3.
pub fn write(w: &mut impl Write, img: &Image) -> io::Result<()> {
    let magic = match img.num_components() {
        1 => "P5",
        3 => "P6",
        n => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cannot write {n}-component image as PNM"),
            ));
        }
    };
    writeln!(w, "{magic}")?;
    writeln!(w, "{} {}", img.width(), img.height())?;
    writeln!(w, "255")?;
    let mut buf = Vec::with_capacity(img.pixels() * img.num_components());
    for y in 0..img.height() {
        for x in 0..img.width() {
            for c in 0..img.num_components() {
                buf.push(img.component(c).get(x, y).clamp(0, 255) as u8);
            }
        }
    }
    w.write_all(&buf)
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Read the next whitespace-separated token, skipping `#` comments.
fn read_token(r: &mut impl BufRead) -> io::Result<String> {
    let mut tok = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                if tok.is_empty() {
                    return Err(invalid("unexpected end of PNM header".into()));
                }
                return Ok(tok);
            }
            _ => {
                let ch = byte[0] as char;
                if in_comment {
                    if ch == '\n' {
                        in_comment = false;
                    }
                } else if ch == '#' && tok.is_empty() {
                    in_comment = true;
                } else if ch.is_ascii_whitespace() {
                    if !tok.is_empty() {
                        return Ok(tok);
                    }
                } else {
                    tok.push(ch);
                }
            }
        }
    }
}

fn parse_token<T: std::str::FromStr>(r: &mut impl BufRead, what: &str) -> io::Result<T> {
    let tok = read_token(r)?;
    tok.parse()
        .map_err(|_| invalid(format!("bad {what} token {tok:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(img: &Image) -> Image {
        let mut buf = Vec::new();
        write(&mut buf, img).unwrap();
        read(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn pgm_roundtrip() {
        let img = Image::gray8(Plane::from_fn(5, 3, |x, y| {
            ((x * 50 + y * 17) % 256) as i32
        }));
        assert_eq!(roundtrip(&img), img);
    }

    #[test]
    fn ppm_roundtrip() {
        let img = Image::rgb8(
            Plane::from_fn(4, 2, |x, _| (x * 60) as i32),
            Plane::from_fn(4, 2, |_, y| (y * 100) as i32),
            Plane::from_fn(4, 2, |x, y| ((x + y) * 30) as i32),
        );
        assert_eq!(roundtrip(&img), img);
    }

    #[test]
    fn ascii_pgm_with_comments() {
        let text = "P2\n# a comment\n3 2\n# another\n255\n0 1 2\n10 11 12\n";
        let img = read(&mut Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(img.component(0).row(0), &[0, 1, 2]);
        assert_eq!(img.component(0).row(1), &[10, 11, 12]);
    }

    #[test]
    fn ascii_ppm() {
        let text = "P3 2 1 255  1 2 3  4 5 6";
        let img = read(&mut Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(img.num_components(), 3);
        assert_eq!(img.component(0).row(0), &[1, 4]);
        assert_eq!(img.component(2).row(0), &[3, 6]);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read(&mut Cursor::new(b"P9 1 1 255 0".as_slice())).is_err());
    }

    #[test]
    fn rejects_big_maxval() {
        assert!(read(&mut Cursor::new(b"P5 1 1 65535 ".as_slice())).is_err());
    }

    #[test]
    fn rejects_truncated_binary() {
        assert!(read(&mut Cursor::new(b"P5 4 4 255 \x00\x01".as_slice())).is_err());
    }

    #[test]
    fn write_clamps_out_of_range() {
        let img = Image::gray8(Plane::from_vec(2, 1, vec![-20, 999]));
        let out = roundtrip(&img);
        assert_eq!(out.component(0).row(0), &[0, 255]);
    }
}
