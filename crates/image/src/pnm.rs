//! Minimal PGM (P5/P2) and PPM (P6/P3) image I/O.
//!
//! Supports 8-bit maxval (<= 255). This is the on-disk interchange format of
//! the harness: the paper's Fig. 4 visual comparison is emitted as PGM crops,
//! and users can feed their own photographic material through these readers.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::image::Image;
use crate::plane::Plane;
use std::io::{self, BufRead, Write};

/// Largest pixel count (`width * height`) the reader will allocate planes
/// for. A header is a few dozen bytes, so without a cap a tiny malicious
/// file could claim arbitrary dimensions and drive the process out of
/// memory before the (missing) pixel data is ever read.
const MAX_PIXELS: usize = 1 << 28;

/// Read a PGM or PPM image (binary or ASCII variant) from `r`.
///
/// # Errors
/// Returns `InvalidData` on malformed headers, unsupported magic numbers,
/// implausibly large dimensions, maxval > 255, or truncated pixel data.
pub fn read(r: &mut impl BufRead) -> io::Result<Image> {
    let magic = read_token(r)?;
    let (components, binary) = match magic.as_str() {
        "P5" => (1, true),
        "P2" => (1, false),
        "P6" => (3, true),
        "P3" => (3, false),
        other => {
            return Err(invalid(format!("unsupported PNM magic {other:?}")));
        }
    };
    let width: usize = parse_token(r, "width")?;
    let height: usize = parse_token(r, "height")?;
    let maxval: usize = parse_token(r, "maxval")?;
    if width == 0 || height == 0 {
        return Err(invalid("zero image dimension".into()));
    }
    let n = width
        .checked_mul(height)
        .filter(|&n| n <= MAX_PIXELS)
        .ok_or_else(|| invalid(format!("implausible image size {width}x{height}")))?;
    if maxval == 0 || maxval > 255 {
        return Err(invalid(format!("unsupported maxval {maxval}")));
    }
    let mut planes = vec![Plane::<i32>::new(width, height); components];
    if binary {
        // components <= 3 and n <= MAX_PIXELS, so this cannot overflow.
        let mut buf = vec![0u8; n.saturating_mul(components)];
        r.read_exact(&mut buf)?;
        let mut samples = buf.iter();
        for y in 0..height {
            for x in 0..width {
                for plane in planes.iter_mut() {
                    // The buffer holds exactly n * components samples in
                    // interleaved order; the iterator never runs dry.
                    let v = samples.next().copied().unwrap_or(0);
                    plane.set(x, y, i32::from(v));
                }
            }
        }
    } else {
        for y in 0..height {
            for x in 0..width {
                for plane in planes.iter_mut() {
                    let v: i32 = parse_token(r, "pixel")?;
                    if !(0..=maxval as i32).contains(&v) {
                        return Err(invalid(format!("sample {v} out of range")));
                    }
                    plane.set(x, y, v);
                }
            }
        }
    }
    Ok(Image::new(planes, 8, false))
}

/// Write `img` as binary PGM (1 component) or PPM (3 components).
///
/// Samples are clamped to `0..=255`.
///
/// # Errors
/// Propagates I/O errors; returns `InvalidInput` for component counts other
/// than 1 or 3.
// AUDIT(fn): writer side — operates on an in-memory `Image` this process
// built, never on untrusted bytes.
#[allow(clippy::arithmetic_side_effects)]
pub fn write(w: &mut impl Write, img: &Image) -> io::Result<()> {
    let magic = match img.num_components() {
        1 => "P5",
        3 => "P6",
        n => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cannot write {n}-component image as PNM"),
            ));
        }
    };
    writeln!(w, "{magic}")?;
    writeln!(w, "{} {}", img.width(), img.height())?;
    writeln!(w, "255")?;
    let mut buf = Vec::with_capacity(img.pixels() * img.num_components());
    for y in 0..img.height() {
        for x in 0..img.width() {
            for c in 0..img.num_components() {
                buf.push(img.component(c).get(x, y).clamp(0, 255) as u8);
            }
        }
    }
    w.write_all(&buf)
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Read the next whitespace-separated token, skipping `#` comments.
fn read_token(r: &mut impl BufRead) -> io::Result<String> {
    let mut tok = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                if tok.is_empty() {
                    return Err(invalid("unexpected end of PNM header".into()));
                }
                return Ok(tok);
            }
            _ => {
                // AUDIT: fixed index 0 into the 1-byte read buffer.
                #[allow(clippy::indexing_slicing)]
                let ch = byte[0] as char;
                if in_comment {
                    if ch == '\n' {
                        in_comment = false;
                    }
                } else if ch == '#' && tok.is_empty() {
                    in_comment = true;
                } else if ch.is_ascii_whitespace() {
                    if !tok.is_empty() {
                        return Ok(tok);
                    }
                } else {
                    tok.push(ch);
                }
            }
        }
    }
}

fn parse_token<T: std::str::FromStr>(r: &mut impl BufRead, what: &str) -> io::Result<T> {
    let tok = read_token(r)?;
    tok.parse()
        .map_err(|_| invalid(format!("bad {what} token {tok:?}")))
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(img: &Image) -> Image {
        let mut buf = Vec::new();
        write(&mut buf, img).unwrap();
        read(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn pgm_roundtrip() {
        let img = Image::gray8(Plane::from_fn(5, 3, |x, y| {
            ((x * 50 + y * 17) % 256) as i32
        }));
        assert_eq!(roundtrip(&img), img);
    }

    #[test]
    fn ppm_roundtrip() {
        let img = Image::rgb8(
            Plane::from_fn(4, 2, |x, _| (x * 60) as i32),
            Plane::from_fn(4, 2, |_, y| (y * 100) as i32),
            Plane::from_fn(4, 2, |x, y| ((x + y) * 30) as i32),
        );
        assert_eq!(roundtrip(&img), img);
    }

    #[test]
    fn ascii_pgm_with_comments() {
        let text = "P2\n# a comment\n3 2\n# another\n255\n0 1 2\n10 11 12\n";
        let img = read(&mut Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(img.component(0).row(0), &[0, 1, 2]);
        assert_eq!(img.component(0).row(1), &[10, 11, 12]);
    }

    #[test]
    fn ascii_ppm() {
        let text = "P3 2 1 255  1 2 3  4 5 6";
        let img = read(&mut Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(img.num_components(), 3);
        assert_eq!(img.component(0).row(0), &[1, 4]);
        assert_eq!(img.component(2).row(0), &[3, 6]);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read(&mut Cursor::new(b"P9 1 1 255 0".as_slice())).is_err());
    }

    #[test]
    fn rejects_big_maxval() {
        assert!(read(&mut Cursor::new(b"P5 1 1 65535 ".as_slice())).is_err());
    }

    #[test]
    fn rejects_truncated_binary() {
        assert!(read(&mut Cursor::new(b"P5 4 4 255 \x00\x01".as_slice())).is_err());
    }

    #[test]
    fn rejects_overflowing_dimensions() {
        // width * height would wrap usize; must be an error, not a panic
        // or a bogus allocation.
        let text = format!("P5 {} {} 255 ", usize::MAX, 3);
        assert!(read(&mut Cursor::new(text.as_bytes())).is_err());
        // Individually plausible but jointly over the pixel cap.
        assert!(read(&mut Cursor::new(b"P5 100000 100000 255 ".as_slice())).is_err());
    }

    #[test]
    fn rejects_malformed_header_tokens() {
        for bad in [
            &b"P5 -3 2 255 "[..],     // negative width
            &b"P5 abc 2 255 "[..],    // non-numeric width
            &b"P5 3 2 xyz "[..],      // non-numeric maxval
            &b"P5 3 2 0 "[..],        // zero maxval
            &b"P5 0 2 255 "[..],      // zero width
            &b"P5 3"[..],             // header ends mid-way
            &b"P2 2 1 255 1 boo"[..], // non-numeric ASCII sample
            &b"P2 2 1 255 1 700"[..], // ASCII sample out of range
            &b"P2 2 1 255 1"[..],     // truncated ASCII samples
        ] {
            assert!(read(&mut Cursor::new(bad)).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn write_clamps_out_of_range() {
        let img = Image::gray8(Plane::from_vec(2, 1, vec![-20, 999]));
        let out = roundtrip(&img);
        assert_eq!(out.component(0).row(0), &[0, 255]);
    }
}
