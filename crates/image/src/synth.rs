//! Deterministic synthetic test imagery.
//!
//! The paper evaluates on photographic material (Lena and a set of
//! differently sized images, 256 Kpixel up to 16384 Kpixel). That material is
//! not redistributable, so this module generates seeded synthetic images
//! with the statistics that matter for the experiments:
//!
//! * smooth, strongly correlated regions (so the wavelet transform compacts
//!   energy and R-D curves behave like natural images),
//! * hard edges (so tiling artifacts and ringing show up, Fig. 4/5),
//! * band-limited texture (so code-blocks have non-trivial bit-planes and
//!   Tier-1 cost is realistic).
//!
//! Timing experiments (Figs. 2, 3, 6–13) depend only on the pixel count, and
//! quality experiments compare codecs *on the same input*, so a deterministic
//! synthetic stand-in preserves the comparisons (DESIGN.md §2).

use crate::image::Image;
use crate::plane::Plane;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image sizes used throughout the paper's figures, in Kpixel
/// (256 Kpx = 512x512 ... 16384 Kpx = 4096x4096).
pub const PAPER_SIZES_KPIXEL: [usize; 7] = [256, 576, 1024, 2304, 4096, 9216, 16384];

/// Side length of the square image with `kpixels` Kpixel
/// (e.g. 256 -> 512, 16384 -> 4096).
///
/// # Panics
/// Panics unless `kpixels * 1024` is a perfect square, which holds for all
/// of [`PAPER_SIZES_KPIXEL`].
pub fn side_for_kpixels(kpixels: usize) -> usize {
    let n = kpixels * 1024;
    let side = (n as f64).sqrt().round() as usize;
    assert_eq!(side * side, n, "{kpixels} Kpixel is not a square image");
    side
}

/// Generate a grayscale "photographic-like" image: smooth background,
/// value-noise texture, and a few hard-edged objects. Deterministic in
/// (`width`, `height`, `seed`).
pub fn natural_gray(width: usize, height: usize, seed: u64) -> Image {
    Image::gray8(natural_plane(width, height, seed))
}

/// Generate an RGB image with correlated components (luma structure shared,
/// chroma varying slowly), as natural photographs have.
pub fn natural_rgb(width: usize, height: usize, seed: u64) -> Image {
    let luma = natural_plane(width, height, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let chroma_u = value_noise(width, height, 6, &mut rng);
    let chroma_v = value_noise(width, height, 6, &mut rng);
    let make = |scale_u: f64, scale_v: f64| {
        let mut p = Plane::<i32>::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let l = luma.get(x, y) as f64;
                let u = chroma_u.get(x, y) as f64 - 128.0;
                let v = chroma_v.get(x, y) as f64 - 128.0;
                let s = l + scale_u * u + scale_v * v;
                p.set(x, y, s.round().clamp(0.0, 255.0) as i32);
            }
        }
        p
    };
    Image::rgb8(make(0.3, 0.5), make(-0.2, 0.1), make(0.6, -0.4))
}

fn natural_plane(width: usize, height: usize, seed: u64) -> Plane<i32> {
    assert!(width > 0 && height > 0, "empty image");
    let mut rng = StdRng::seed_from_u64(seed);
    // Smooth base: a handful of low-frequency cosine sheets.
    let n_waves = 4;
    let waves: Vec<(f64, f64, f64, f64)> = (0..n_waves)
        .map(|_| {
            (
                rng.gen_range(0.5..2.5) * std::f64::consts::TAU / width.max(1) as f64,
                rng.gen_range(0.5..2.5) * std::f64::consts::TAU / height.max(1) as f64,
                rng.gen_range(0.0..std::f64::consts::TAU),
                rng.gen_range(12.0..30.0),
            )
        })
        .collect();
    let texture = value_noise(width, height, 5, &mut rng);
    let fine = value_noise(width, height, 3, &mut rng);
    // Hard-edged objects (ellipses) to provide edges for the R-D experiments.
    let n_objects = 6;
    #[allow(clippy::type_complexity)]
    let objects: Vec<(f64, f64, f64, f64, f64)> = (0..n_objects)
        .map(|_| {
            (
                rng.gen_range(0.0..width as f64),
                rng.gen_range(0.0..height as f64),
                rng.gen_range(0.05..0.25) * width as f64,
                rng.gen_range(0.05..0.25) * height as f64,
                rng.gen_range(-60.0..60.0),
            )
        })
        .collect();

    let mut p = Plane::<i32>::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let (xf, yf) = (x as f64, y as f64);
            let mut v = 128.0;
            for &(fx, fy, ph, amp) in &waves {
                v += amp * (fx * xf + fy * yf + ph).cos();
            }
            v += 0.35 * (texture.get(x, y) as f64 - 128.0);
            v += 0.12 * (fine.get(x, y) as f64 - 128.0);
            for &(cx, cy, rx, ry, delta) in &objects {
                let dx = (xf - cx) / rx;
                let dy = (yf - cy) / ry;
                if dx * dx + dy * dy < 1.0 {
                    v += delta;
                }
            }
            p.set(x, y, v.round().clamp(0.0, 255.0) as i32);
        }
    }
    p
}

/// Multi-octave value noise in `0..=255`: random lattice values, bilinear
/// interpolation, halving cell size per octave.
fn value_noise(width: usize, height: usize, base_log2_cell: u32, rng: &mut StdRng) -> Plane<i32> {
    let mut acc = vec![0.0f64; width * height];
    let mut amp = 1.0;
    let mut total_amp = 0.0;
    for octave in 0..3u32 {
        let cell = 1usize << base_log2_cell.saturating_sub(octave).max(1);
        let gw = width / cell + 2;
        let gh = height / cell + 2;
        let grid: Vec<f64> = (0..gw * gh).map(|_| rng.gen_range(0.0..1.0)).collect();
        for y in 0..height {
            let gy = y / cell;
            let fy = (y % cell) as f64 / cell as f64;
            for x in 0..width {
                let gx = x / cell;
                let fx = (x % cell) as f64 / cell as f64;
                let v00 = grid[gy * gw + gx];
                let v10 = grid[gy * gw + gx + 1];
                let v01 = grid[(gy + 1) * gw + gx];
                let v11 = grid[(gy + 1) * gw + gx + 1];
                let v = v00 * (1.0 - fx) * (1.0 - fy)
                    + v10 * fx * (1.0 - fy)
                    + v01 * (1.0 - fx) * fy
                    + v11 * fx * fy;
                acc[y * width + x] += amp * v;
            }
        }
        total_amp += amp;
        amp *= 0.5;
    }
    let mut p = Plane::<i32>::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let v = acc[y * width + x] / total_amp;
            p.set(x, y, (v * 255.0).round() as i32);
        }
    }
    p
}

/// Simple horizontal gradient image (deterministic, no RNG) for smoke tests.
pub fn gradient(width: usize, height: usize) -> Image {
    Image::gray8(Plane::from_fn(width, height, |x, _| {
        ((x * 255) / width.max(1)) as i32
    }))
}

/// Checkerboard with `cell`-sized squares — a worst case for wavelet coders,
/// useful for stressing Tier-1 bit-plane coding.
pub fn checkerboard(width: usize, height: usize, cell: usize) -> Image {
    let cell = cell.max(1);
    Image::gray8(Plane::from_fn(width, height, |x, y| {
        if ((x / cell) + (y / cell)).is_multiple_of(2) {
            230
        } else {
            25
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_are_squares() {
        for k in PAPER_SIZES_KPIXEL {
            let side = side_for_kpixels(k);
            assert_eq!(side * side, k * 1024);
        }
        assert_eq!(side_for_kpixels(256), 512);
        assert_eq!(side_for_kpixels(16384), 4096);
    }

    #[test]
    fn natural_is_deterministic() {
        let a = natural_gray(64, 48, 7);
        let b = natural_gray(64, 48, 7);
        assert_eq!(a, b);
        let c = natural_gray(64, 48, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn natural_range_and_variation() {
        let img = natural_gray(128, 128, 3);
        let p = img.component(0);
        let mut min = i32::MAX;
        let mut max = i32::MIN;
        for v in p.samples() {
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min >= 0 && max <= 255);
        assert!(
            max - min > 50,
            "image should have contrast, got {min}..{max}"
        );
    }

    #[test]
    fn natural_is_locally_correlated() {
        // Natural-like images have small average horizontal differences
        // compared to their global dynamic range.
        let img = natural_gray(256, 256, 1);
        let p = img.component(0);
        let mut diff_sum = 0i64;
        let mut n = 0i64;
        for y in 0..p.height() {
            let row = p.row(y);
            for x in 1..p.width() {
                diff_sum += i64::from((row[x] - row[x - 1]).abs());
                n += 1;
            }
        }
        let mean_diff = diff_sum as f64 / n as f64;
        assert!(
            mean_diff < 20.0,
            "mean |dx| {mean_diff} too large for natural-like"
        );
    }

    #[test]
    fn rgb_components_share_structure() {
        let img = natural_rgb(64, 64, 5);
        assert_eq!(img.num_components(), 3);
        // All components in range.
        for c in 0..3 {
            for v in img.component(c).samples() {
                assert!((0..=255).contains(&v));
            }
        }
    }

    #[test]
    fn checkerboard_alternates() {
        let img = checkerboard(8, 8, 2);
        let p = img.component(0);
        assert_eq!(p.get(0, 0), 230);
        assert_eq!(p.get(2, 0), 25);
        assert_eq!(p.get(2, 2), 230);
    }

    #[test]
    fn gradient_monotone() {
        let img = gradient(100, 2);
        let row = img.component(0).row(0);
        for pair in row.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }
}
