//! Property tests for the image substrate.

use pj2k_image::transform::{
    dc_level_shift_forward, dc_level_shift_inverse, ict_forward, ict_inverse, rct_forward,
    rct_inverse,
};
use pj2k_image::{pnm, tile, Image, Plane};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_gray() -> impl Strategy<Value = Image> {
    (1usize..40, 1usize..40, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut state = seed | 1;
        Image::gray8(Plane::from_fn(w, h, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 256) as i32
        }))
    })
}

fn arb_rgb() -> impl Strategy<Value = Image> {
    (1usize..24, 1usize..24, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut state = seed | 1;
        let mut gen = move || {
            let mut mk = |_x: usize, _y: usize| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % 256) as i32
            };
            Plane::from_fn(w, h, &mut mk)
        };
        Image::rgb8(gen(), gen(), gen())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pnm_roundtrip_gray(img in arb_gray()) {
        let mut buf = Vec::new();
        pnm::write(&mut buf, &img).unwrap();
        let back = pnm::read(&mut Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn pnm_roundtrip_rgb(img in arb_rgb()) {
        let mut buf = Vec::new();
        pnm::write(&mut buf, &img).unwrap();
        let back = pnm::read(&mut Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, img);
    }

    /// The reversible color transform is exactly invertible on the full
    /// post-DC-shift range.
    #[test]
    fn rct_roundtrip(img in arb_rgb()) {
        let mut work = img.clone();
        dc_level_shift_forward(&mut work);
        let planes = work.into_components();
        let (mut r, mut g, mut b) = (planes[0].clone(), planes[1].clone(), planes[2].clone());
        let (r0, g0, b0) = (r.clone(), g.clone(), b.clone());
        rct_forward(&mut r, &mut g, &mut b);
        rct_inverse(&mut r, &mut g, &mut b);
        prop_assert_eq!(r, r0);
        prop_assert_eq!(g, g0);
        prop_assert_eq!(b, b0);
    }

    /// The irreversible color transform round-trips within float noise.
    #[test]
    fn ict_roundtrip(img in arb_rgb()) {
        let planes = img.components();
        let mut r = planes[0].map(|v| v as f32);
        let mut g = planes[1].map(|v| v as f32);
        let mut b = planes[2].map(|v| v as f32);
        let (r0, g0, b0) = (r.clone(), g.clone(), b.clone());
        ict_forward(&mut r, &mut g, &mut b);
        ict_inverse(&mut r, &mut g, &mut b);
        for y in 0..img.height() {
            for x in 0..img.width() {
                prop_assert!((r.get(x, y) - r0.get(x, y)).abs() < 1e-2);
                prop_assert!((g.get(x, y) - g0.get(x, y)).abs() < 1e-2);
                prop_assert!((b.get(x, y) - b0.get(x, y)).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn dc_shift_roundtrip(img in arb_gray()) {
        let mut work = img.clone();
        dc_level_shift_forward(&mut work);
        dc_level_shift_inverse(&mut work);
        prop_assert_eq!(work, img);
    }

    /// Any tile grid splits and reassembles losslessly.
    #[test]
    fn tiling_roundtrip(img in arb_gray(), tw in 1usize..48, th in 1usize..48) {
        let grid = tile::TileGrid::new(img.width(), img.height(), tw, th);
        let tiles = tile::split(&img, &grid);
        prop_assert_eq!(tiles.len(), grid.len());
        let back = tile::assemble(&tiles, &grid, 8, false);
        prop_assert_eq!(back, img);
    }

    /// Crop then blit restores the region; restride preserves samples.
    #[test]
    fn plane_geometry_ops(img in arb_gray(), pad in 0usize..9) {
        let p = img.component(0);
        let restrided = p.restride(p.width() + pad);
        for y in 0..p.height() {
            prop_assert_eq!(restrided.row(y), p.row(y));
        }
        let (w, h) = (p.width(), p.height());
        let crop = p.crop(w / 4, h / 4, w - w / 2, h - h / 2);
        let mut canvas = Plane::<i32>::new(w, h);
        canvas.blit(&crop, w / 4, h / 4);
        for y in h / 4..h / 4 + crop.height() {
            for x in w / 4..w / 4 + crop.width() {
                prop_assert_eq!(canvas.get(x, y), p.get(x, y));
            }
        }
    }

    /// PNM reader is total on arbitrary bytes (errors, never panics).
    #[test]
    fn pnm_reader_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = pnm::read(&mut Cursor::new(bytes));
    }
}
