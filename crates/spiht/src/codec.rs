//! The SPIHT coding engine: sorting and refinement passes over LIP/LIS/LSP.

use crate::bitio::{BudgetBitWriter, ExactBitReader};
use crate::tree::{children, DescendantMax};
use pj2k_dwt::{forward_53, inverse_53, VerticalStrategy};
use pj2k_image::transform::{dc_level_shift_forward, dc_level_shift_inverse};
use pj2k_image::{Image, Plane};
use pj2k_parutil::Exec;

/// SPIHT codec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpihtError(pub String);

impl std::fmt::Display for SpihtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spiht error: {}", self.0)
    }
}

impl std::error::Error for SpihtError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetKind {
    /// All descendants.
    A,
    /// Descendants excluding children.
    B,
}

/// Encode a grayscale, square, power-of-two image at `bpp` bits per pixel.
///
/// # Errors
/// Rejects non-square, non-dyadic, or multi-component images.
pub fn encode(img: &Image, levels: u8, bpp: f64) -> Result<Vec<u8>, SpihtError> {
    let n = img.width();
    if img.num_components() != 1 {
        return Err(SpihtError("SPIHT comparator is grayscale-only".into()));
    }
    if img.height() != n || !n.is_power_of_two() || n < 4 {
        return Err(SpihtError(format!(
            "image must be square power-of-two, got {}x{}",
            n,
            img.height()
        )));
    }
    let levels = levels.clamp(1, (n.trailing_zeros() as u8).saturating_sub(1));
    let s = n >> levels;
    debug_assert!(s >= 2);

    // Wavelet transform (shared 5/3).
    let mut work = img.clone();
    dc_level_shift_forward(&mut work);
    let mut plane = work.component(0).clone();
    forward_53(
        &mut plane,
        levels,
        VerticalStrategy::DEFAULT_STRIP,
        &Exec::SEQ,
    );

    let mag: Vec<u32> = (0..n * n)
        .map(|i| plane.get(i % n, i / n).unsigned_abs())
        .collect();
    let neg: Vec<bool> = (0..n * n).map(|i| plane.get(i % n, i / n) < 0).collect();
    let dm = DescendantMax::build(&mag, n, s);
    let max_mag = *mag.iter().max().unwrap();
    let n_start: i32 = if max_mag == 0 {
        -1
    } else {
        (31 - max_mag.leading_zeros()) as i32
    };

    let budget_bits = (bpp * (n * n) as f64).max(0.0) as u64;
    let mut w = BudgetBitWriter::new(budget_bits);

    // State lists.
    let mut lip: Vec<(usize, usize)> = Vec::new();
    let mut lis: Vec<(usize, usize, SetKind)> = Vec::new();
    let mut lsp: Vec<(usize, usize)> = Vec::new();
    for y in 0..s {
        for x in 0..s {
            lip.push((x, y));
            if children(x, y, n, s).is_some() {
                lis.push((x, y, SetKind::A));
            }
        }
    }

    let sig = |m: u32, plane: i32| -> u8 { u8::from(plane >= 0 && m >> plane != 0) };

    let mut plane_n = n_start;
    'outer: while plane_n >= 0 {
        let t = plane_n;
        let lsp_before = lsp.len();
        // --- sorting pass: LIP --------------------------------------------
        let mut new_lip = Vec::with_capacity(lip.len());
        for &(x, y) in &lip {
            let m = mag[y * n + x];
            let b = sig(m, t);
            if !w.put(b) {
                break 'outer;
            }
            if b == 1 {
                if !w.put(u8::from(neg[y * n + x])) {
                    break 'outer;
                }
                lsp.push((x, y));
            } else {
                new_lip.push((x, y));
            }
        }
        lip = new_lip;
        // --- sorting pass: LIS --------------------------------------------
        // Entries appended during the pass are processed within the same
        // pass; retained entries move to `next_lis` (O(1) "removal").
        let mut next_lis: Vec<(usize, usize, SetKind)> = Vec::with_capacity(lis.len());
        let mut i = 0;
        while i < lis.len() {
            let (x, y, kind) = lis[i];
            i += 1;
            match kind {
                SetKind::A => {
                    let b = sig(dm.d(x, y), t);
                    if !w.put(b) {
                        break 'outer; // budget exhausted: encoder state is final
                    }
                    if b == 1 {
                        let kids = children(x, y, n, s).expect("type-A entries have children");
                        let mut aborted = false;
                        for (cx, cy) in kids {
                            let cm = mag[cy * n + cx];
                            let cb = sig(cm, t);
                            if !w.put(cb) {
                                aborted = true;
                                break;
                            }
                            if cb == 1 {
                                if !w.put(u8::from(neg[cy * n + cx])) {
                                    aborted = true;
                                    break;
                                }
                                lsp.push((cx, cy));
                            } else {
                                lip.push((cx, cy));
                            }
                        }
                        if aborted {
                            break 'outer;
                        }
                        // L(x, y) nonempty iff grandchildren exist.
                        if kids
                            .iter()
                            .any(|&(cx, cy)| children(cx, cy, n, s).is_some())
                        {
                            lis.push((x, y, SetKind::B));
                        }
                    } else {
                        next_lis.push((x, y, kind));
                    }
                }
                SetKind::B => {
                    let b = sig(dm.l(x, y), t);
                    if !w.put(b) {
                        break 'outer; // budget exhausted: encoder state is final
                    }
                    if b == 1 {
                        for (cx, cy) in children(x, y, n, s).expect("type-B has children") {
                            lis.push((cx, cy, SetKind::A));
                        }
                    } else {
                        next_lis.push((x, y, kind));
                    }
                }
            }
        }
        lis = next_lis;
        // --- refinement pass -----------------------------------------------
        for &(x, y) in &lsp[..lsp_before] {
            let bit = ((mag[y * n + x] >> t) & 1) as u8;
            if !w.put(bit) {
                break 'outer;
            }
        }
        plane_n -= 1;
    }

    let bit_len = w.bit_len();
    let payload = w.finish();
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(b"SPHT");
    out.extend_from_slice(&(n as u32).to_be_bytes());
    out.push(levels);
    out.push(n_start.max(0) as u8);
    out.push(u8::from(n_start >= 0));
    out.extend_from_slice(&bit_len.to_be_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Decode a SPIHT stream (possibly truncated at any byte).
///
/// # Errors
/// Returns [`SpihtError`] on malformed headers.
pub fn decode(data: &[u8]) -> Result<Image, SpihtError> {
    if data.len() < 19 || &data[..4] != b"SPHT" {
        return Err(SpihtError("bad header".into()));
    }
    let n = u32::from_be_bytes(data[4..8].try_into().unwrap()) as usize;
    let levels = data[8];
    let n_start = i32::from(data[9]);
    let nonzero = data[10] != 0;
    let bit_len = u64::from_be_bytes(data[11..19].try_into().unwrap());
    if !n.is_power_of_two() || !(4..=16384).contains(&n) || levels == 0 || n >> levels < 2 {
        return Err(SpihtError("bad geometry".into()));
    }
    let s = n >> levels;
    let mut r = ExactBitReader::new(&data[19..], bit_len);

    let mut mag = vec![0u32; n * n];
    let mut neg = vec![false; n * n];
    // Plane of each coefficient's most recent decoded bit (for the
    // per-coefficient midpoint reconstruction below).
    let mut known = vec![0u8; n * n];
    let mut lip: Vec<(usize, usize)> = Vec::new();
    let mut lis: Vec<(usize, usize, SetKind)> = Vec::new();
    let mut lsp: Vec<(usize, usize)> = Vec::new();
    for y in 0..s {
        for x in 0..s {
            lip.push((x, y));
            if children(x, y, n, s).is_some() {
                lis.push((x, y, SetKind::A));
            }
        }
    }

    let mut plane_n = if nonzero { n_start } else { -1 };
    'outer: while plane_n >= 0 {
        let t = plane_n as u32;
        let lsp_before = lsp.len();
        let mut new_lip = Vec::with_capacity(lip.len());
        for &(x, y) in &lip {
            let b = match r.get() {
                Some(b) => b,
                None => break 'outer, // decoding stops for good; LIP state is moot
            };
            if b == 1 {
                let sgn = match r.get() {
                    Some(s) => s,
                    None => break 'outer,
                };
                mag[y * n + x] = 1 << t;
                known[y * n + x] = t as u8;
                neg[y * n + x] = sgn == 1;
                lsp.push((x, y));
            } else {
                new_lip.push((x, y));
            }
        }
        lip = new_lip;
        let mut next_lis: Vec<(usize, usize, SetKind)> = Vec::with_capacity(lis.len());
        let mut i = 0;
        let mut exhausted = false;
        while i < lis.len() {
            let (x, y, kind) = lis[i];
            i += 1;
            match kind {
                SetKind::A => {
                    let b = match r.get() {
                        Some(b) => b,
                        None => {
                            exhausted = true;
                            break;
                        }
                    };
                    if b == 1 {
                        let kids = children(x, y, n, s).expect("type-A entries have children");
                        let mut aborted = false;
                        for (cx, cy) in kids {
                            let cb = match r.get() {
                                Some(b) => b,
                                None => {
                                    aborted = true;
                                    break;
                                }
                            };
                            if cb == 1 {
                                let sgn = match r.get() {
                                    Some(s) => s,
                                    None => {
                                        aborted = true;
                                        break;
                                    }
                                };
                                mag[cy * n + cx] = 1 << t;
                                known[cy * n + cx] = t as u8;
                                neg[cy * n + cx] = sgn == 1;
                                lsp.push((cx, cy));
                            } else {
                                lip.push((cx, cy));
                            }
                        }
                        if aborted {
                            exhausted = true;
                            break;
                        }
                        if kids
                            .iter()
                            .any(|&(cx, cy)| children(cx, cy, n, s).is_some())
                        {
                            lis.push((x, y, SetKind::B));
                        }
                    } else {
                        next_lis.push((x, y, kind));
                    }
                }
                SetKind::B => {
                    let b = match r.get() {
                        Some(b) => b,
                        None => {
                            exhausted = true;
                            break;
                        }
                    };
                    if b == 1 {
                        for (cx, cy) in children(x, y, n, s).expect("type-B has children") {
                            lis.push((cx, cy, SetKind::A));
                        }
                    } else {
                        next_lis.push((x, y, kind));
                    }
                }
            }
        }
        lis = next_lis;
        if exhausted {
            break 'outer;
        }
        for &(x, y) in &lsp[..lsp_before] {
            let bit = match r.get() {
                Some(b) => b,
                None => break 'outer,
            };
            mag[y * n + x] |= u32::from(bit) << t;
            known[y * n + x] = t as u8;
        }
        plane_n -= 1;
    }

    // Per-coefficient midpoint reconstruction: each magnitude is known down
    // to the plane of its last decoded bit.
    let mut plane = Plane::<i32>::new(n, n);
    for y in 0..n {
        for x in 0..n {
            let m = mag[y * n + x];
            if m != 0 {
                let k = known[y * n + x];
                let half = if k > 0 { 1u32 << (k - 1) } else { 0 };
                let v = (m + half) as i32;
                plane.set(x, y, if neg[y * n + x] { -v } else { v });
            }
        }
    }
    inverse_53(
        &mut plane,
        levels,
        VerticalStrategy::DEFAULT_STRIP,
        &Exec::SEQ,
    );
    let mut img = Image::gray8(plane);
    dc_level_shift_inverse(&mut img);
    img.clamp_to_depth();
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pj2k_image::metrics::psnr;
    use pj2k_image::synth;

    #[test]
    fn high_rate_reconstruction_is_good() {
        let img = synth::natural_gray(64, 64, 3);
        let bytes = encode(&img, 4, 4.0).unwrap();
        let out = decode(&bytes).unwrap();
        let q = psnr(&img, &out);
        assert!(q > 35.0, "4 bpp psnr {q}");
    }

    #[test]
    fn rate_distortion_is_monotone() {
        let img = synth::natural_gray(128, 128, 4);
        let mut prev = 0.0;
        for bpp in [0.125, 0.5, 1.0, 2.0] {
            let bytes = encode(&img, 5, bpp).unwrap();
            assert!(
                bytes.len() <= (bpp * 128.0 * 128.0 / 8.0) as usize + 32,
                "rate overshoot at {bpp}: {}",
                bytes.len()
            );
            let out = decode(&bytes).unwrap();
            let q = psnr(&img, &out);
            assert!(q > prev, "bpp {bpp}: {q} <= {prev}");
            prev = q;
        }
        assert!(prev > 28.0, "2 bpp psnr {prev}");
    }

    #[test]
    fn lossless_when_budget_huge() {
        // 5/3 is reversible: with unlimited budget SPIHT decodes exactly.
        let img = synth::natural_gray(32, 32, 9);
        let bytes = encode(&img, 3, 64.0).unwrap();
        let out = decode(&bytes).unwrap();
        assert_eq!(pj2k_image::metrics::max_abs_error(&img, &out), 0);
    }

    #[test]
    fn flat_image_codes_in_few_bits() {
        let img = Image::gray8(Plane::from_fn(64, 64, |_, _| 77));
        let bytes = encode(&img, 4, 8.0).unwrap();
        let out = decode(&bytes).unwrap();
        assert_eq!(pj2k_image::metrics::max_abs_error(&img, &out), 0);
        assert!(bytes.len() < 1200, "{} bytes", bytes.len());
    }

    #[test]
    fn zero_image_roundtrip() {
        let img = Image::gray8(Plane::new(16, 16));
        let bytes = encode(&img, 2, 1.0).unwrap();
        let out = decode(&bytes).unwrap();
        // All-zero *after DC shift* would be gray 128; zero input has
        // magnitude 128 everywhere, so just check exactness at high rate.
        let bytes2 = encode(&img, 2, 32.0).unwrap();
        let out2 = decode(&bytes2).unwrap();
        assert_eq!(pj2k_image::metrics::max_abs_error(&img, &out2), 0);
        let _ = out;
    }

    #[test]
    fn truncation_at_any_byte_decodes() {
        let img = synth::natural_gray(32, 32, 5);
        let bytes = encode(&img, 3, 2.0).unwrap();
        for cut in (20..bytes.len()).step_by(13) {
            let mut data = bytes[..cut].to_vec();
            // keep header valid but lie about nothing: bit_len > available
            // bits is clamped by the reader.
            let out = decode(&data).unwrap();
            assert_eq!(out.width(), 32);
            data.clear();
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let rgb = synth::natural_rgb(32, 32, 1);
        assert!(encode(&rgb, 3, 1.0).is_err());
        let rect = synth::natural_gray(32, 16, 1);
        assert!(encode(&rect, 3, 1.0).is_err());
        let npo2 = synth::natural_gray(48, 48, 1);
        assert!(encode(&npo2, 3, 1.0).is_err());
        assert!(decode(b"not spiht").is_err());
    }
}
