//! SPIHT comparator codec (Said & Pearlman, IEEE TCSVT 1996).
//!
//! The paper's Fig. 2 places SPIHT between JPEG (fastest) and the JPEG2000
//! implementations (slowest). This crate implements the original algorithm:
//! a wavelet transform (the shared reversible 5/3 from [`pj2k_dwt`]),
//! spatial-orientation trees across subbands, and the
//! LIP/LIS/LSP set-partitioning sorting + refinement passes producing a
//! fully embedded bitstream (no arithmetic coder, as in the original
//! "binary-uncoded" SPIHT).
//!
//! Restriction: square power-of-two images (the paper's test sizes are all
//! dyadic squares). The set-partitioning parent/child relations assume the
//! dyadic Mallat layout.

pub mod bitio;
pub mod codec;
pub mod tree;

pub use codec::{decode, encode, SpihtError};
