//! Budgeted bit I/O for the embedded SPIHT stream.

/// Bit writer that refuses to exceed a bit budget, so the encoder can stop
/// mid-pass exactly at the rate target.
#[derive(Debug)]
pub struct BudgetBitWriter {
    out: Vec<u8>,
    acc: u8,
    filled: u8,
    written: u64,
    budget: u64,
}

impl BudgetBitWriter {
    /// Writer that accepts at most `budget_bits` bits.
    pub fn new(budget_bits: u64) -> Self {
        Self {
            out: Vec::new(),
            acc: 0,
            filled: 0,
            written: 0,
            budget: budget_bits,
        }
    }

    /// Append one bit; returns `false` (without writing) once the budget is
    /// exhausted.
    #[must_use]
    pub fn put(&mut self, bit: u8) -> bool {
        if self.written >= self.budget {
            return false;
        }
        self.acc = (self.acc << 1) | (bit & 1);
        self.filled += 1;
        self.written += 1;
        if self.filled == 8 {
            self.out.push(self.acc);
            self.acc = 0;
            self.filled = 0;
        }
        true
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.written
    }

    /// Flush (zero-padding the last byte) and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.out.push(self.acc << (8 - self.filled));
        }
        self.out
    }
}

/// Bit reader that knows the exact payload bit count and reports exhaustion.
#[derive(Debug)]
pub struct ExactBitReader<'a> {
    data: &'a [u8],
    pos: u64,
    len_bits: u64,
}

impl<'a> ExactBitReader<'a> {
    /// Read `len_bits` bits from `data`.
    pub fn new(data: &'a [u8], len_bits: u64) -> Self {
        Self {
            data,
            pos: 0,
            len_bits: len_bits.min(data.len() as u64 * 8),
        }
    }

    /// Next bit, or `None` when the stream is exhausted.
    pub fn get(&mut self) -> Option<u8> {
        if self.pos >= self.len_bits {
            return None;
        }
        let byte = self.data[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let pattern: Vec<u8> = (0..77).map(|i| ((i * 5 + 2) % 3 == 0) as u8).collect();
        let mut w = BudgetBitWriter::new(1000);
        for &b in &pattern {
            assert!(w.put(b));
        }
        let n = w.bit_len();
        let bytes = w.finish();
        let mut r = ExactBitReader::new(&bytes, n);
        for &b in &pattern {
            assert_eq!(r.get(), Some(b));
        }
        assert_eq!(r.get(), None);
    }

    #[test]
    fn budget_is_enforced() {
        let mut w = BudgetBitWriter::new(5);
        for _ in 0..5 {
            assert!(w.put(1));
        }
        assert!(!w.put(1));
        assert_eq!(w.bit_len(), 5);
        assert_eq!(w.finish(), vec![0b1111_1000]);
    }

    #[test]
    fn reader_clamps_to_data() {
        let mut r = ExactBitReader::new(&[0xFF], 100);
        for _ in 0..8 {
            assert_eq!(r.get(), Some(1));
        }
        assert_eq!(r.get(), None);
    }
}
