//! Spatial-orientation trees over the dyadic Mallat layout.
//!
//! For a `n x n` plane decomposed `L` levels, the deepest `LL` band is
//! `s x s` with `s = n >> L`. Tree roots are the `LL` coefficients; in each
//! 2x2 `LL` group the top-left member has no descendants and the other
//! three root the trees of the `HL_L`, `LH_L`, `HH_L` bands. Below `LL`,
//! the children of `(x, y)` are the 2x2 block at `(2x, 2y)`.

/// Children of coefficient `(x, y)`, if any.
///
/// `n` is the plane side, `s` the deepest-LL side.
pub fn children(x: usize, y: usize, n: usize, s: usize) -> Option<[(usize, usize); 4]> {
    if x < s && y < s {
        // LL root.
        let (gx, gy) = (x & !1, y & !1);
        let (ox, oy) = (x - gx, y - gy);
        if (ox, oy) == (0, 0) {
            return None;
        }
        if s < 2 {
            return None; // degenerate 1x1 LL has no sibling structure
        }
        let (bx0, by0) = (ox * s, oy * s);
        let (cx, cy) = (bx0 + gx, by0 + gy);
        Some([(cx, cy), (cx + 1, cy), (cx, cy + 1), (cx + 1, cy + 1)])
    } else {
        // Detail coefficient: children at (2x, 2y) while inside the plane.
        if 2 * x >= n || 2 * y >= n {
            return None;
        }
        Some([
            (2 * x, 2 * y),
            (2 * x + 1, 2 * y),
            (2 * x, 2 * y + 1),
            (2 * x + 1, 2 * y + 1),
        ])
    }
}

/// Bottom-up maxima used by the encoder to answer set-significance queries
/// in O(1):
///
/// * `dmax[(x, y)]` — max magnitude over **all** descendants of `(x, y)`
///   (excluding the coefficient itself),
/// * `lmax[(x, y)]` — max magnitude over descendants **excluding children**
///   (the `L(x, y)` set).
pub struct DescendantMax {
    n: usize,
    dmax: Vec<u32>,
    lmax: Vec<u32>,
}

impl DescendantMax {
    /// Build from magnitudes (row-major `n x n`), for LL side `s`.
    pub fn build(mag: &[u32], n: usize, s: usize) -> Self {
        let mut dm = DescendantMax {
            n,
            dmax: vec![0; n * n],
            lmax: vec![0; n * n],
        };
        // Process coefficients from finest to coarsest: simply iterate in
        // decreasing "pyramid order" by processing coordinates whose
        // children are already done. A reverse raster over the plane works
        // because children always have strictly larger max(x, y)... except
        // LL roots whose children live in same-range bands; handle LL in a
        // second pass.
        let mut order: Vec<(usize, usize)> = (0..n * n).map(|i| (i % n, i / n)).collect();
        order.sort_by_key(|&(x, y)| std::cmp::Reverse(x.max(y)));
        for (x, y) in order {
            if x < s && y < s {
                continue; // LL handled after all detail bands
            }
            dm.fill_node(mag, x, y, s);
        }
        for y in 0..s.min(n) {
            for x in 0..s.min(n) {
                dm.fill_node(mag, x, y, s);
            }
        }
        dm
    }

    fn fill_node(&mut self, mag: &[u32], x: usize, y: usize, s: usize) {
        if let Some(kids) = children(x, y, self.n, s) {
            let mut d = 0u32;
            let mut l = 0u32;
            for (cx, cy) in kids {
                let ci = cy * self.n + cx;
                d = d.max(mag[ci]).max(self.dmax[ci]);
                l = l.max(self.dmax[ci]);
            }
            self.dmax[y * self.n + x] = d;
            self.lmax[y * self.n + x] = l;
        }
    }

    /// Max magnitude among all descendants of `(x, y)`.
    pub fn d(&self, x: usize, y: usize) -> u32 {
        self.dmax[y * self.n + x]
    }

    /// Max magnitude among descendants excluding direct children.
    pub fn l(&self, x: usize, y: usize) -> u32 {
        self.lmax[y * self.n + x]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ll_group_structure() {
        // 8x8 plane, 2 levels -> s = 2.
        let (n, s) = (8, 2);
        assert_eq!(children(0, 0, n, s), None, "top-left of the group");
        assert_eq!(
            children(1, 0, n, s),
            Some([(2, 0), (3, 0), (2, 1), (3, 1)]),
            "HL root"
        );
        assert_eq!(
            children(0, 1, n, s),
            Some([(0, 2), (1, 2), (0, 3), (1, 3)]),
            "LH root"
        );
        assert_eq!(
            children(1, 1, n, s),
            Some([(2, 2), (3, 2), (2, 3), (3, 3)]),
            "HH root"
        );
    }

    #[test]
    fn detail_children_double() {
        let (n, s) = (8, 2);
        assert_eq!(children(2, 0, n, s), Some([(4, 0), (5, 0), (4, 1), (5, 1)]));
        // Finest band has no children.
        assert_eq!(children(4, 0, n, s), None);
        assert_eq!(children(7, 7, n, s), None);
    }

    #[test]
    fn every_non_root_has_exactly_one_parent() {
        let (n, s) = (16, 4);
        let mut parent_count = vec![0u32; n * n];
        for y in 0..n {
            for x in 0..n {
                if let Some(kids) = children(x, y, n, s) {
                    for (cx, cy) in kids {
                        parent_count[cy * n + cx] += 1;
                    }
                }
            }
        }
        for y in 0..n {
            for x in 0..n {
                let expected = u32::from(!(x < s && y < s));
                assert_eq!(parent_count[y * n + x], expected, "({x},{y})");
            }
        }
    }

    #[test]
    fn descendant_max_is_true_max() {
        let (n, s) = (8, 2);
        let mut mag = vec![0u32; 64];
        mag[7 * 8 + 7] = 42; // deepest corner (HH, finest)
        let dm = DescendantMax::build(&mag, n, s);
        // Its ancestors: (3,3) HH_2 -> root (1,1).
        assert_eq!(dm.d(3, 3), 42);
        assert_eq!(dm.d(1, 1), 42);
        assert_eq!(dm.l(1, 1), 42, "grandchild, so in L(1,1)");
        assert_eq!(dm.d(0, 0), 0);
        assert_eq!(dm.d(1, 0), 0, "HL tree does not see HH leaf");
    }

    #[test]
    fn lmax_excludes_children() {
        let (n, s) = (8, 2);
        let mut mag = vec![0u32; 64];
        mag[8 * 2 + 2] = 9; // (2,2): child of root (1,1)
        let dm = DescendantMax::build(&mag, n, s);
        assert_eq!(dm.d(1, 1), 9);
        assert_eq!(dm.l(1, 1), 0, "child magnitude not in L");
    }

    #[test]
    fn brute_force_cross_check() {
        let (n, s) = (16, 2);
        let mag: Vec<u32> = (0..n * n)
            .map(|i| ((i * 2654435761usize) % 97) as u32)
            .collect();
        let dm = DescendantMax::build(&mag, n, s);
        // recursive reference
        fn desc_max(
            mag: &[u32],
            x: usize,
            y: usize,
            n: usize,
            s: usize,
            skip_children: bool,
        ) -> u32 {
            match children(x, y, n, s) {
                None => 0,
                Some(kids) => {
                    let mut m = 0;
                    for (cx, cy) in kids {
                        if !skip_children {
                            m = m.max(mag[cy * n + cx]);
                        }
                        m = m.max(desc_max(mag, cx, cy, n, s, false));
                    }
                    m
                }
            }
        }
        for y in 0..n {
            for x in 0..n {
                assert_eq!(dm.d(x, y), desc_max(&mag, x, y, n, s, false), "d({x},{y})");
                assert_eq!(dm.l(x, y), desc_max(&mag, x, y, n, s, true), "l({x},{y})");
            }
        }
    }
}
