//! Property tests for the SPIHT comparator.

use pj2k_image::{metrics, Image, Plane};
use pj2k_spiht::{decode, encode};
use proptest::prelude::*;

fn arb_dyadic_image() -> impl Strategy<Value = Image> {
    (2u32..7, any::<u64>()).prop_map(|(p, seed)| {
        let n = 1usize << p; // 4..64
        let mut state = seed | 1;
        Image::gray8(Plane::from_fn(n, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 256) as i32
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With an unlimited budget the (5/3-based) coder is lossless.
    #[test]
    fn unlimited_budget_is_lossless(img in arb_dyadic_image(), levels in 1u8..5) {
        let bytes = encode(&img, levels, 64.0).unwrap();
        let out = decode(&bytes).unwrap();
        prop_assert_eq!(metrics::max_abs_error(&img, &out), 0);
    }

    /// Rate budgets are respected (header + ceil slack only).
    #[test]
    fn budget_respected(img in arb_dyadic_image(), bpp in 0.05f64..4.0) {
        let bytes = encode(&img, 3, bpp).unwrap();
        let budget = (bpp * (img.pixels()) as f64 / 8.0) as usize;
        prop_assert!(bytes.len() <= budget + 24, "{} vs {}", bytes.len(), budget);
        // and it decodes
        let out = decode(&bytes).unwrap();
        prop_assert_eq!(out.width(), img.width());
    }

    /// Decoding any truncation of a valid stream is total, and quality is
    /// near-monotone in the received prefix. Exact monotonicity does not
    /// hold at arbitrary byte cuts: the decoder reconstructs to the bin
    /// midpoint of the last *fully received* plane, and a mid-pass cut can
    /// land individual coefficients on luckier midpoints — so a modest
    /// tolerance is part of the property, not a defect.
    #[test]
    fn truncations_are_total(img in arb_dyadic_image(), frac in 0.1f64..1.0) {
        let bytes = encode(&img, 3, 8.0).unwrap();
        let cut = 19 + (((bytes.len() - 19) as f64) * frac) as usize;
        let truncated = decode(&bytes[..cut]).unwrap();
        let full = decode(&bytes).unwrap();
        let mse_trunc = metrics::mse(&img, &truncated);
        let mse_full = metrics::mse(&img, &full);
        prop_assert!(
            mse_full <= mse_trunc * 1.5 + 1.0,
            "{} vs {}",
            mse_full,
            mse_trunc
        );
    }

    /// Garbage input errors, never panics.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode(&bytes);
    }

    /// Corrupted payloads (valid header) never panic.
    #[test]
    fn decoder_survives_payload_corruption(img in arb_dyadic_image(), seed in any::<u64>(), xor in 1u8..=255) {
        let mut bytes = encode(&img, 3, 2.0).unwrap();
        if bytes.len() > 19 {
            let pos = 19 + (seed % (bytes.len() as u64 - 19)) as usize;
            bytes[pos] ^= xor;
            let _ = decode(&bytes);
        }
    }
}
