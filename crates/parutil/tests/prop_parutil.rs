//! Property tests for the schedulers and executors.

use pj2k_parutil::{assign, chunk_ranges, pool_map, DisjointWriter, Exec, Schedule, SendPtr};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn schedules() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::StaticBlock),
        Just(Schedule::RoundRobin),
        Just(Schedule::StaggeredRoundRobin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every schedule partitions the item set exactly.
    #[test]
    fn assign_is_a_partition(n in 0usize..500, p in 1usize..17, s in schedules()) {
        let parts = assign(n, p, s);
        prop_assert_eq!(parts.len(), p);
        let mut all = BTreeSet::new();
        for part in &parts {
            for &i in part {
                prop_assert!(i < n);
                prop_assert!(all.insert(i), "duplicate {}", i);
            }
        }
        prop_assert_eq!(all.len(), n);
    }

    /// Claiming every part of every schedule through the checked
    /// disjoint-access layer succeeds and exactly covers the buffer: the
    /// claim table (which panics on any overlap) acts as an independent
    /// oracle for the partition property above.
    #[test]
    fn assign_claims_are_disjoint_and_covering(
        n in 0usize..300,
        p in 1usize..17,
        s in schedules(),
    ) {
        let parts = assign(n, p, s);
        let mut buf = vec![0u8; n];
        let writer = DisjointWriter::new(&mut buf);
        let _claims: Vec<_> = parts.iter().map(|part| writer.claim_indices(part)).collect();
        writer.debug_assert_fully_claimed();
    }

    /// chunk_ranges parts claimed as ranges are likewise disjoint+covering.
    #[test]
    fn chunk_range_claims_cover(n in 0usize..1000, p in 1usize..17) {
        let ranges = chunk_ranges(n, p);
        let mut buf = vec![0u8; n];
        let writer = DisjointWriter::new(&mut buf);
        let _claims: Vec<_> = ranges.iter().map(|r| writer.claim_range(r.clone())).collect();
        writer.debug_assert_fully_claimed();
    }

    /// Round-robin family balances counts to within one item.
    #[test]
    fn rr_counts_balanced(n in 0usize..500, p in 1usize..17) {
        for s in [Schedule::RoundRobin, Schedule::StaggeredRoundRobin] {
            let parts = assign(n, p, s);
            let max = parts.iter().map(Vec::len).max().unwrap();
            let min = parts.iter().map(Vec::len).min().unwrap();
            prop_assert!(max - min <= 1, "{:?}: {} vs {}", s, max, min);
        }
    }

    /// chunk_ranges is contiguous, ordered, and covering.
    #[test]
    fn chunks_cover(n in 0usize..1000, p in 1usize..17) {
        let ranges = chunk_ranges(n, p);
        let mut expect = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, expect);
            expect = r.end;
        }
        prop_assert_eq!(expect, n);
    }

    /// pool_map equals the sequential map for any worker count/schedule.
    #[test]
    fn pool_map_matches_map(n in 0usize..200, p in 1usize..9, s in schedules()) {
        let got = pool_map(n, p, s, |i| i * 3 + 1);
        let want: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
        prop_assert_eq!(got, want);
    }

    /// Exec::run_ranges writes every slot exactly once via SendPtr.
    #[test]
    fn run_ranges_disjoint_writes(n in 1usize..300, workers in 1usize..9) {
        let mut buf = vec![0u32; n];
        let ptr = SendPtr::new(&mut buf);
        Exec::threads(workers).run_ranges(n, |range| {
            for i in range {
                // SAFETY: ranges are disjoint.
                unsafe { ptr.write(i, ptr.read(i) + 1) };
            }
        });
        prop_assert!(buf.iter().all(|&v| v == 1));
    }
}
