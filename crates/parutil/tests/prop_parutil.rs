//! Property tests for the schedulers and executors.

// Not a loom test: drives the std executors (loom primitives would panic
// outside `loom::model`); tests/loom.rs model-checks the cores instead.
#![cfg(not(loom))]

use pj2k_parutil::{
    assign, chunk_ranges, pool_map, pool_map_with_state, pool_run, DisjointWriter, Exec, Schedule,
    SendPtr,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

fn schedules() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::StaticBlock),
        Just(Schedule::RoundRobin),
        Just(Schedule::StaggeredRoundRobin),
        (1usize..9).prop_map(|chunk| Schedule::Dynamic { chunk }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every schedule partitions the item set exactly.
    #[test]
    fn assign_is_a_partition(n in 0usize..500, p in 1usize..17, s in schedules()) {
        let parts = assign(n, p, s);
        prop_assert_eq!(parts.len(), p);
        let mut all = BTreeSet::new();
        for part in &parts {
            for &i in part {
                prop_assert!(i < n);
                prop_assert!(all.insert(i), "duplicate {}", i);
            }
        }
        prop_assert_eq!(all.len(), n);
    }

    /// Claiming every part of every schedule through the checked
    /// disjoint-access layer succeeds and exactly covers the buffer: the
    /// claim table (which panics on any overlap) acts as an independent
    /// oracle for the partition property above.
    #[test]
    fn assign_claims_are_disjoint_and_covering(
        n in 0usize..300,
        p in 1usize..17,
        s in schedules(),
    ) {
        let parts = assign(n, p, s);
        let mut buf = vec![0u8; n];
        let writer = DisjointWriter::new(&mut buf);
        let _claims: Vec<_> = parts.iter().map(|part| writer.claim_indices(part)).collect();
        writer.debug_assert_fully_claimed();
    }

    /// chunk_ranges parts claimed as ranges are likewise disjoint+covering.
    #[test]
    fn chunk_range_claims_cover(n in 0usize..1000, p in 1usize..17) {
        let ranges = chunk_ranges(n, p);
        let mut buf = vec![0u8; n];
        let writer = DisjointWriter::new(&mut buf);
        let _claims: Vec<_> = ranges.iter().map(|r| writer.claim_range(r.clone())).collect();
        writer.debug_assert_fully_claimed();
    }

    /// Round-robin family balances counts to within one item.
    #[test]
    fn rr_counts_balanced(n in 0usize..500, p in 1usize..17) {
        for s in [Schedule::RoundRobin, Schedule::StaggeredRoundRobin] {
            let parts = assign(n, p, s);
            let max = parts.iter().map(Vec::len).max().unwrap();
            let min = parts.iter().map(Vec::len).min().unwrap();
            prop_assert!(max - min <= 1, "{:?}: {} vs {}", s, max, min);
        }
    }

    /// chunk_ranges is contiguous, ordered, and covering.
    #[test]
    fn chunks_cover(n in 0usize..1000, p in 1usize..17) {
        let ranges = chunk_ranges(n, p);
        let mut expect = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, expect);
            expect = r.end;
        }
        prop_assert_eq!(expect, n);
    }

    /// pool_map equals the sequential map for any worker count/schedule.
    #[test]
    fn pool_map_matches_map(n in 0usize..200, p in 1usize..9, s in schedules()) {
        let got = pool_map(n, p, s, |i| i * 3 + 1);
        let want: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
        prop_assert_eq!(got, want);
    }

    /// Dynamic self-scheduling processes every index exactly once under
    /// real thread contention. Two independent oracles: per-item atomic
    /// counters (observable effect), and the DisjointWriter claim table
    /// inside `pool_map` itself, which panics if the workers' runtime
    /// chunk claims ever overlapped or failed to cover 0..n.
    #[test]
    fn dynamic_processes_each_index_exactly_once(
        n in 0usize..400,
        p in 2usize..9,
        chunk in 1usize..17,
    ) {
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let results = pool_map(n, p, Schedule::Dynamic { chunk }, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        prop_assert_eq!(results, (0..n).collect::<Vec<_>>());
        for (i, c) in counters.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "item {} not coded exactly once", i);
        }
        // Side-effect-only path claims nothing, so count independently.
        for c in &counters {
            c.store(0, Ordering::Relaxed);
        }
        pool_run(n, p, Schedule::Dynamic { chunk }, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "pool_run item {} ran twice or never", i);
        }
    }

    /// Per-worker state: worker-local item tallies must sum to n for every
    /// schedule (no item is processed by two states or dropped).
    #[test]
    fn with_state_tallies_sum_to_n(n in 0usize..300, p in 1usize..9, s in schedules()) {
        let processed = AtomicUsize::new(0);
        let got = pool_map_with_state(
            n,
            p,
            s,
            |_| 0usize,
            |tally, i| {
                *tally += 1;
                processed.fetch_add(1, Ordering::Relaxed);
                i * 2
            },
        );
        let want: Vec<usize> = (0..n).map(|i| i * 2).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(processed.load(Ordering::Relaxed), n);
    }

    /// Exec::run_ranges writes every slot exactly once via SendPtr.
    #[test]
    fn run_ranges_disjoint_writes(n in 1usize..300, workers in 1usize..9) {
        let mut buf = vec![0u32; n];
        let ptr = SendPtr::new(&mut buf);
        Exec::threads(workers).run_ranges(n, |range| {
            for i in range {
                // SAFETY: ranges are disjoint.
                unsafe { ptr.write(i, ptr.read(i) + 1) };
            }
        });
        prop_assert!(buf.iter().all(|&v| v == 1));
    }
}
