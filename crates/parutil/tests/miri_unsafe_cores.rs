//! Miri-oriented exercises of the crate's unsafe cores.
//!
//! These tests are deliberately small (Miri interprets every memory access)
//! and touch exactly the raw-pointer paths that the borrow checker cannot
//! see through: [`DisjointWriter`]/[`DisjointClaim`] and the legacy
//! [`SendPtr`] escape hatch, both single-threaded and across scoped
//! threads. Run them under the interpreter with:
//!
//! ```text
//! cargo +nightly miri test -p pj2k-parutil --test miri_unsafe_cores
//! ```
//!
//! They also run as plain tests in every normal `cargo test` invocation.

// Not a loom test: drives the std executors (loom primitives would panic
// outside `loom::model`); tests/loom.rs model-checks the cores instead.
#![cfg(not(loom))]

use pj2k_parutil::{pool_map, DisjointWriter, Schedule, SendPtr};
use std::thread;

#[test]
fn disjoint_writer_single_thread_full_cycle() {
    let mut buf = vec![0u32; 16];
    let writer = DisjointWriter::new(&mut buf);
    let lo = writer.claim_range(0..8);
    let hi = writer.claim_range(8..16);
    for i in 0..8 {
        // SAFETY: `lo` owns 0..8, `hi` owns 8..16; indices stay in range.
        unsafe {
            lo.write(i, i as u32);
            hi.write(8 + i, 100 + i as u32);
        }
    }
    writer.debug_assert_fully_claimed();
    drop((lo, hi));
    drop(writer);
    for i in 0..8 {
        assert_eq!(buf[i], i as u32);
        assert_eq!(buf[8 + i], 100 + i as u32);
    }
}

#[test]
fn disjoint_writer_cross_thread_writes() {
    let mut buf = vec![0u8; 64];
    let writer = DisjointWriter::new(&mut buf);
    thread::scope(|scope| {
        for w in 0..4 {
            let writer = &writer;
            scope.spawn(move || {
                let claim = writer.claim_range(w * 16..(w + 1) * 16);
                for i in w * 16..(w + 1) * 16 {
                    // SAFETY: this worker's claim owns exactly this range.
                    unsafe { claim.write(i, w as u8 + 1) };
                }
            });
        }
    });
    writer.debug_assert_fully_claimed();
    drop(writer);
    for (i, &v) in buf.iter().enumerate() {
        assert_eq!(v as usize, i / 16 + 1, "element {i}");
    }
}

#[test]
fn disjoint_claim_slice_mut_is_writable_through() {
    let mut buf = vec![1i32; 24];
    let writer = DisjointWriter::new(&mut buf);
    {
        let claim = writer.claim_rect(0..6, 0..3, 8);
        for y in 0..3 {
            // SAFETY: each span lies inside one claimed rect row.
            let row = unsafe { claim.slice_mut(y * 8, 6) };
            for v in row.iter_mut() {
                *v += y as i32;
            }
        }
    }
    drop(writer);
    for y in 0..3 {
        for x in 0..8 {
            let want = if x < 6 { 1 + y as i32 } else { 1 };
            assert_eq!(buf[y * 8 + x], want, "({x},{y})");
        }
    }
}

#[test]
fn send_ptr_disjoint_ranges_across_threads() {
    let mut buf = vec![0u16; 32];
    let ptr = SendPtr::new(&mut buf);
    thread::scope(|scope| {
        for w in 0..2 {
            scope.spawn(move || {
                for i in w * 16..(w + 1) * 16 {
                    // SAFETY: the two workers touch disjoint halves and the
                    // buffer outlives the scope.
                    unsafe { ptr.write(i, ptr.read(i) + 7) };
                }
            });
        }
    });
    assert!(buf.iter().all(|&v| v == 7));
}

#[test]
fn pool_map_small_under_interpreter() {
    // Exercises the DisjointWriter-backed result slots of `pool_map` with a
    // size Miri can interpret quickly.
    for schedule in [
        Schedule::StaticBlock,
        Schedule::RoundRobin,
        Schedule::StaggeredRoundRobin,
    ] {
        let got = pool_map(10, 3, schedule, |i| i * 2);
        let want: Vec<usize> = (0..10).map(|i| i * 2).collect();
        assert_eq!(got, want, "{schedule:?}");
    }
}
