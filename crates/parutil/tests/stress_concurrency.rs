//! Concurrency stress tests, sized to be ThreadSanitizer-friendly.
//!
//! Build with `RUSTFLAGS="-Zsanitizer=thread --cfg tsan" cargo +nightly
//! test -p pj2k-parutil --test stress_concurrency --target
//! x86_64-unknown-linux-gnu` to hunt data races; `--cfg tsan` scales the
//! iteration counts down (TSan executes roughly an order of magnitude
//! slower). The same tests run at full size in a normal `cargo test`,
//! and CI runs the TSan configuration as a blocking gate (see
//! `.github/workflows/ci.yml`, job `tsan`).

// Not a loom test: drives the std executors (loom primitives would panic
// outside `loom::model`); tests/loom.rs model-checks the cores instead.
#![cfg(not(loom))]

use pj2k_parutil::{pool_map, pool_run, DisjointWriter, Schedule, WorkerPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

#[cfg(tsan)]
const ROUNDS: usize = 4;
#[cfg(not(tsan))]
const ROUNDS: usize = 32;

#[cfg(tsan)]
const ITEMS: usize = 64;
#[cfg(not(tsan))]
const ITEMS: usize = 512;

#[test]
#[cfg_attr(miri, ignore)] // stress volume: too slow under the interpreter
fn pool_map_stress_all_schedules() {
    for _ in 0..ROUNDS {
        for schedule in [
            Schedule::StaticBlock,
            Schedule::RoundRobin,
            Schedule::StaggeredRoundRobin,
        ] {
            let got = pool_map(ITEMS, 4, schedule, |i| i as u64 * 3);
            assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
        }
    }
}

#[test]
#[cfg_attr(miri, ignore)] // stress volume: too slow under the interpreter
fn disjoint_writer_stress_many_claimants() {
    for round in 0..ROUNDS {
        let mut buf = vec![0usize; ITEMS];
        let writer = DisjointWriter::new(&mut buf);
        let workers = 2 + round % 7;
        thread::scope(|scope| {
            for w in 0..workers {
                let writer = &writer;
                scope.spawn(move || {
                    let lo = ITEMS * w / workers;
                    let hi = ITEMS * (w + 1) / workers;
                    let claim = writer.claim_range(lo..hi);
                    for i in lo..hi {
                        // SAFETY: this worker's claim owns lo..hi.
                        unsafe { claim.write(i, i + round) };
                    }
                });
            }
        });
        writer.debug_assert_fully_claimed();
        drop(writer);
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i + round));
    }
}

#[test]
#[cfg_attr(miri, ignore)] // stress volume: too slow under the interpreter
fn worker_pool_stress_interleaved_batches() {
    let pool = Arc::new(WorkerPool::new(4));
    let ran = Arc::new(AtomicUsize::new(0));
    thread::scope(|scope| {
        for _ in 0..3 {
            let pool = Arc::clone(&pool);
            let ran = Arc::clone(&ran);
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    pool.run_batch(ITEMS / 8, Schedule::StaggeredRoundRobin, |_| {
                        let ran = Arc::clone(&ran);
                        move || {
                            ran.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
        }
    });
    assert_eq!(ran.load(Ordering::SeqCst), 3 * ROUNDS * (ITEMS / 8));
}

#[test]
#[cfg_attr(miri, ignore)] // stress volume: too slow under the interpreter
fn pool_run_stress_side_effects() {
    for _ in 0..ROUNDS {
        let counters: Vec<AtomicUsize> = (0..ITEMS).map(|_| AtomicUsize::new(0)).collect();
        pool_run(ITEMS, 6, Schedule::RoundRobin, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }
}
