//! loom model checks of the executor cores.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p pj2k-parutil --test
//! loom` (CI job `loom`). Under `--cfg loom` the crate's private `sync`
//! facade swaps `std::sync` for loom's model-checked primitives, so these
//! tests drive the *production* claim/hand-off code — [`DynamicCursor`],
//! [`PipelineQueue`], [`DisjointWriter`] — through every reachable thread
//! interleaving (bounded by `preemption_bound`) instead of the handful a
//! stress run happens to hit.
//!
//! loom has no scoped threads (`loom::thread::spawn` requires `'static`),
//! which is why the models target the extracted cores rather than the
//! scoped executors wrapping them; the executors themselves are covered by
//! the std/TSan/Miri gates.

#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;
use pj2k_parutil::{DisjointWriter, DynamicCursor, PipelineQueue};

/// Run `f` under loom with a bounded number of preemptions per execution.
///
/// An unbounded search is exact but explodes combinatorially; bounding
/// preemptions at 3 is the standard loom compromise (tokio uses 2) and
/// still covers every bug expressible with up to three forced context
/// switches.
fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let mut builder = loom::model::Builder::new();
    builder.preemption_bound = Some(3);
    builder.check(f);
}

/// The dynamic-schedule claim counter hands every index to exactly one
/// claimant, across all interleavings of three concurrent claimants.
#[test]
fn dynamic_cursor_claims_each_index_exactly_once() {
    model(|| {
        let cursor = Arc::new(DynamicCursor::new(4, 1));
        let counts = Arc::new(Mutex::new(vec![0usize; 4]));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cursor = Arc::clone(&cursor);
                let counts = Arc::clone(&counts);
                thread::spawn(move || {
                    while let Some(range) = cursor.claim() {
                        let mut c = counts.lock().unwrap();
                        for i in range {
                            c[i] += 1;
                        }
                    }
                })
            })
            .collect();
        // The main thread claims too: three claimants total.
        while let Some(range) = cursor.claim() {
            let mut c = counts.lock().unwrap();
            for i in range {
                c[i] += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let c = counts.lock().unwrap();
        for (i, &n) in c.iter().enumerate() {
            assert_eq!(n, 1, "index {i} claimed {n} times");
        }
    });
}

/// A cursor with chunk > 1 still partitions the domain exactly, including
/// the short tail chunk.
#[test]
fn dynamic_cursor_chunked_tail_is_exact() {
    model(|| {
        let cursor = Arc::new(DynamicCursor::new(3, 2));
        let counts = Arc::new(Mutex::new(vec![0usize; 3]));
        let h = {
            let cursor = Arc::clone(&cursor);
            let counts = Arc::clone(&counts);
            thread::spawn(move || {
                while let Some(range) = cursor.claim() {
                    let mut c = counts.lock().unwrap();
                    for i in range {
                        c[i] += 1;
                    }
                }
            })
        };
        while let Some(range) = cursor.claim() {
            let mut c = counts.lock().unwrap();
            for i in range {
                c[i] += 1;
            }
        }
        h.join().unwrap();
        assert_eq!(*counts.lock().unwrap(), vec![1, 1, 1]);
    });
}

/// Every item sent through the pipeline queue reaches exactly one of two
/// competing consumers, with its payload intact, and both consumers
/// terminate after close.
#[test]
fn pipeline_queue_hands_each_item_to_exactly_one_consumer() {
    model(|| {
        let queue = Arc::new(PipelineQueue::new());
        let seen = Arc::new(Mutex::new(vec![0usize; 2]));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let seen = Arc::clone(&seen);
                thread::spawn(move || {
                    while let Some((i, payload)) = queue.recv() {
                        assert_eq!(payload, 10 + i, "payload misrouted");
                        seen.lock().unwrap()[i] += 1;
                    }
                })
            })
            .collect();
        queue.send(0, 10);
        queue.send(1, 11);
        queue.close();
        for c in consumers {
            c.join().unwrap();
        }
        let seen = seen.lock().unwrap();
        for (i, &n) in seen.iter().enumerate() {
            assert_eq!(n, 1, "item {i} consumed {n} times");
        }
    });
}

/// Closing the queue wakes a consumer blocked on an empty queue; it must
/// observe `None`, never hang, in every interleaving of close vs. wait.
#[test]
fn pipeline_queue_close_unblocks_empty_consumers() {
    model(|| {
        let queue: Arc<PipelineQueue<()>> = Arc::new(PipelineQueue::new());
        let h = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.recv())
        };
        queue.close();
        assert!(h.join().unwrap().is_none());
    });
}

/// Two workers claiming disjoint ranges of one buffer: the claim table
/// (itself a concurrent structure in debug builds) accepts the disjoint
/// claims in any interleaving, the writes land, and the cover assert
/// passes.
#[test]
fn disjoint_writer_parallel_claims_and_cover() {
    model(|| {
        let buf: &'static mut [u32] = Box::leak(vec![0u32; 4].into_boxed_slice());
        let ptr = buf as *mut [u32];
        let writer = Arc::new(DisjointWriter::new(buf));
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let writer = Arc::clone(&writer);
                thread::spawn(move || {
                    let range = w * 2..w * 2 + 2;
                    let claim = writer.claim_range(range.clone());
                    for i in range {
                        // SAFETY: the two ranges are disjoint and in
                        // bounds; the leaked buffer outlives the threads.
                        unsafe { claim.write(i, 100 + i as u32) };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        writer.debug_assert_fully_claimed();
        drop(writer);
        // SAFETY: all claims and the writer are gone; reclaim the leaked
        // buffer so every model iteration is leak-free.
        let buf = unsafe { Box::from_raw(ptr) };
        assert_eq!(&buf[..], &[100, 101, 102, 103]);
    });
}

/// The composed production pattern of `pool_map_with_state`'s dynamic arm:
/// workers claim chunks from a shared cursor and route each chunk through
/// a `DisjointWriter` claim before writing. Exactly-once claiming must
/// yield a disjoint, covering write set in every interleaving.
#[test]
fn dynamic_claim_plus_disjoint_writes_compose() {
    model(|| {
        let buf: &'static mut [u32] = Box::leak(vec![0u32; 3].into_boxed_slice());
        let ptr = buf as *mut [u32];
        let writer = Arc::new(DisjointWriter::new(buf));
        let cursor = Arc::new(DynamicCursor::new(3, 2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let writer = Arc::clone(&writer);
                let cursor = Arc::clone(&cursor);
                thread::spawn(move || {
                    while let Some(range) = cursor.claim() {
                        let claim = writer.claim_range(range.clone());
                        for i in range {
                            // SAFETY: the cursor hands each chunk to
                            // exactly one worker (the property under
                            // test — the claim table would panic on a
                            // violation); the leaked buffer outlives the
                            // threads.
                            unsafe { claim.write(i, i as u32 + 1) };
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        writer.debug_assert_fully_claimed();
        drop(writer);
        // SAFETY: all claims and the writer are gone; reclaim the leaked
        // buffer so every model iteration is leak-free.
        let buf = unsafe { Box::from_raw(ptr) };
        assert_eq!(&buf[..], &[1, 2, 3]);
    });
}
