//! Shutdown- and drop-path tests for the pipeline executor.
//!
//! The happy path of [`pipeline_map_with_state`] is covered by its unit
//! and property tests; these tests pin down what happens when a run ends
//! *abnormally* — a consumer panics mid-stream, a queue is dropped with
//! items still buffered — and the less-traveled edges of the
//! [`PipelineQueue`] protocol (close/recv ordering, send-after-close).

// Not a loom test: drives the std executor and real blocking threads
// (loom primitives would panic outside `loom::model`); tests/loom.rs
// model-checks the queue hand-off instead.
#![cfg(not(loom))]

use pj2k_parutil::{pipeline_map_with_state, PipelineQueue};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A payload that counts its drops, to observe queue-teardown behavior.
struct DropCounter(Arc<AtomicUsize>);

impl Drop for DropCounter {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn worker_panic_mid_stream_propagates_and_does_not_hang() {
    // One consumer panics on item 3 while the producer keeps publishing.
    // The scoped executor must join its remaining workers and re-raise the
    // panic to the caller — never deadlock, never swallow it.
    let consumed = Arc::new(AtomicUsize::new(0));
    let consumed_in = Arc::clone(&consumed);
    let result = catch_unwind(AssertUnwindSafe(move || {
        pipeline_map_with_state(
            16,
            3,
            |_| (),
            move |_s, i, _p: ()| {
                if i == 3 {
                    panic!("worker died on item {i}");
                }
                consumed_in.fetch_add(1, Ordering::SeqCst);
            },
            |q| {
                for i in 0..16 {
                    q.send(i, ());
                }
            },
        )
    }));
    assert!(result.is_err(), "worker panic must reach the caller");
    // The surviving workers kept draining: the panicking item is gone but
    // no worker is left blocked on the queue.
    assert!(consumed.load(Ordering::SeqCst) <= 15);
}

#[test]
fn producer_panic_propagates_and_workers_drain_out() {
    // The producer dies after publishing half the items. scope unwinds the
    // producer on the caller's thread; the workers must still terminate
    // (the queue guard's close on unwind or the scope's join must not
    // deadlock) and the panic must reach the caller.
    let result = catch_unwind(AssertUnwindSafe(|| {
        pipeline_map_with_state(
            8,
            2,
            |_| (),
            |_s, _i, _p: ()| (),
            |q| {
                for i in 0..4 {
                    q.send(i, ());
                }
                panic!("producer died mid-stream");
            },
        )
    }));
    assert!(result.is_err(), "producer panic must reach the caller");
}

#[test]
fn dropping_a_queue_with_undrained_items_drops_the_payloads() {
    // Teardown after an abnormal run must not leak buffered payloads.
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let queue = PipelineQueue::new();
        for i in 0..5 {
            queue.send(i, DropCounter(Arc::clone(&drops)));
        }
        // Consume two, leave three buffered.
        assert!(queue.recv().is_some());
        assert!(queue.recv().is_some());
    }
    assert_eq!(drops.load(Ordering::SeqCst), 5, "buffered payloads leaked");
}

#[test]
fn close_unblocks_a_parked_consumer() {
    // A consumer blocked on an empty open queue must wake and observe
    // `None` once the queue closes — the shutdown edge every pipeline run
    // ends with.
    let queue: Arc<PipelineQueue<()>> = Arc::new(PipelineQueue::new());
    let waiter = {
        let queue = Arc::clone(&queue);
        thread::spawn(move || queue.recv())
    };
    // Give the consumer a moment to park on the condvar (best effort; the
    // test is correct for either interleaving).
    thread::sleep(Duration::from_millis(10));
    queue.close();
    let got = waiter.join().expect("consumer must not panic");
    assert!(got.is_none(), "closed empty queue must yield None");
}

#[test]
fn closed_queue_drains_then_stays_exhausted() {
    let queue = PipelineQueue::new();
    queue.send(0, 'a');
    queue.send(1, 'b');
    queue.close();
    assert_eq!(queue.recv(), Some((0, 'a')));
    assert_eq!(queue.recv(), Some((1, 'b')));
    for _ in 0..3 {
        assert_eq!(queue.recv(), None, "drained closed queue must stay None");
    }
}

#[test]
fn send_after_close_panics() {
    let queue = PipelineQueue::new();
    queue.send(0, ());
    queue.close();
    let result = catch_unwind(AssertUnwindSafe(|| queue.send(1, ())));
    assert!(result.is_err(), "send on a closed queue must panic");
}
