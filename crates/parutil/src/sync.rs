//! Synchronization-primitive facade: `std::sync` or [loom].
//!
//! Every synchronization primitive the executor core relies on for
//! *correctness* — the claim-table mutex in [`crate::disjoint`], the
//! queue mutex/condvar in [`crate::pipeline`], the outstanding-job
//! counter in [`crate::pool`], and the dynamic-schedule claim cursor in
//! [`crate::schedule`] — is imported through this module instead of
//! `std::sync` directly. A normal build re-exports `std`; building with
//! `RUSTFLAGS="--cfg loom"` swaps in [loom]'s model-checked versions, so
//! the loom tests in `tests/loom.rs` exhaustively explore thread
//! interleavings of the *production* claim/hand-off code, not a copy.
//!
//! Deliberately **not** routed through the facade: thread creation
//! (`std::thread::scope`, `crossbeam_channel`) and the scoped executors
//! built on it. loom has no scoped threads (its `thread::spawn` requires
//! `'static`), so the models drive the extracted cores — `DynamicCursor`,
//! `PipelineQueue`, `DisjointWriter` — from loom threads directly; the
//! executors still compile under `cfg(loom)` but are only exercised by the
//! std/TSan/Miri gates.
//!
//! [loom]: https://docs.rs/loom

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::{Arc, Condvar, Mutex};

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::{Arc, Condvar, Mutex};
