//! Fork-join execution over explicit worker threads.
//!
//! [`pool_map`] / [`pool_run`] are scoped: they spawn `p` OS threads, run the
//! assigned items, and join — the pattern used for per-stage parallelism
//! where a stage is entered and left as a unit (the DWT level loop).
//!
//! [`WorkerPool`] keeps `p` threads alive across submissions, mirroring the
//! long-lived thread pool the paper uses for the Tier-1 coding stage.

use crate::schedule::{assign, Schedule};
use crossbeam_channel::{unbounded, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Run `f(i)` for every `i in 0..n` on `p` scoped worker threads and collect
/// the results in item order.
///
/// With `p == 1` no threads are spawned and `f` runs inline, so sequential
/// baselines measured through this entry point carry no threading overhead.
pub fn pool_map<R, F>(n: usize, p: usize, schedule: Schedule, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(p > 0, "worker count must be positive");
    if p == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let parts = assign(n, p, schedule);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Each worker owns a disjoint set of slot indices; hand out raw slice
    // access through a helper that checks disjointness in debug builds.
    let slots_ptr = SlotsPtr(slots.as_mut_ptr());
    thread::scope(|scope| {
        for part in &parts {
            let f = &f;
            scope.spawn(move || {
                let slots_ptr = slots_ptr; // capture the Send wrapper, not the raw field
                for &i in part {
                    // SAFETY: `assign` partitions 0..n, so no two workers
                    // ever receive the same index, and `slots` outlives the
                    // scope. Each slot is written exactly once.
                    unsafe { std::ptr::write(slots_ptr.0.add(i), Some(f(i))) };
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot written by its owning worker"))
        .collect()
}

struct SlotsPtr<R>(*mut Option<R>);
impl<R> Clone for SlotsPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SlotsPtr<R> {}
// SAFETY: the pointer is only used to write disjoint indices from within a
// thread::scope whose lifetime is bounded by the owning Vec.
unsafe impl<R: Send> Send for SlotsPtr<R> {}
unsafe impl<R: Send> Sync for SlotsPtr<R> {}

/// Run `f(i)` for every `i in 0..n` on `p` scoped worker threads, discarding
/// results. Like [`pool_map`] but for side-effecting work (e.g. in-place
/// filtering of disjoint row ranges).
pub fn pool_run<F>(n: usize, p: usize, schedule: Schedule, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(p > 0, "worker count must be positive");
    if p == 1 || n <= 1 {
        (0..n).for_each(f);
        return;
    }
    let parts = assign(n, p, schedule);
    thread::scope(|scope| {
        for part in &parts {
            let f = &f;
            scope.spawn(move || {
                for &i in part {
                    f(i);
                }
            });
        }
    });
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads fed through per-worker channels.
///
/// Unlike a work-stealing executor, jobs are bound to a worker at submission
/// time according to a [`Schedule`] — this is deliberately faithful to the
/// paper's static assignment so that load-balance effects of the schedules
/// can be observed and benchmarked.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
    outstanding: Arc<(Mutex<usize>, Condvar)>,
}

impl WorkerPool {
    /// Spawn a pool with `p` worker threads.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "worker count must be positive");
        let outstanding = Arc::new((Mutex::new(0usize), Condvar::new()));
        let mut senders = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for w in 0..p {
            let (tx, rx) = unbounded::<Job>();
            let outstanding = Arc::clone(&outstanding);
            let handle = thread::Builder::new()
                .name(format!("pj2k-worker-{w}"))
                .spawn(move || {
                    for job in rx {
                        job();
                        let (lock, cvar) = &*outstanding;
                        let mut n = lock.lock().expect("pool counter poisoned");
                        *n -= 1;
                        if *n == 0 {
                            cvar.notify_all();
                        }
                    }
                })
                .expect("failed to spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            handles,
            outstanding,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Submit `n` jobs created by `make(i)` distributed per `schedule`, and
    /// block until all of them have completed.
    pub fn run_batch<F, G>(&self, n: usize, schedule: Schedule, make: G)
    where
        F: FnOnce() + Send + 'static,
        G: Fn(usize) -> F,
    {
        {
            let (lock, _) = &*self.outstanding;
            let mut cnt = lock.lock().expect("pool counter poisoned");
            *cnt += n;
        }
        let parts = assign(n, self.workers(), schedule);
        for (w, part) in parts.into_iter().enumerate() {
            for i in part {
                let job = make(i);
                self.senders[w]
                    .send(Box::new(job))
                    .expect("worker thread terminated early");
            }
        }
        let (lock, cvar) = &*self.outstanding;
        let mut cnt = lock.lock().expect("pool counter poisoned");
        while *cnt != 0 {
            cnt = cvar.wait(cnt).expect("pool counter poisoned");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // closing channels stops the workers
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn pool_map_matches_sequential() {
        for p in [1, 2, 4, 7] {
            for schedule in [
                Schedule::StaticBlock,
                Schedule::RoundRobin,
                Schedule::StaggeredRoundRobin,
            ] {
                let got = pool_map(100, p, schedule, |i| i * i);
                let want: Vec<usize> = (0..100).map(|i| i * i).collect();
                assert_eq!(got, want, "p={p} schedule={schedule:?}");
            }
        }
    }

    #[test]
    fn pool_map_empty_and_single() {
        assert_eq!(pool_map(0, 4, Schedule::RoundRobin, |i| i), Vec::<usize>::new());
        assert_eq!(pool_map(1, 4, Schedule::StaticBlock, |i| i + 5), vec![5]);
    }

    #[test]
    fn pool_run_touches_every_item_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool_run(64, 4, Schedule::StaggeredRoundRobin, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn worker_pool_runs_all_jobs_and_is_reusable() {
        let pool = WorkerPool::new(3);
        let sum = Arc::new(AtomicU64::new(0));
        for round in 0..3u64 {
            let before = sum.load(Ordering::SeqCst);
            pool.run_batch(50, Schedule::StaggeredRoundRobin, |i| {
                let sum = Arc::clone(&sum);
                move || {
                    sum.fetch_add(i as u64 + round, Ordering::SeqCst);
                }
            });
            let expect: u64 = (0..50).map(|i| i + round).sum();
            assert_eq!(sum.load(Ordering::SeqCst) - before, expect);
        }
    }

    #[test]
    fn worker_pool_zero_jobs_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.run_batch(0, Schedule::RoundRobin, |_| || ());
    }
}
