//! Fork-join execution over explicit worker threads.
//!
//! [`pool_map`] / [`pool_run`] are scoped: they spawn `p` OS threads, run the
//! assigned items, and join — the pattern used for per-stage parallelism
//! where a stage is entered and left as a unit (the DWT level loop).
//!
//! [`WorkerPool`] keeps `p` threads alive across submissions, mirroring the
//! long-lived thread pool the paper uses for the Tier-1 coding stage.

use crate::disjoint::DisjointWriter;
use crate::schedule::{assign, Schedule};
use crossbeam_channel::{unbounded, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Run `f(i)` for every `i in 0..n` on `p` scoped worker threads and collect
/// the results in item order.
///
/// With `p == 1` no threads are spawned and `f` runs inline, so sequential
/// baselines measured through this entry point carry no threading overhead.
pub fn pool_map<R, F>(n: usize, p: usize, schedule: Schedule, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(p > 0, "worker count must be positive");
    if p == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let parts = assign(n, p, schedule);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Each worker claims its slot indices through the checked disjoint-
    // access layer: a schedule bug that assigned one index to two workers
    // panics deterministically in debug builds instead of racing.
    let writer = DisjointWriter::new(&mut slots);
    thread::scope(|scope| {
        for part in &parts {
            let f = &f;
            let writer = &writer;
            scope.spawn(move || {
                let claim = writer.claim_indices(part);
                for &i in part {
                    // SAFETY: `assign` partitions 0..n, so no two workers
                    // ever receive the same index (checked by the claim in
                    // debug builds), and `slots` outlives the scope. Every
                    // slot starts as an initialized `None`, so the plain
                    // store only drops a `None`.
                    unsafe { claim.write(i, Some(f(i))) };
                }
            });
        }
    });
    // `assign` must also be a *cover* of 0..n — every slot written.
    writer.debug_assert_fully_claimed();
    drop(writer);
    slots
        .into_iter()
        .map(|s| s.expect("every slot written by its owning worker"))
        .collect()
}

/// Run `f(i)` for every `i in 0..n` on `p` scoped worker threads, discarding
/// results. Like [`pool_map`] but for side-effecting work (e.g. in-place
/// filtering of disjoint row ranges).
pub fn pool_run<F>(n: usize, p: usize, schedule: Schedule, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(p > 0, "worker count must be positive");
    if p == 1 || n <= 1 {
        (0..n).for_each(f);
        return;
    }
    let parts = assign(n, p, schedule);
    thread::scope(|scope| {
        for part in &parts {
            let f = &f;
            scope.spawn(move || {
                for &i in part {
                    f(i);
                }
            });
        }
    });
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads fed through per-worker channels.
///
/// Unlike a work-stealing executor, jobs are bound to a worker at submission
/// time according to a [`Schedule`] — this is deliberately faithful to the
/// paper's static assignment so that load-balance effects of the schedules
/// can be observed and benchmarked.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
    outstanding: Arc<(Mutex<usize>, Condvar)>,
}

impl WorkerPool {
    /// Spawn a pool with `p` worker threads.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "worker count must be positive");
        let outstanding = Arc::new((Mutex::new(0usize), Condvar::new()));
        let mut senders = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for w in 0..p {
            let (tx, rx) = unbounded::<Job>();
            let outstanding = Arc::clone(&outstanding);
            let handle = thread::Builder::new()
                .name(format!("pj2k-worker-{w}"))
                .spawn(move || {
                    for job in rx {
                        job();
                        let (lock, cvar) = &*outstanding;
                        let mut n = lock.lock().expect("pool counter poisoned");
                        *n -= 1;
                        if *n == 0 {
                            cvar.notify_all();
                        }
                    }
                })
                .expect("failed to spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            handles,
            outstanding,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Submit `n` jobs created by `make(i)` distributed per `schedule`, and
    /// block until all of them have completed.
    pub fn run_batch<F, G>(&self, n: usize, schedule: Schedule, make: G)
    where
        F: FnOnce() + Send + 'static,
        G: Fn(usize) -> F,
    {
        {
            let (lock, _) = &*self.outstanding;
            let mut cnt = lock.lock().expect("pool counter poisoned");
            *cnt += n;
        }
        let parts = assign(n, self.workers(), schedule);
        for (w, part) in parts.into_iter().enumerate() {
            for i in part {
                let job = make(i);
                self.senders[w]
                    .send(Box::new(job))
                    .expect("worker thread terminated early");
            }
        }
        let (lock, cvar) = &*self.outstanding;
        let mut cnt = lock.lock().expect("pool counter poisoned");
        while *cnt != 0 {
            cnt = cvar.wait(cnt).expect("pool counter poisoned");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // closing channels stops the workers
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn pool_map_matches_sequential() {
        for p in [1, 2, 4, 7] {
            for schedule in [
                Schedule::StaticBlock,
                Schedule::RoundRobin,
                Schedule::StaggeredRoundRobin,
            ] {
                let got = pool_map(100, p, schedule, |i| i * i);
                let want: Vec<usize> = (0..100).map(|i| i * i).collect();
                assert_eq!(got, want, "p={p} schedule={schedule:?}");
            }
        }
    }

    #[test]
    fn pool_map_empty_and_single() {
        assert_eq!(
            pool_map(0, 4, Schedule::RoundRobin, |i| i),
            Vec::<usize>::new()
        );
        assert_eq!(pool_map(1, 4, Schedule::StaticBlock, |i| i + 5), vec![5]);
    }

    #[test]
    fn pool_run_touches_every_item_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool_run(64, 4, Schedule::StaggeredRoundRobin, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn worker_pool_runs_all_jobs_and_is_reusable() {
        let pool = WorkerPool::new(3);
        let sum = Arc::new(AtomicU64::new(0));
        for round in 0..3u64 {
            let before = sum.load(Ordering::SeqCst);
            pool.run_batch(50, Schedule::StaggeredRoundRobin, |i| {
                let sum = Arc::clone(&sum);
                move || {
                    sum.fetch_add(i as u64 + round, Ordering::SeqCst);
                }
            });
            let expect: u64 = (0..50).map(|i| i + round).sum();
            assert_eq!(sum.load(Ordering::SeqCst) - before, expect);
        }
    }

    #[test]
    fn worker_pool_zero_jobs_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.run_batch(0, Schedule::RoundRobin, |_| || ());
    }

    #[test]
    fn worker_pool_fewer_jobs_than_workers() {
        // n < p leaves some workers idle; every job must still run exactly
        // once and run_batch must not wait on the idle workers.
        let pool = WorkerPool::new(8);
        for schedule in [
            Schedule::StaticBlock,
            Schedule::RoundRobin,
            Schedule::StaggeredRoundRobin,
        ] {
            let counters: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
            let counters = Arc::new(counters);
            pool.run_batch(3, schedule, |i| {
                let counters = Arc::clone(&counters);
                move || {
                    counters[i].fetch_add(1, Ordering::SeqCst);
                }
            });
            for (i, c) in counters.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "{schedule:?} item {i}");
            }
        }
    }

    #[test]
    fn worker_pool_reusable_after_empty_batch() {
        // An empty batch must leave the outstanding-job counter at zero so
        // the next (non-empty) batch still blocks until completion.
        let pool = WorkerPool::new(3);
        pool.run_batch(0, Schedule::StaticBlock, |_| || ());
        let sum = Arc::new(AtomicU64::new(0));
        pool.run_batch(40, Schedule::RoundRobin, |i| {
            let sum = Arc::clone(&sum);
            move || {
                sum.fetch_add(i as u64, Ordering::SeqCst);
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), (0..40u64).sum());
    }

    #[test]
    fn worker_pool_counter_survives_interleaved_submissions() {
        // Several threads submit batches to one pool concurrently. The
        // shared outstanding counter must never underflow (that would
        // panic the workers) and every job must run exactly once; each
        // run_batch call may conservatively wait for jobs of concurrent
        // batches, but must never return before its own jobs finished.
        let pool = Arc::new(WorkerPool::new(4));
        let ran = Arc::new(AtomicUsize::new(0));
        thread::scope(|scope| {
            for t in 0..4 {
                let pool = Arc::clone(&pool);
                let ran = Arc::clone(&ran);
                scope.spawn(move || {
                    for round in 0..5 {
                        let before = Arc::new(AtomicUsize::new(0));
                        let mine = Arc::clone(&before);
                        pool.run_batch(25, Schedule::StaggeredRoundRobin, |_| {
                            let ran = Arc::clone(&ran);
                            let mine = Arc::clone(&mine);
                            move || {
                                ran.fetch_add(1, Ordering::SeqCst);
                                mine.fetch_add(1, Ordering::SeqCst);
                            }
                        });
                        assert_eq!(
                            before.load(Ordering::SeqCst),
                            25,
                            "thread {t} round {round} returned early"
                        );
                    }
                });
            }
        });
        assert_eq!(ran.load(Ordering::SeqCst), 4 * 5 * 25);
    }

    /// Regression test for the checked disjoint-access adoption: a buggy
    /// schedule that hands the same slot to two workers must panic
    /// deterministically in debug builds (instead of silently racing), at
    /// claim time, exactly as `pool_map`'s workers would.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overlapping claim")]
    fn overlapping_partition_panics_in_debug() {
        let mut slots = vec![0u32; 8];
        let writer = DisjointWriter::new(&mut slots);
        // A corrupted "partition": slot 3 assigned to both workers. The
        // claim table is shared and mutex-guarded, so the second claim
        // panics at claim time no matter which thread issues it (the
        // cross-thread case is exercised in `disjoint::tests`); claiming
        // from the test thread keeps the panic message observable.
        let parts: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3], vec![3, 4, 5, 6, 7]];
        let _claims: Vec<_> = parts.iter().map(|p| writer.claim_indices(p)).collect();
    }
}
