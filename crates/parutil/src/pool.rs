//! Fork-join execution over explicit worker threads.
//!
//! [`pool_map`] / [`pool_run`] are scoped: they spawn `p` OS threads, run the
//! assigned items, and join — the pattern used for per-stage parallelism
//! where a stage is entered and left as a unit (the DWT level loop).
//!
//! [`WorkerPool`] keeps `p` threads alive across submissions, mirroring the
//! long-lived thread pool the paper uses for the Tier-1 coding stage.

use crate::disjoint::DisjointWriter;
use crate::schedule::{assign, DynamicCursor, Schedule};
use crate::sync::{Arc, Condvar, Mutex};
use crossbeam_channel::{unbounded, Sender};
use std::thread;

/// Run `f(i)` for every `i in 0..n` on `p` scoped worker threads and collect
/// the results in item order.
///
/// With `p == 1` no threads are spawned and `f` runs inline, so sequential
/// baselines measured through this entry point carry no threading overhead.
///
/// Like every parutil executor, the requested `p` is clamped to the
/// process-wide [`thread_budget`](crate::thread_budget) (`PJ2K_THREADS`);
/// with the budget unset the request passes through unchanged.
pub fn pool_map<R, F>(n: usize, p: usize, schedule: Schedule, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    pool_map_with_state(n, p, schedule, |_| (), |_state: &mut (), i| f(i))
}

/// Like [`pool_map`], but each worker carries a mutable per-thread state
/// value: worker `w` starts with `init(w)` and every item it processes runs
/// as `f(&mut state, i)`. The state is the natural home for reusable
/// scratch buffers (Tier-1 coding arenas) that would otherwise be
/// reallocated per item.
///
/// With `p == 1` (or fewer than two items) everything runs inline on one
/// state, so sequential baselines carry neither threading nor extra-state
/// overhead. Results are collected in item order regardless of schedule.
///
/// For static schedules each worker claims exactly the indices [`assign`]
/// hands it; for [`Schedule::Dynamic`] workers claim consecutive chunks
/// from a shared atomic cursor as they go idle. Either way every claimed
/// region is routed through [`DisjointWriter`], so the debug-build claim
/// table validates that the realized partition is disjoint and covering.
// AUDIT(hot): batch dispatch — every allocation, assert, and claim here
// is O(n + p) once per parallel batch (slot vector, schedule, teardown
// collect); the per-sample loops live inside `f`, not in this wrapper.
pub fn pool_map_with_state<S, R, I, F>(
    n: usize,
    p: usize,
    schedule: Schedule,
    init: I,
    f: F,
) -> Vec<R>
where
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    assert!(p > 0, "worker count must be positive");
    let p = crate::budget::clamp_workers(p);
    if p == 1 || n <= 1 {
        let mut state = init(0);
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Each worker claims its slot indices through the checked disjoint-
    // access layer: a schedule bug that assigned one index to two workers
    // panics deterministically in debug builds instead of racing.
    let writer = DisjointWriter::new(&mut slots);
    match schedule {
        Schedule::Dynamic { chunk } => {
            let cursor = DynamicCursor::new(n, chunk);
            thread::scope(|scope| {
                for w in 0..p {
                    let (f, init) = (&f, &init);
                    let (writer, cursor) = (&writer, &cursor);
                    scope.spawn(move || {
                        let mut state = init(w);
                        while let Some(range) = cursor.claim() {
                            let claim = writer.claim_range(range.clone());
                            for i in range {
                                // SAFETY: the cursor hands each chunk to
                                // exactly one worker (checked by the claim
                                // in debug builds and the loom model), and
                                // `slots` outlives the scope. Every slot
                                // starts as an initialized `None`, so the
                                // plain store only drops a `None`.
                                unsafe { claim.write(i, Some(f(&mut state, i))) };
                            }
                        }
                    });
                }
            });
        }
        _ => {
            let parts = assign(n, p, schedule);
            thread::scope(|scope| {
                for (w, part) in parts.iter().enumerate() {
                    let (f, init) = (&f, &init);
                    let writer = &writer;
                    scope.spawn(move || {
                        let mut state = init(w);
                        let claim = writer.claim_indices(part);
                        for &i in part {
                            // SAFETY: `assign` partitions 0..n, so no two
                            // workers ever receive the same index (checked by
                            // the claim in debug builds), and `slots` outlives
                            // the scope. Every slot starts as an initialized
                            // `None`, so the plain store only drops a `None`.
                            unsafe { claim.write(i, Some(f(&mut state, i))) };
                        }
                    });
                }
            });
        }
    }
    // The realized schedule must also be a *cover* of 0..n — every slot
    // written.
    writer.debug_assert_fully_claimed();
    drop(writer);
    slots
        .into_iter()
        .map(|s| s.expect("every slot written by its owning worker"))
        .collect()
}

/// Run `f(i)` for every `i in 0..n` on `p` scoped worker threads, discarding
/// results. Like [`pool_map`] but for side-effecting work (e.g. in-place
/// filtering of disjoint row ranges).
// AUDIT(hot): batch dispatch — same O(n + p) per-batch costs as
// `pool_map_with_state`, with no result slots.
pub fn pool_run<F>(n: usize, p: usize, schedule: Schedule, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(p > 0, "worker count must be positive");
    let p = crate::budget::clamp_workers(p);
    if p == 1 || n <= 1 {
        (0..n).for_each(f);
        return;
    }
    if let Schedule::Dynamic { chunk } = schedule {
        let cursor = DynamicCursor::new(n, chunk);
        thread::scope(|scope| {
            for _ in 0..p {
                let (f, cursor) = (&f, &cursor);
                scope.spawn(move || {
                    while let Some(range) = cursor.claim() {
                        for i in range {
                            f(i);
                        }
                    }
                });
            }
        });
        return;
    }
    let parts = assign(n, p, schedule);
    thread::scope(|scope| {
        for part in &parts {
            let f = &f;
            scope.spawn(move || {
                for &i in part {
                    f(i);
                }
            });
        }
    });
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads fed through per-worker channels.
///
/// Unlike a work-stealing executor, jobs are bound to a worker at submission
/// time according to a [`Schedule`] — this is deliberately faithful to the
/// paper's static assignment so that load-balance effects of the schedules
/// can be observed and benchmarked.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
    outstanding: Arc<(Mutex<usize>, Condvar)>,
}

impl WorkerPool {
    /// Spawn a pool with `p` worker threads.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    // AUDIT(hot): setup-time — threads, channels, and the outstanding
    // counter are built once per pool lifetime; the lock/notify in the
    // spawned worker loop runs once per job retirement, not per sample.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "worker count must be positive");
        let p = crate::budget::clamp_workers(p);
        let outstanding = Arc::new((Mutex::new(0usize), Condvar::new()));
        let mut senders = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for w in 0..p {
            let (tx, rx) = unbounded::<Job>();
            let outstanding = Arc::clone(&outstanding);
            let handle = thread::Builder::new()
                .name(format!("pj2k-worker-{w}"))
                .spawn(move || {
                    for job in rx {
                        job();
                        let (lock, cvar) = &*outstanding;
                        let mut n = lock.lock().expect("pool counter poisoned");
                        *n -= 1;
                        if *n == 0 {
                            cvar.notify_all();
                        }
                    }
                })
                .expect("failed to spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            handles,
            outstanding,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Submit `n` jobs created by `make(i)` distributed per `schedule`, and
    /// block until all of them have completed.
    ///
    /// With a static schedule each job is bound to its worker at submission
    /// time; with [`Schedule::Dynamic`] the jobs are materialized up front
    /// and the workers claim consecutive chunks of the job list through a
    /// shared atomic cursor as they go idle.
    // AUDIT(hot): by design — the counter lock, boxed job sends, and the
    // final condvar wait are the batch barrier itself, O(n + p) per
    // batch; coding work happens inside the jobs.
    pub fn run_batch<F, G>(&self, n: usize, schedule: Schedule, make: G)
    where
        F: FnOnce() + Send + 'static,
        G: Fn(usize) -> F,
    {
        if let Schedule::Dynamic { chunk } = schedule {
            self.run_batch_dynamic(n, chunk, make);
            return;
        }
        {
            let (lock, _) = &*self.outstanding;
            let mut cnt = lock.lock().expect("pool counter poisoned");
            *cnt += n;
        }
        let parts = assign(n, self.workers(), schedule);
        for (w, part) in parts.into_iter().enumerate() {
            for i in part {
                let job = make(i);
                self.senders[w]
                    .send(Box::new(job))
                    .expect("worker thread terminated early");
            }
        }
        let (lock, cvar) = &*self.outstanding;
        let mut cnt = lock.lock().expect("pool counter poisoned");
        while *cnt != 0 {
            cnt = cvar.wait(cnt).expect("pool counter poisoned");
        }
    }

    /// Dynamic-schedule variant of [`WorkerPool::run_batch`]: one claiming
    /// driver per worker, all counted by the shared outstanding counter.
    // AUDIT(hot): by design — job slots, the claim cursor, and the
    // barrier wait are O(n + p) per dynamic batch; the slot mutex is
    // uncontended by construction (each chunk claimed once).
    fn run_batch_dynamic<F, G>(&self, n: usize, chunk: usize, make: G)
    where
        F: FnOnce() + Send + 'static,
        G: Fn(usize) -> F,
    {
        if n == 0 {
            let _ = DynamicCursor::new(n, chunk); // still validates `chunk`
            return;
        }
        let p = self.workers();
        // `make` need not be Send, so every job is created here on the
        // submitting thread; workers only claim and run them.
        let jobs: Vec<Mutex<Option<F>>> = (0..n).map(|i| Mutex::new(Some(make(i)))).collect();
        let shared = Arc::new((jobs, DynamicCursor::new(n, chunk)));
        {
            let (lock, _) = &*self.outstanding;
            let mut cnt = lock.lock().expect("pool counter poisoned");
            *cnt += p;
        }
        for sender in &self.senders {
            let shared = Arc::clone(&shared);
            let driver: Job = Box::new(move || {
                let (jobs, cursor) = &*shared;
                while let Some(range) = cursor.claim() {
                    for slot in &jobs[range] {
                        // The claim cursor hands each chunk to exactly one
                        // driver, so the take always finds the job; the
                        // mutex only exists to make the slot Sync.
                        let job = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                        if let Some(job) = job {
                            job();
                        }
                    }
                }
            });
            sender.send(driver).expect("worker thread terminated early");
        }
        let (lock, cvar) = &*self.outstanding;
        let mut cnt = lock.lock().expect("pool counter poisoned");
        while *cnt != 0 {
            cnt = cvar.wait(cnt).expect("pool counter poisoned");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // closing channels stops the workers
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// Gated out under loom: these tests drive the std executors directly, and
// loom's sync primitives panic outside `loom::model`. The loom models in
// `tests/loom.rs` cover the extracted claim/hand-off cores instead.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    const ALL_SCHEDULES: [Schedule; 6] = [
        Schedule::StaticBlock,
        Schedule::RoundRobin,
        Schedule::StaggeredRoundRobin,
        Schedule::Dynamic { chunk: 1 },
        Schedule::Dynamic { chunk: 3 },
        Schedule::Dynamic { chunk: 64 },
    ];

    #[test]
    fn pool_map_matches_sequential() {
        for p in [1, 2, 4, 7] {
            for schedule in ALL_SCHEDULES {
                let got = pool_map(100, p, schedule, |i| i * i);
                let want: Vec<usize> = (0..100).map(|i| i * i).collect();
                assert_eq!(got, want, "p={p} schedule={schedule:?}");
            }
        }
    }

    #[test]
    fn pool_map_with_state_matches_sequential_and_isolates_state() {
        // Each worker's state accumulates only its own items; the per-item
        // results must still come back in item order, and the sum of all
        // per-state item counts must equal n.
        let inits = AtomicUsize::new(0);
        let processed = AtomicUsize::new(0);
        for p in [1, 2, 5] {
            for schedule in ALL_SCHEDULES {
                inits.store(0, Ordering::SeqCst);
                processed.store(0, Ordering::SeqCst);
                let got = pool_map_with_state(
                    80,
                    p,
                    schedule,
                    |_w| {
                        inits.fetch_add(1, Ordering::SeqCst);
                        0usize // items seen by this state
                    },
                    |count, i| {
                        *count += 1;
                        processed.fetch_add(1, Ordering::SeqCst);
                        i
                    },
                );
                let want: Vec<usize> = (0..80).collect();
                assert_eq!(got, want, "p={p} schedule={schedule:?}");
                assert_eq!(processed.load(Ordering::SeqCst), 80);
                // One state per spawned worker at most (inline run: one).
                let states = inits.load(Ordering::SeqCst);
                assert!(
                    (1..=p).contains(&states),
                    "p={p} schedule={schedule:?}: {states} states"
                );
            }
        }
    }

    #[test]
    fn pool_map_with_state_reuses_scratch_across_items() {
        // The canonical use: a growable scratch buffer that is cleared, not
        // reallocated, per item. Its capacity must survive between items.
        let got = pool_map_with_state(
            40,
            3,
            Schedule::Dynamic { chunk: 2 },
            |_| Vec::<usize>::new(),
            |scratch, i| {
                scratch.clear();
                scratch.extend(0..=i);
                scratch.iter().sum::<usize>()
            },
        );
        let want: Vec<usize> = (0..40).map(|i| i * (i + 1) / 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pool_map_empty_and_single() {
        assert_eq!(
            pool_map(0, 4, Schedule::RoundRobin, |i| i),
            Vec::<usize>::new()
        );
        assert_eq!(pool_map(1, 4, Schedule::StaticBlock, |i| i + 5), vec![5]);
    }

    #[test]
    fn pool_run_touches_every_item_once() {
        for schedule in [
            Schedule::StaggeredRoundRobin,
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 5 },
        ] {
            let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
            pool_run(64, 4, schedule, |i| {
                counters[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counters.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "{schedule:?} item {i}");
            }
        }
    }

    #[test]
    fn worker_pool_runs_all_jobs_and_is_reusable() {
        let pool = WorkerPool::new(3);
        let sum = Arc::new(AtomicU64::new(0));
        for round in 0..3u64 {
            let before = sum.load(Ordering::SeqCst);
            pool.run_batch(50, Schedule::StaggeredRoundRobin, |i| {
                let sum = Arc::clone(&sum);
                move || {
                    sum.fetch_add(i as u64 + round, Ordering::SeqCst);
                }
            });
            let expect: u64 = (0..50).map(|i| i + round).sum();
            assert_eq!(sum.load(Ordering::SeqCst) - before, expect);
        }
    }

    #[test]
    fn worker_pool_dynamic_runs_every_job_once_and_stays_reusable() {
        let pool = WorkerPool::new(4);
        for chunk in [1usize, 3, 100] {
            let counters: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
            let counters = Arc::new(counters);
            pool.run_batch(57, Schedule::Dynamic { chunk }, |i| {
                let counters = Arc::clone(&counters);
                move || {
                    counters[i].fetch_add(1, Ordering::SeqCst);
                }
            });
            for (i, c) in counters.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "chunk={chunk} item {i}");
            }
        }
        // A static batch after dynamic ones must still work (counter clean).
        let sum = Arc::new(AtomicU64::new(0));
        pool.run_batch(20, Schedule::RoundRobin, |i| {
            let sum = Arc::clone(&sum);
            move || {
                sum.fetch_add(i as u64, Ordering::SeqCst);
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), (0..20u64).sum());
    }

    #[test]
    fn worker_pool_dynamic_zero_jobs_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.run_batch(0, Schedule::Dynamic { chunk: 4 }, |_| || ());
        // And the pool remains usable.
        let ran = Arc::new(AtomicUsize::new(0));
        pool.run_batch(5, Schedule::Dynamic { chunk: 2 }, |_| {
            let ran = Arc::clone(&ran);
            move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(ran.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn worker_pool_zero_jobs_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.run_batch(0, Schedule::RoundRobin, |_| || ());
    }

    #[test]
    fn worker_pool_fewer_jobs_than_workers() {
        // n < p leaves some workers idle; every job must still run exactly
        // once and run_batch must not wait on the idle workers.
        let pool = WorkerPool::new(8);
        for schedule in ALL_SCHEDULES {
            let counters: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
            let counters = Arc::new(counters);
            pool.run_batch(3, schedule, |i| {
                let counters = Arc::clone(&counters);
                move || {
                    counters[i].fetch_add(1, Ordering::SeqCst);
                }
            });
            for (i, c) in counters.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "{schedule:?} item {i}");
            }
        }
    }

    #[test]
    fn worker_pool_reusable_after_empty_batch() {
        // An empty batch must leave the outstanding-job counter at zero so
        // the next (non-empty) batch still blocks until completion.
        let pool = WorkerPool::new(3);
        pool.run_batch(0, Schedule::StaticBlock, |_| || ());
        let sum = Arc::new(AtomicU64::new(0));
        pool.run_batch(40, Schedule::RoundRobin, |i| {
            let sum = Arc::clone(&sum);
            move || {
                sum.fetch_add(i as u64, Ordering::SeqCst);
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), (0..40u64).sum());
    }

    #[test]
    fn worker_pool_counter_survives_interleaved_submissions() {
        // Several threads submit batches to one pool concurrently. The
        // shared outstanding counter must never underflow (that would
        // panic the workers) and every job must run exactly once; each
        // run_batch call may conservatively wait for jobs of concurrent
        // batches, but must never return before its own jobs finished.
        let pool = Arc::new(WorkerPool::new(4));
        let ran = Arc::new(AtomicUsize::new(0));
        thread::scope(|scope| {
            for t in 0..4 {
                let pool = Arc::clone(&pool);
                let ran = Arc::clone(&ran);
                scope.spawn(move || {
                    for round in 0..5 {
                        let before = Arc::new(AtomicUsize::new(0));
                        let mine = Arc::clone(&before);
                        pool.run_batch(25, Schedule::StaggeredRoundRobin, |_| {
                            let ran = Arc::clone(&ran);
                            let mine = Arc::clone(&mine);
                            move || {
                                ran.fetch_add(1, Ordering::SeqCst);
                                mine.fetch_add(1, Ordering::SeqCst);
                            }
                        });
                        assert_eq!(
                            before.load(Ordering::SeqCst),
                            25,
                            "thread {t} round {round} returned early"
                        );
                    }
                });
            }
        });
        assert_eq!(ran.load(Ordering::SeqCst), 4 * 5 * 25);
    }

    /// Regression test for the checked disjoint-access adoption: a buggy
    /// schedule that hands the same slot to two workers must panic
    /// deterministically in debug builds (instead of silently racing), at
    /// claim time, exactly as `pool_map`'s workers would.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overlapping claim")]
    fn overlapping_partition_panics_in_debug() {
        let mut slots = vec![0u32; 8];
        let writer = DisjointWriter::new(&mut slots);
        // A corrupted "partition": slot 3 assigned to both workers. The
        // claim table is shared and mutex-guarded, so the second claim
        // panics at claim time no matter which thread issues it (the
        // cross-thread case is exercised in `disjoint::tests`); claiming
        // from the test thread keeps the panic message observable.
        let parts: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3], vec![3, 4, 5, 6, 7]];
        let _claims: Vec<_> = parts.iter().map(|p| writer.claim_indices(p)).collect();
    }
}
