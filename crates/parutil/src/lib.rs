//! Shared-memory parallel execution utilities for the pj2k workspace.
//!
//! The paper (Meerwald, Norcen, Uhl — IPPS 2002) parallelizes two JPEG2000
//! reference implementations with two mechanisms:
//!
//! * **JJ2000 / Java threads**: an explicit pool of worker threads; the
//!   independent code-blocks of the Tier-1 coding stage are handed to the
//!   workers in a *staggered round-robin* order to balance the load, and the
//!   wavelet transform splits its row/column ranges statically among threads
//!   with a barrier between the vertical and horizontal filtering of each
//!   decomposition level.
//! * **Jasper / OpenMP**: `#pragma omp parallel for` loop splitting, which in
//!   this workspace is represented by [rayon] data parallelism.
//!
//! This crate provides the pieces shared by both: work schedules
//! ([`Schedule`], [`assign`]), a scoped fork-join executor over those
//! schedules ([`pool_map`], [`pool_run`]), a persistent [`WorkerPool`]
//! mirroring the paper's long-lived thread pool, and the per-stage wall-clock
//! instrumentation ([`StageTimes`]) used to regenerate the paper's runtime
//! breakdown charts (Figs. 3, 6, 9).
//!
//! The synchronization primitives the executors rely on are imported through
//! the private `sync` facade, so building with `RUSTFLAGS="--cfg loom"`
//! swaps in [loom](https://docs.rs/loom)'s model-checked versions and the
//! models in `tests/loom.rs` exhaustively explore thread interleavings of
//! the production claim/hand-off code (see DESIGN.md §12).

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(unused_must_use)]

pub mod bounded;
pub mod budget;
pub mod disjoint;
pub mod exec;
pub mod pipeline;
pub mod pool;
pub mod schedule;
mod sync;
pub mod timing;

pub use bounded::{bounded_ordered_serve, BoundedQueue, SendError};
pub use budget::{clamp_workers, parse_thread_budget_token, resolve_thread_budget, thread_budget};
pub use disjoint::{DisjointClaim, DisjointWriter};
pub use exec::{Backend, Exec, SendPtr};
pub use pipeline::{pipeline_map_with_state, pipeline_overlap_with_state, PipelineQueue};
pub use pool::{pool_map, pool_map_with_state, pool_run, WorkerPool};
pub use schedule::{assign, chunk_ranges, DynamicCursor, Schedule};
pub use timing::{StageClock, StageTimes};
