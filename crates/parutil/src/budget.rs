//! Process-wide worker-thread budget (`PJ2K_THREADS`).
//!
//! The intra-image executors ([`pool_map`](crate::pool_map),
//! [`pool_run`](crate::pool_run), [`WorkerPool`](crate::WorkerPool), the
//! pipeline executors, [`Exec::run_ranges`](crate::Exec::run_ranges)) each
//! take a worker count from their caller — and before this module nothing
//! stopped *nested* parallelism from oversubscribing the machine: a batch
//! layer running `j` concurrent images whose encoder each asked for "all
//! cores" would spawn `j × cores` runnable threads. The budget closes that
//! hole with one process-wide cap that every executor honours at its entry
//! point:
//!
//! * `PJ2K_THREADS=<n>` caps every parallel region at `n` workers. The
//!   batch scheduler in `pj2k-serve` additionally uses it as the total
//!   budget for its `j × k ≤ budget` split.
//! * Unset (or `auto`/empty) means "no cap": callers get exactly the
//!   worker count they asked for, preserving ablation fidelity — a
//!   `p = 8` sweep on a 4-core host must still spawn 8 OS threads, or the
//!   measured curves would silently flatline at the host width.
//! * An unrecognized value warns on stderr instead of silently falling
//!   back (mirrors `PJ2K_TIER1` / `PJ2K_SIMD`), so a typo cannot
//!   masquerade as an unbounded run.
//!
//! The cap is read once per process and cached; tests exercise the parse
//! function directly rather than mutating the process environment.

use std::sync::OnceLock;

/// Parsed value of a `PJ2K_THREADS` token, `None` meaning "no cap".
///
/// Accepted: a positive integer (the cap), or `auto` / empty (explicitly
/// uncapped). Zero and garbage are rejected (the caller warns).
pub fn parse_thread_budget_token(tok: &str) -> Result<Option<usize>, ()> {
    let tok = tok.trim();
    if tok.is_empty() || tok.eq_ignore_ascii_case("auto") {
        return Ok(None);
    }
    match tok.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(()),
    }
}

/// The cached `PJ2K_THREADS` cap, read once per process. A set but
/// unrecognized value warns on stderr instead of silently running
/// uncapped.
pub fn thread_budget() -> Option<usize> {
    static BUDGET: OnceLock<Option<usize>> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        let v = std::env::var("PJ2K_THREADS").ok()?;
        match parse_thread_budget_token(&v) {
            Ok(cap) => cap,
            Err(()) => {
                // AUDIT(hot): the OnceLock body runs at most once per
                // process, and this eprintln! only on an unrecognized
                // override — cold.
                eprintln!(
                    "pj2k: ignoring unrecognized PJ2K_THREADS={v:?} \
                     (expected a positive worker count, auto, or empty)"
                );
                None
            }
        }
    })
}

/// The total worker budget for schedulers that *plan* thread usage (the
/// batch layer's `j × k` split): the `PJ2K_THREADS` cap when set,
/// otherwise the host's available parallelism.
pub fn resolve_thread_budget() -> usize {
    thread_budget()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
}

/// Clamp a requested per-region worker count to the process budget.
///
/// With no `PJ2K_THREADS` set this is the identity (never *raises* a
/// request), so sequential baselines and explicit ablation sweeps are
/// unaffected.
#[inline]
pub fn clamp_workers(requested: usize) -> usize {
    clamp_to(requested, thread_budget())
}

/// Pure core of [`clamp_workers`], separated so the policy is unit-testable
/// without touching the process environment.
#[inline]
pub(crate) fn clamp_to(requested: usize, budget: Option<usize>) -> usize {
    match budget {
        Some(cap) => requested.min(cap).max(1),
        None => requested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_parse() {
        assert_eq!(parse_thread_budget_token("4"), Ok(Some(4)));
        assert_eq!(parse_thread_budget_token(" 16 "), Ok(Some(16)));
        assert_eq!(parse_thread_budget_token("1"), Ok(Some(1)));
        assert_eq!(parse_thread_budget_token(""), Ok(None));
        assert_eq!(parse_thread_budget_token("auto"), Ok(None));
        assert_eq!(parse_thread_budget_token("AUTO"), Ok(None));
        assert_eq!(
            parse_thread_budget_token("0"),
            Err(()),
            "zero workers is nonsense"
        );
        assert_eq!(parse_thread_budget_token("-2"), Err(()));
        assert_eq!(parse_thread_budget_token("four"), Err(()));
        assert_eq!(parse_thread_budget_token("4.0"), Err(()));
    }

    #[test]
    fn clamp_policy() {
        // No budget: identity, including zero (callers validate p > 0
        // themselves, with their own messages).
        assert_eq!(clamp_to(8, None), 8);
        assert_eq!(clamp_to(0, None), 0);
        // Budget caps but never raises, and never returns zero.
        assert_eq!(clamp_to(8, Some(4)), 4);
        assert_eq!(clamp_to(2, Some(4)), 2);
        assert_eq!(clamp_to(0, Some(4)), 1);
        assert_eq!(clamp_to(100, Some(1)), 1);
    }

    #[test]
    fn resolve_is_positive() {
        assert!(resolve_thread_budget() >= 1);
    }
}
