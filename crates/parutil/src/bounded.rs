//! Bounded-admission producer/consumer execution with ordered emission.
//!
//! [`PipelineQueue`](crate::PipelineQueue) is unbounded by design: its
//! producer (a DWT level loop) publishes work whose total footprint is the
//! image already held in memory. A *batch service* is the opposite regime —
//! the producer discovers an effectively unlimited stream of jobs (files on
//! disk, requests on a socket) each carrying a large payload (a decoded
//! image), and admitting them faster than the workers drain them is how a
//! service falls over under overload. [`BoundedQueue`] adds the missing
//! backpressure: `send` blocks while the queue is at capacity, so at any
//! instant at most `capacity` payloads sit queued plus one in each worker's
//! hands — peak payload memory is O(capacity + workers), independent of how
//! many jobs the producer still has pending.
//!
//! [`bounded_ordered_serve`] is the executor built on it (the
//! `bounded_parallel_map` shape): the calling thread produces, `workers`
//! scoped threads consume, and finished results are handed to an `emit`
//! callback in **strictly increasing index order** regardless of completion
//! order — the reorder buffer holds only results that finished ahead of a
//! straggler, never raw payloads.
//!
//! Failure contract (mirrors `pipeline_shutdown.rs` expectations):
//!
//! * a panicking producer closes the queue on unwind, workers drain out;
//! * a panicking worker marks the queue failed (senders error out, parked
//!   peers wake and exit) and the panic propagates at scope join;
//! * job-level failures are *not* panics — callers route them through the
//!   result type `R` so one poisoned job cannot sink the batch.

use crate::budget;
use crate::sync::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::thread;

/// A bounded FIFO of `(index, payload)` pairs with blocking admission.
pub struct BoundedQueue<T> {
    state: Mutex<BoundedState<T>>,
    /// Signalled when an item arrives or the queue closes/fails.
    not_empty: Condvar,
    /// Signalled when capacity frees up or the queue closes/fails.
    not_full: Condvar,
    capacity: usize,
}

struct BoundedState<T> {
    items: VecDeque<(usize, T)>,
    closed: bool,
    failed: bool,
}

/// Error returned by [`BoundedQueue::send`] on a closed or failed queue;
/// carries the rejected payload back to the producer.
#[derive(Debug)]
pub struct SendError<T>(pub T);

impl<T> BoundedQueue<T> {
    /// Create an open queue admitting at most `capacity` queued items.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (a zero-capacity queue cannot make
    /// progress with a blocking `send`).
    // AUDIT(hot): setup-time — one queue (mutex + two condvars + ring
    // buffer) per batch run, constructed before any job is admitted.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded queue capacity must be positive");
        Self {
            state: Mutex::new(BoundedState {
                // Pre-size for the common small capacities; an effectively
                // unbounded queue (the inline path) grows on demand.
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                failed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Queue capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently queued (racy snapshot, for tests and
    /// telemetry).
    // AUDIT(hot): telemetry — called by tests and the bench harness, never
    // inside a worker's per-job loop.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// True when no items are queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit one job, blocking while the queue is at capacity. Returns the
    /// payload in [`SendError`] if the queue was closed or failed — the
    /// producer should stop submitting.
    // AUDIT(hot): by design — the lock/wait pair IS the admission
    // backpressure; it runs once per job (a whole image), never inside the
    // per-sample coding loops.
    pub fn send(&self, index: usize, item: T) -> Result<(), SendError<T>> {
        let mut q = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if q.closed || q.failed {
                return Err(SendError(item));
            }
            if q.items.len() < self.capacity {
                q.items.push_back((index, item));
                drop(q);
                self.not_empty.notify_one();
                return Ok(());
            }
            q = self.not_full.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue: no further admissions, parked consumers drain the
    /// remaining items and then observe `None`.
    // AUDIT(hot): once per batch run, at producer shutdown (including
    // producer unwind via the drop guard).
    pub fn close(&self) {
        let mut q = self.state.lock().unwrap_or_else(|e| e.into_inner());
        q.closed = true;
        drop(q);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Mark the queue failed: senders error out, consumers stop *without*
    /// draining (remaining payloads drop with the queue). Used when a
    /// worker dies so the batch aborts in bounded time instead of
    /// deadlocking a producer parked on `not_full`.
    // AUDIT(hot): cold — only reached when a worker panics.
    pub fn fail(&self) {
        let mut q = self.state.lock().unwrap_or_else(|e| e.into_inner());
        q.failed = true;
        drop(q);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Pop the next job, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed-and-drained or failed.
    // AUDIT(hot): by design — consumer side of the per-job handoff;
    // blocking here is idle time, not contention inside a coding loop.
    pub fn recv(&self) -> Option<(usize, T)> {
        let mut q = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if q.failed {
                return None;
            }
            if let Some(item) = q.items.pop_front() {
                drop(q);
                self.not_full.notify_one();
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// In-order result hand-off: results arrive in completion order, leave in
/// index order.
struct Reorder<R> {
    next: usize,
    pending: BTreeMap<usize, R>,
}

/// Run a bounded-admission batch: the calling thread runs `producer`
/// (admitting `(index, payload)` jobs through the queue, indices `0..n`
/// contiguous from zero), `workers` scoped threads consume jobs as
/// `work(&mut state, index, payload)`, and every result is handed to
/// `emit(index, result)` exactly once in strictly increasing index order.
///
/// `emit` runs on whichever worker completed the gap-filling result, under
/// the reorder lock — keep it cheap (hand off bytes, record a row); heavy
/// post-processing belongs in `work`.
///
/// The requested `workers` count is clamped to the process-wide
/// [`thread_budget`](crate::thread_budget); with `workers == 0` everything
/// runs inline (producer first, then consumption in admission order) and
/// `send` never blocks — the degenerate path for tiny batches, which
/// forfeits the memory bound since nothing drains concurrently.
///
/// # Panics
/// Propagates producer/worker/emit panics after releasing parked threads
/// (never deadlocks on one); panics if the producer re-uses an index.
// AUDIT(hot): batch dispatch — queue, reorder table, and scope setup are
// O(jobs + workers) once per batch; the per-image work happens inside
// `work`, not in this wrapper.
pub fn bounded_ordered_serve<T, S, R, I, W, E, P>(
    workers: usize,
    capacity: usize,
    init: I,
    work: W,
    emit: E,
    producer: P,
) where
    T: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize, T) -> R + Sync,
    E: Fn(usize, R) + Sync,
    P: FnOnce(&BoundedQueue<T>),
{
    let p = budget::clamp_workers(workers);
    if workers == 0 {
        // Inline degenerate path: unbounded admission (capacity can't be
        // honoured without a concurrent consumer), then ordered drain.
        let queue = BoundedQueue::new(usize::MAX >> 1);
        producer(&queue);
        queue.close();
        let mut state = init(0);
        let mut reorder = Reorder {
            next: 0,
            pending: BTreeMap::new(),
        };
        while let Some((i, item)) = queue.recv() {
            let r = work(&mut state, i, item);
            push_ordered(&mut reorder, i, r, &emit);
        }
        return;
    }
    let queue = BoundedQueue::new(capacity);
    let reorder = Mutex::new(Reorder {
        next: 0,
        pending: BTreeMap::new(),
    });
    thread::scope(|scope| {
        for w in 0..p {
            let (init, work, emit) = (&init, &work, &emit);
            let (queue, reorder) = (&queue, &reorder);
            scope.spawn(move || {
                let mut state = init(w);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    while let Some((i, item)) = queue.recv() {
                        let r = work(&mut state, i, item);
                        let mut ord = reorder.lock().unwrap_or_else(|e| e.into_inner());
                        push_ordered(&mut ord, i, r, emit);
                    }
                }));
                if let Err(payload) = run {
                    // Wake the producer (send now errors) and parked
                    // peers before re-raising at scope join.
                    queue.fail();
                    std::panic::resume_unwind(payload);
                }
            });
        }
        // Close on unwind too: a panicking producer must not strand
        // consumers parked on an open empty queue.
        let guard = CloseOnDrop(&queue);
        producer(&queue);
        drop(guard);
    });
}

/// Park `r` at index `i` and flush the contiguous run starting at `next`.
// AUDIT(hot): per-job bookkeeping — one map insert/remove per image-sized
// job, outside the per-sample coding loops.
fn push_ordered<R, E: Fn(usize, R)>(ord: &mut Reorder<R>, i: usize, r: R, emit: &E) {
    let prev = ord.pending.insert(i, r);
    assert!(prev.is_none(), "batch produced index {i} twice");
    while let Some(r) = ord.pending.remove(&ord.next) {
        let i = ord.next;
        ord.next += 1;
        emit(i, r);
    }
}

/// Closes the wrapped queue when dropped — including during unwinding.
struct CloseOnDrop<'q, T>(&'q BoundedQueue<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

// Gated out under loom: these tests drive real scoped threads; loom's sync
// primitives panic outside `loom::model`.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;
    use std::time::Duration;

    #[test]
    fn results_emit_in_index_order_for_all_worker_counts() {
        for p in [0usize, 1, 2, 4] {
            let emitted = StdMutex::new(Vec::new());
            bounded_ordered_serve(
                p,
                2,
                |_| (),
                |_s, i, payload: usize| i * 10 + payload,
                |i, r| emitted.lock().unwrap().push((i, r)),
                |q| {
                    for i in 0..30 {
                        q.send(i, i + 1).expect("queue open");
                    }
                },
            );
            let got = emitted.into_inner().unwrap();
            let want: Vec<(usize, usize)> = (0..30).map(|i| (i, i * 11 + 1)).collect();
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn admission_blocks_at_capacity() {
        // Slow workers + fast producer: the queue length must never exceed
        // its capacity (checked from inside the workers, where the queue
        // is quiescent-enough to observe).
        let max_seen = AtomicUsize::new(0);
        let capacity = 3;
        bounded_ordered_serve(
            2,
            capacity,
            |_| (),
            |_s, _i, _t: ()| {
                std::thread::sleep(Duration::from_millis(2));
            },
            |_i, _r| {},
            |q| {
                for i in 0..40 {
                    q.send(i, ()).expect("queue open");
                    let len = q.len();
                    let mut seen = max_seen.load(Ordering::Relaxed);
                    while len > seen {
                        match max_seen.compare_exchange(
                            seen,
                            len,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(s) => seen = s,
                        }
                    }
                }
            },
        );
        assert!(
            max_seen.load(Ordering::Relaxed) <= capacity,
            "queue grew past capacity: {} > {capacity}",
            max_seen.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn payload_live_count_is_bounded_by_capacity_plus_workers() {
        // The O(capacity + workers) memory claim, observed directly: a
        // payload type that counts live instances.
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Counted {
            fn new() -> Self {
                let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK.fetch_max(live, Ordering::SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let (workers, capacity) = (2, 3);
        bounded_ordered_serve(
            workers,
            capacity,
            |_| (),
            |_s, _i, c: Counted| {
                std::thread::sleep(Duration::from_millis(1));
                drop(c);
            },
            |_i, _r| {},
            |q| {
                for i in 0..50 {
                    q.send(i, Counted::new()).expect("queue open");
                }
            },
        );
        assert_eq!(LIVE.load(Ordering::SeqCst), 0, "payload leak");
        let peak = PEAK.load(Ordering::SeqCst);
        // capacity queued + one per worker + the one the producer is
        // holding while parked on a full queue.
        assert!(
            peak <= capacity + workers + 1,
            "peak live payloads {peak} exceeds admission bound {}",
            capacity + workers + 1
        );
    }

    #[test]
    fn worker_panic_unblocks_producer_and_propagates() {
        let produced = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bounded_ordered_serve(
                2,
                1,
                |_| (),
                |_s, i, _t: ()| {
                    assert!(i < 3, "poison job");
                },
                |_i, _r| {},
                |q| {
                    for i in 0..10_000 {
                        if q.send(i, ()).is_err() {
                            break; // failed queue: stop admitting
                        }
                        produced.fetch_add(1, Ordering::SeqCst);
                    }
                },
            );
        }));
        assert!(caught.is_err(), "worker panic must propagate");
        assert!(
            produced.load(Ordering::SeqCst) < 10_000,
            "producer should observe the failure and stop early"
        );
    }

    #[test]
    fn producer_panic_releases_workers() {
        let consumed = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bounded_ordered_serve(
                3,
                2,
                |_| (),
                |_s, _i, _t: ()| {
                    consumed.fetch_add(1, Ordering::SeqCst);
                },
                |_i, _r| {},
                |q| {
                    q.send(0, ()).expect("queue open");
                    panic!("producer died mid-stream");
                },
            );
        }));
        assert!(caught.is_err(), "producer panic must propagate");
    }

    #[test]
    fn send_after_close_returns_payload() {
        let q = BoundedQueue::new(2);
        q.close();
        let err = q.send(0, 41usize).unwrap_err();
        assert_eq!(err.0, 41);
        assert_eq!(q.recv(), None);
    }

    #[test]
    fn failed_queue_drops_undrained_items() {
        let q = BoundedQueue::new(4);
        q.send(0, ()).unwrap();
        q.send(1, ()).unwrap();
        q.fail();
        assert_eq!(q.recv(), None, "failed queue must not hand out items");
        assert!(q.send(2, ()).is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<()>::new(0);
    }

    #[test]
    fn per_worker_state_reused() {
        let inits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        bounded_ordered_serve(
            3,
            2,
            |_w| {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<usize>::new()
            },
            |scratch, i, _t: ()| {
                scratch.clear();
                scratch.extend(0..=i);
                scratch.iter().sum::<usize>()
            },
            |_i, r| {
                sum.fetch_add(r, Ordering::SeqCst);
            },
            |q| {
                for i in 0..20 {
                    q.send(i, ()).expect("queue open");
                }
            },
        );
        let want: usize = (0..20).map(|i| i * (i + 1) / 2).sum();
        assert_eq!(sum.load(Ordering::SeqCst), want);
        assert!((1..=3).contains(&inits.load(Ordering::SeqCst)));
    }
}
