//! Producer/consumer stage pipelining.
//!
//! [`pool_map`](crate::pool_map) and friends are fork-join: the whole item
//! list exists before the first worker starts. A pipelined encoder needs the
//! opposite — a producer (the per-level DWT loop) *discovers* work over time
//! and consumers (quantize + Tier-1 block coding) should start on finished
//! subbands while later decomposition levels are still being filtered.
//!
//! [`pipeline_map_with_state`] provides that shape with the same result
//! contract as `pool_map_with_state`: every item index in `0..n` is
//! processed exactly once, results come back in **index order** regardless
//! of completion order, per-worker mutable state carries reusable scratch,
//! and the result slots are routed through the checked
//! [`DisjointWriter`] layer so a duplicate or missing index panics
//! deterministically in debug builds instead of racing.
//!
//! Consumption is dynamically self-scheduled by construction: idle workers
//! block on the shared queue and claim items in arrival order, which is the
//! runtime analogue of [`Schedule::Dynamic`](crate::Schedule) with chunk 1.

use crate::disjoint::DisjointWriter;
use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::thread;

/// The channel between a pipeline's producer and its consumers.
///
/// Unbounded FIFO of `(index, payload)` pairs. The producer pushes with
/// [`send`](PipelineQueue::send); the driver closes the queue when the
/// producer returns, after which idle consumers drain out.
pub struct PipelineQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

struct QueueState<T> {
    items: VecDeque<(usize, T)>,
    closed: bool,
}

impl<T> Default for PipelineQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PipelineQueue<T> {
    /// Create an open, empty queue.
    ///
    /// [`pipeline_map_with_state`] constructs its own queue; this is public
    /// so the loom models in `tests/loom.rs` can drive the exact
    /// producer/consumer hand-off the pipeline executor runs.
    // AUDIT(hot): setup-time — one queue (mutex + condvar) per pipeline
    // run, constructed before any stage starts.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Publish one work item. `index` must be in `0..n` and unique across
    /// the producer's whole run (checked by the claim table in debug
    /// builds, and by the final cover assert).
    ///
    /// # Panics
    /// Panics if called after the producer returned (queue closed).
    // AUDIT(hot): by design — the lock/notify pair IS the stage-overlap
    // handoff; it runs once per work item (a DWT strip or code block),
    // never inside the per-sample kernels.
    pub fn send(&self, index: usize, item: T) {
        let mut q = self.state.lock().expect("pipeline queue poisoned");
        assert!(!q.closed, "send on a closed pipeline queue");
        q.items.push_back((index, item));
        drop(q);
        self.ready.notify_one();
    }

    /// Close the queue: no further [`send`](PipelineQueue::send)s are
    /// allowed, and blocked consumers wake up to drain the remaining items
    /// and then observe `None`. The pipeline driver calls this when the
    /// producer returns; it is public for the loom models and shutdown
    /// tests.
    // AUDIT(hot): once per pipeline run, at producer shutdown.
    pub fn close(&self) {
        // Poison-tolerant: close runs from a drop guard during unwinding,
        // and panicking inside a Drop would escalate to an abort.
        let mut q = self.state.lock().unwrap_or_else(|e| e.into_inner());
        q.closed = true;
        drop(q);
        self.ready.notify_all();
    }

    /// Pop the next item, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed *and* drained.
    // AUDIT(hot): by design — consumer side of the per-item handoff;
    // blocking here is idle time the paper's overlap model accounts for,
    // not contention inside a coding loop.
    pub fn recv(&self) -> Option<(usize, T)> {
        let mut q = self.state.lock().expect("pipeline queue poisoned");
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).expect("pipeline queue poisoned");
        }
    }
}

/// Run `producer` on the calling thread while `p` scoped workers consume the
/// items it publishes, returning the `n` results in index order.
///
/// The producer receives the queue and must [`send`](PipelineQueue::send)
/// exactly one item for every index in `0..n` (in any order); each is
/// consumed exactly once as `f(&mut state, index, payload)` where worker
/// `w`'s state starts as `init(w)`.
///
/// With `p <= 1` (or fewer than two items) nothing is spawned: the producer
/// runs to completion first, then the items are consumed inline, in arrival
/// order, on a single state — so sequential baselines carry no threading
/// overhead and observe the exact same `f` call sequence a one-worker
/// pipeline would. The requested `p` is clamped to the process-wide
/// [`thread_budget`](crate::thread_budget) (`PJ2K_THREADS`).
///
/// # Panics
/// Panics if the producer publishes an index twice (debug builds, claim
/// table) or fails to cover `0..n` (all builds).
// AUDIT(hot): setup/teardown — the slot vector is allocated once per
// pipeline run and the duplicate-index assert fires once per item, both
// outside the per-sample kernels the pipeline drives.
pub fn pipeline_map_with_state<T, S, R, I, F, P>(
    n: usize,
    p: usize,
    init: I,
    f: F,
    producer: P,
) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, T) -> R + Sync,
    P: FnOnce(&PipelineQueue<T>),
{
    let p = crate::budget::clamp_workers(p);
    let queue = PipelineQueue::new();
    if p <= 1 || n <= 1 {
        producer(&queue);
        queue.close();
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut state = init(0);
        while let Some((i, item)) = queue.recv() {
            assert!(slots[i].is_none(), "pipeline produced index {i} twice");
            slots[i] = Some(f(&mut state, i, item));
        }
        return unwrap_slots(slots);
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let writer = DisjointWriter::new(&mut slots);
    thread::scope(|scope| {
        for w in 0..p {
            let (f, init) = (&f, &init);
            let (writer, queue) = (&writer, &queue);
            scope.spawn(move || {
                let mut state = init(w);
                while let Some((i, item)) = queue.recv() {
                    let claim = writer.claim_range(i..i + 1);
                    // SAFETY: the queue hands each published index to
                    // exactly one worker, and the producer publishes each
                    // index once (both checked by the claim table in debug
                    // builds); `slots` outlives the scope and every slot
                    // starts as an initialized `None`, so the plain store
                    // only drops a `None`.
                    unsafe { claim.write(i, Some(f(&mut state, i, item))) };
                }
            });
        }
        // Close on unwind too: if the producer panics, the workers must
        // still observe a closed queue and drain out, or the scope's
        // implicit join would deadlock on consumers parked in `recv`.
        let guard = CloseOnDrop(&queue);
        producer(&queue);
        drop(guard);
    });
    // The realized item stream must be a *cover* of 0..n.
    writer.debug_assert_fully_claimed();
    drop(writer);
    unwrap_slots(slots)
}

/// Run `p` scoped consumers draining `queue` while the calling thread first
/// runs `produce` (publishing items) and then `drive`, overlapped with the
/// consumers' tail — the decode-side mirror of [`pipeline_map_with_state`].
/// Results do not come back through slots; consumers communicate through
/// whatever shared state the caller closes over (e.g. disjoint band
/// buffers plus a completion gate the driver waits on).
///
/// * `init(w)` builds worker `w`'s reusable scratch.
/// * `consume(&mut state, index, item)` runs once per published item.
/// * `produce()` runs on the calling thread; the queue is closed when it
///   returns — normally or by unwinding — so consumers always drain out
///   and the scope's join cannot deadlock.
/// * `drive()` then runs on the calling thread, concurrent with consumers
///   still draining the queue; its return value is returned.
/// * `on_panic()` fires before a spawned consumer's panic is re-raised at
///   scope join, so a `drive` blocked on a completion gate can be
///   unblocked instead of deadlocking; the original panic still
///   propagates to the caller afterwards. (With `p <= 1` nothing is
///   spawned and a consumer panic propagates directly, so `on_panic` is
///   never called there.)
///
/// With `p <= 1`, `produce` runs fully, items are consumed inline in
/// arrival order on one state, then `drive` runs — the same `consume`
/// call sequence a one-worker pipeline would observe.
pub fn pipeline_overlap_with_state<T, S, R, I, C, U, P, D>(
    p: usize,
    queue: &PipelineQueue<T>,
    init: I,
    consume: C,
    on_panic: U,
    produce: P,
    drive: D,
) -> R
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    C: Fn(&mut S, usize, T) + Sync,
    U: Fn() + Sync,
    P: FnOnce(),
    D: FnOnce() -> R,
{
    let p = crate::budget::clamp_workers(p);
    if p <= 1 {
        let guard = CloseOnDrop(queue);
        produce();
        drop(guard);
        let mut state = init(0);
        while let Some((i, item)) = queue.recv() {
            consume(&mut state, i, item);
        }
        return drive();
    }
    thread::scope(|scope| {
        for w in 0..p {
            let (init, consume, on_panic) = (&init, &consume, &on_panic);
            scope.spawn(move || {
                let mut state = init(w);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    while let Some((i, item)) = queue.recv() {
                        consume(&mut state, i, item);
                    }
                }));
                if let Err(payload) = run {
                    on_panic();
                    std::panic::resume_unwind(payload);
                }
            });
        }
        let guard = CloseOnDrop(queue);
        produce();
        drop(guard);
        drive()
    })
}

/// Closes the wrapped queue when dropped — including during unwinding, so
/// a panicking producer cannot strand consumers on an open empty queue.
struct CloseOnDrop<'q, T>(&'q PipelineQueue<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

// AUDIT(hot): teardown — one pass over the finished slots per run; the
// panic is the pipeline's completeness contract.
fn unwrap_slots<R>(slots: Vec<Option<R>>) -> Vec<R> {
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("pipeline never produced index {i}")))
        .collect()
}

// Gated out under loom: these tests run the real scoped-thread executor,
// and loom's sync primitives panic outside `loom::model`. The queue
// hand-off itself is model-checked in `tests/loom.rs`.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn matches_sequential_for_all_worker_counts() {
        let want: Vec<usize> = (0..60).map(|i| i * 3 + 1).collect();
        for p in [0, 1, 2, 4, 7] {
            let got = pipeline_map_with_state(
                60,
                p,
                |_| (),
                |_state, i, payload: usize| i * 2 + payload,
                |q| {
                    for i in 0..60 {
                        q.send(i, i + 1);
                    }
                },
            );
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn out_of_order_production_returns_index_order() {
        let got = pipeline_map_with_state(
            9,
            3,
            |_| (),
            |_s, _i, payload: usize| payload,
            |q| {
                // Publish fine-to-coarse, like the pipelined encoder does.
                for i in (0..9).rev() {
                    q.send(i, 100 + i);
                }
            },
        );
        assert_eq!(got, (0..9).map(|i| 100 + i).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_consumed_exactly_once_under_contention() {
        let counters: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        let _ = pipeline_map_with_state(
            200,
            6,
            |_| (),
            |_s, i, _payload: ()| counters[i].fetch_add(1, Ordering::SeqCst),
            |q| {
                for i in 0..200 {
                    q.send(i, ());
                }
            },
        );
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn consumers_overlap_a_slow_producer() {
        // The producer trickles items out; consumption of early items must
        // complete while later items are still unpublished. Observed via a
        // counter read back by the producer between sends.
        let consumed = AtomicUsize::new(0);
        let overlap_seen = AtomicUsize::new(0);
        pipeline_map_with_state(
            8,
            2,
            |_| (),
            |_s, _i, _p: ()| {
                consumed.fetch_add(1, Ordering::SeqCst);
            },
            |q| {
                for i in 0..8 {
                    q.send(i, ());
                    if i == 4 {
                        // Give consumers a chance; any progress before the
                        // last send proves the stages overlapped.
                        for _ in 0..100 {
                            if consumed.load(Ordering::SeqCst) > 0 {
                                break;
                            }
                            thread::sleep(Duration::from_millis(1));
                        }
                        overlap_seen.store(consumed.load(Ordering::SeqCst), Ordering::SeqCst);
                    }
                }
            },
        );
        assert_eq!(consumed.load(Ordering::SeqCst), 8);
        assert!(
            overlap_seen.load(Ordering::SeqCst) > 0,
            "consumers made no progress while the producer was mid-stream"
        );
    }

    #[test]
    fn per_worker_state_is_isolated_and_reused() {
        // State is a scratch Vec: capacity must survive across items, and
        // the number of distinct states is at most p.
        let inits = AtomicUsize::new(0);
        let got = pipeline_map_with_state(
            40,
            3,
            |_w| {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<usize>::new()
            },
            |scratch, i, _p: ()| {
                scratch.clear();
                scratch.extend(0..=i);
                scratch.iter().sum::<usize>()
            },
            |q| {
                for i in 0..40 {
                    q.send(i, ());
                }
            },
        );
        let want: Vec<usize> = (0..40).map(|i| i * (i + 1) / 2).collect();
        assert_eq!(got, want);
        assert!((1..=3).contains(&inits.load(Ordering::SeqCst)));
    }

    #[test]
    fn zero_items_returns_empty() {
        for p in [1, 4] {
            let got: Vec<usize> = pipeline_map_with_state(
                0,
                p,
                |_| (),
                |_s, _i, _p: ()| unreachable!("no items to consume"),
                |_q| {},
            );
            assert!(got.is_empty(), "p={p}");
        }
    }

    #[test]
    fn payloads_reach_the_right_index() {
        // Payload is a heap value tied to its index; any misrouting would
        // corrupt the output mapping.
        let got = pipeline_map_with_state(
            50,
            4,
            |_| (),
            |_s, i, payload: Vec<usize>| {
                assert_eq!(payload, vec![i, i + 1]);
                payload.iter().sum::<usize>()
            },
            |q| {
                for i in (0..50).rev() {
                    q.send(i, vec![i, i + 1]);
                }
            },
        );
        assert_eq!(got, (0..50).map(|i| 2 * i + 1).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "never produced index")]
    fn missing_index_panics() {
        let _ = pipeline_map_with_state(
            4,
            1,
            |_| (),
            |_s, _i, _p: ()| (),
            |q| {
                q.send(0, ());
                q.send(2, ());
                q.send(3, ());
            },
        );
    }

    #[test]
    fn overlap_consumes_everything_and_returns_drive_result() {
        for p in [0, 1, 2, 4, 7] {
            let queue = PipelineQueue::new();
            let sum = AtomicUsize::new(0);
            let got = pipeline_overlap_with_state(
                p,
                &queue,
                |_| (),
                |_s, i, payload: usize| {
                    sum.fetch_add(i * 2 + payload, Ordering::SeqCst);
                },
                || {},
                || {
                    for i in 0..60 {
                        queue.send(i, i + 1);
                    }
                },
                || 777_usize,
            );
            assert_eq!(got, 777, "p={p}");
            let want: usize = (0..60).map(|i| i * 3 + 1).sum();
            assert_eq!(sum.load(Ordering::SeqCst), want, "p={p}");
        }
    }

    #[test]
    fn overlap_inline_path_orders_produce_consume_drive() {
        let queue = PipelineQueue::new();
        let log = std::sync::Mutex::new(Vec::new());
        pipeline_overlap_with_state(
            1,
            &queue,
            |_| (),
            |_s, i, _p: ()| log.lock().unwrap().push(format!("consume {i}")),
            || {},
            || {
                log.lock().unwrap().push("produce".into());
                queue.send(0, ());
                queue.send(1, ());
            },
            || log.lock().unwrap().push("drive".into()),
        );
        assert_eq!(
            *log.lock().unwrap(),
            ["produce", "consume 0", "consume 1", "drive"]
        );
    }

    #[test]
    fn overlap_drive_runs_while_consumers_still_drain() {
        // A consumer blocks on a flag only `drive` sets. If `drive` did not
        // overlap the consumer tail, this would deadlock; the bounded spin
        // turns that into a test failure instead.
        let queue = PipelineQueue::new();
        let go = std::sync::atomic::AtomicBool::new(false);
        let consumed = AtomicUsize::new(0);
        pipeline_overlap_with_state(
            2,
            &queue,
            |_| (),
            |_s, _i, _p: ()| {
                let mut spins = 0u32;
                while !go.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(1));
                    spins += 1;
                    assert!(spins < 5_000, "drive never overlapped the consumers");
                }
                consumed.fetch_add(1, Ordering::SeqCst);
            },
            || go.store(true, Ordering::SeqCst),
            || {
                for i in 0..4 {
                    queue.send(i, ());
                }
            },
            || go.store(true, Ordering::SeqCst),
        );
        assert_eq!(consumed.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn overlap_consumer_panic_fires_on_panic_and_propagates() {
        let queue = PipelineQueue::new();
        let unblocked = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let seen = unblocked.clone();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline_overlap_with_state(
                3,
                &queue,
                |_| (),
                |_s, i, _p: ()| {
                    assert!(i != 1, "poison item");
                },
                || seen.store(true, Ordering::SeqCst),
                || {
                    for i in 0..6 {
                        queue.send(i, ());
                    }
                },
                || (),
            );
        }));
        assert!(caught.is_err(), "consumer panic must propagate");
        assert!(
            unblocked.load(Ordering::SeqCst),
            "on_panic must fire so a gated driver can be released"
        );
    }

    #[test]
    fn overlap_producer_panic_still_releases_consumers() {
        // The queue must be closed when `produce` unwinds, or the spawned
        // consumers would park forever and the scope join would hang.
        let queue = PipelineQueue::new();
        let consumed = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline_overlap_with_state(
                3,
                &queue,
                |_| (),
                |_s, _i, _p: ()| {
                    consumed.fetch_add(1, Ordering::SeqCst);
                },
                || {},
                || {
                    queue.send(0, ());
                    panic!("producer died mid-stream");
                },
                || (),
            );
        }));
        assert!(caught.is_err(), "producer panic must propagate");
    }
}
