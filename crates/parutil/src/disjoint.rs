//! Checked disjoint-access layer for parallel writes into one buffer.
//!
//! The paper's parallel schemes (static row/column splits for the DWT,
//! schedule-driven slot assignment for the Tier-1 pool) all rest on the same
//! invariant: *every worker touches a disjoint set of element indices*. The
//! raw [`crate::SendPtr`] escape hatch leaves that invariant entirely to
//! code review. [`DisjointWriter`] makes it mechanically checked:
//!
//! * Workers **claim** the region they intend to access — a contiguous
//!   range, an explicit index set, or a strided rectangle — and receive a
//!   [`DisjointClaim`] handle for the actual accesses.
//! * In **debug builds** every claim is registered in a shared claim table;
//!   an overlapping claim panics deterministically at claim time (instead
//!   of corrupting data silently), every access is checked against the
//!   claimed region, and scope-exit helpers assert that claims exactly
//!   cover the intended domain.
//! * In **release builds** the claim table, the per-access membership
//!   checks, and the coverage helpers all compile away; a claim is a bare
//!   pointer + cheap O(1) bounds assertions, so the hot loops are exactly
//!   as fast as the unchecked pointer arithmetic they replace.
//!
//! Accessors remain `unsafe` because release builds do not check per-access
//! bounds or disjointness — but any schedule bug that could break the
//! contract is caught deterministically the first time a debug build runs.

#[cfg(debug_assertions)]
use crate::sync::{Arc, Mutex};
#[cfg(debug_assertions)]
use std::collections::HashSet;
use std::marker::PhantomData;
use std::ops::Range;

/// Shared bitmap of claimed element indices (debug builds only).
#[cfg(debug_assertions)]
struct ClaimTable {
    bits: Vec<u64>,
    claimed: usize,
}

#[cfg(debug_assertions)]
impl ClaimTable {
    // AUDIT(hot): debug-build only — the claim bitmap exists solely in
    // debug builds; release hot paths compile none of this.
    fn new(len: usize) -> Self {
        ClaimTable {
            bits: vec![0u64; len.div_ceil(64)],
            claimed: 0,
        }
    }

    // AUDIT(hot): debug-build only — overlap detection, absent in release.
    fn claim(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        assert!(
            self.bits[w] & (1 << b) == 0,
            "DisjointWriter: overlapping claim — element {i} is already claimed by another worker"
        );
        self.bits[w] |= 1 << b;
        self.claimed += 1;
    }
}

/// The claimed region carried by a [`DisjointClaim`] (debug builds only).
#[cfg(debug_assertions)]
#[derive(Debug, Clone)]
enum Region {
    Range(Range<usize>),
    Indices(HashSet<usize>),
    Rect {
        xs: Range<usize>,
        ys: Range<usize>,
        stride: usize,
    },
}

#[cfg(debug_assertions)]
impl Region {
    fn owns(&self, i: usize) -> bool {
        match self {
            Region::Range(r) => r.contains(&i),
            Region::Indices(set) => set.contains(&i),
            Region::Rect { xs, ys, stride } => {
                let y = i / stride;
                let x = i % stride;
                ys.contains(&y) && xs.contains(&x)
            }
        }
    }

    /// Whether the contiguous span `[start, start + len)` lies inside the
    /// region.
    fn owns_span(&self, start: usize, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        match self {
            Region::Range(r) => start >= r.start && start + len <= r.end,
            Region::Indices(set) => (start..start + len).all(|i| set.contains(&i)),
            Region::Rect { xs, ys, stride } => {
                let y = start / stride;
                let x = start % stride;
                ys.contains(&y) && x >= xs.start && x + len <= xs.end
            }
        }
    }
}

/// Entry point of the checked disjoint-access layer: wraps one mutable
/// buffer and hands out non-overlapping [`DisjointClaim`]s to workers.
///
/// See the [module docs](self) for the full model.
pub struct DisjointWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    #[cfg(debug_assertions)]
    table: Arc<Mutex<ClaimTable>>,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the writer only exposes raw access through claims, whose
// disjointness is the claiming workers' obligation (checked in debug
// builds); the PhantomData keeps the underlying buffer borrowed for 'a.
unsafe impl<T: Send> Send for DisjointWriter<'_, T> {}
// SAFETY: same argument — `&DisjointWriter` only permits claiming
// (internally synchronized) and claimed, disjoint accesses.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wrap `slice` for checked disjoint parallel writes. The slice stays
    /// mutably borrowed for the writer's lifetime.
    // AUDIT(hot): setup-time — one writer per parallel region; the
    // mutex-guarded claim table is debug-build bookkeeping.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            #[cfg(debug_assertions)]
            table: Arc::new(Mutex::new(ClaimTable::new(slice.len()))),
            _marker: PhantomData,
        }
    }

    /// Number of elements in the wrapped buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the wrapped buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Claim the contiguous element range `range`.
    ///
    /// # Panics
    /// If the range is out of bounds; in debug builds, if any element is
    /// already claimed.
    pub fn claim_range(&self, range: Range<usize>) -> DisjointClaim<'_, T> {
        assert!(range.end <= self.len, "claim_range out of bounds"); // AUDIT(hot): O(1) per claim, not per element.
        #[cfg(debug_assertions)]
        self.register(range.clone()); // AUDIT(hot): Range copy + debug-only registration.
        DisjointClaim {
            ptr: self.ptr,
            #[cfg(debug_assertions)]
            region: Region::Range(range),
            _marker: PhantomData,
        }
    }

    /// Claim an explicit set of element indices (the shape produced by
    /// [`crate::assign`] schedules).
    ///
    /// # Panics
    /// In debug builds: if any index is out of bounds, repeated, or already
    /// claimed.
    // AUDIT(hot): the bounds asserts and the index-set collect are
    // debug-build only (cfg'd field); release claims are pointer math.
    pub fn claim_indices(&self, indices: &[usize]) -> DisjointClaim<'_, T> {
        #[cfg(debug_assertions)]
        {
            for &i in indices {
                assert!(i < self.len, "claim_indices: index {i} out of bounds");
            }
            self.register(indices.iter().copied());
        }
        #[cfg(not(debug_assertions))]
        let _ = indices;
        DisjointClaim {
            ptr: self.ptr,
            #[cfg(debug_assertions)]
            region: Region::Indices(indices.iter().copied().collect()),
            _marker: PhantomData,
        }
    }

    /// Claim the strided rectangle `{ y*stride + x | x in xs, y in ys }` —
    /// the access pattern of the DWT row/column passes over an image plane
    /// with row pitch `stride`.
    ///
    /// # Panics
    /// If the rectangle exceeds the row pitch or the buffer; in debug
    /// builds, if any element is already claimed.
    pub fn claim_rect(
        &self,
        xs: Range<usize>,
        ys: Range<usize>,
        stride: usize,
    ) -> DisjointClaim<'_, T> {
        assert!(xs.end <= stride, "claim_rect: column range exceeds stride");
        if !xs.is_empty() && !ys.is_empty() {
            let last = (ys.end - 1) * stride + (xs.end - 1);
            assert!(last < self.len, "claim_rect out of bounds");
        }
        #[cfg(debug_assertions)]
        self.register(
            ys.clone()
                .flat_map(|y| xs.clone().map(move |x| y * stride + x)),
        );
        DisjointClaim {
            ptr: self.ptr,
            #[cfg(debug_assertions)]
            region: Region::Rect { xs, ys, stride },
            _marker: PhantomData,
        }
    }

    #[cfg(debug_assertions)]
    // AUDIT(hot): debug-build only — lock + bitmap update vanish in release.
    fn register(&self, indices: impl IntoIterator<Item = usize>) {
        let mut table = self.table.lock().unwrap_or_else(|e| e.into_inner());
        for i in indices {
            table.claim(i);
        }
    }

    /// Debug-build assertion that the claims issued so far cover **every**
    /// element of the buffer (full coverage at scope exit). No-op in
    /// release builds.
    // AUDIT(hot): debug-build only — coverage assertion, no-op in release.
    pub fn debug_assert_fully_claimed(&self) {
        #[cfg(debug_assertions)]
        {
            let table = self.table.lock().unwrap_or_else(|e| e.into_inner());
            assert_eq!(
                table.claimed, self.len,
                "DisjointWriter: claims cover {} of {} elements — partition is not a cover",
                table.claimed, self.len
            );
        }
    }

    /// Debug-build assertion that exactly `expected` elements have been
    /// claimed (coverage check for writers wrapping a larger buffer than
    /// the pass domain, e.g. a sub-rectangle of a padded plane). No-op in
    /// release builds.
    pub fn debug_assert_claimed(&self, expected: usize) {
        #[cfg(debug_assertions)]
        {
            let table = self.table.lock().unwrap_or_else(|e| e.into_inner());
            assert_eq!(
                table.claimed, expected,
                "DisjointWriter: claims cover {} elements, expected {expected}",
                table.claimed
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = expected;
    }
}

/// A worker's claimed region of a [`DisjointWriter`] buffer.
///
/// Accessors mirror [`crate::SendPtr`] (`read`, `write`, `slice_mut`) so
/// kernels port over mechanically; in debug builds every access is checked
/// against the claimed region.
pub struct DisjointClaim<'w, T> {
    ptr: *mut T,
    #[cfg(debug_assertions)]
    region: Region,
    _marker: PhantomData<&'w ()>,
}

// SAFETY: a claim only reaches elements its (disjointness-checked) region
// owns; sending it to another thread does not change the region.
unsafe impl<T: Send> Send for DisjointClaim<'_, T> {}

impl<T> DisjointClaim<'_, T> {
    /// Read element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the wrapped buffer and inside this claim's
    /// region (checked in debug builds).
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        #[cfg(debug_assertions)]
        assert!(self.region.owns(i), "read of unclaimed element {i}"); // AUDIT(hot): debug-build only.
                                                                       // SAFETY: caller guarantees `i` is in bounds; the claim's region
                                                                       // was bounds-checked at claim time.
        unsafe { *self.ptr.add(i) }
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and inside this claim's region (checked in
    /// debug builds); the region is exclusively owned by this claim.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        #[cfg(debug_assertions)]
        assert!(self.region.owns(i), "write to unclaimed element {i}"); // AUDIT(hot): debug-build only.
                                                                        // SAFETY: caller guarantees `i` is in bounds; disjointness of
                                                                        // claims makes the store race-free.
        unsafe { *self.ptr.add(i) = v };
    }

    /// Reborrow the contiguous sub-slice `[start, start + len)`.
    ///
    /// # Safety
    /// The span must be in bounds and lie entirely inside this claim's
    /// region (checked in debug builds).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        #[cfg(debug_assertions)]
        // AUDIT(hot): debug-build only.
        assert!(
            self.region.owns_span(start, len),
            "slice_mut of unclaimed span {start}..{}",
            start + len
        );
        // SAFETY: caller guarantees the span is in bounds; disjointness of
        // claims makes the exclusive reborrow sound.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

// Gated out under loom: these tests claim from plain std threads, and
// loom's mutex (backing the debug claim table) panics outside
// `loom::model`. The claim/cover protocol is model-checked in
// `tests/loom.rs`.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn claimed_writes_land() {
        let mut buf = vec![0u32; 16];
        {
            let w = DisjointWriter::new(&mut buf);
            let a = w.claim_range(0..8);
            let b = w.claim_range(8..16);
            for i in 0..8 {
                // SAFETY: each claim owns its range exclusively.
                unsafe {
                    a.write(i, i as u32);
                    b.write(8 + i, 100 + i as u32);
                }
            }
            w.debug_assert_fully_claimed();
        }
        assert_eq!(buf[3], 3);
        assert_eq!(buf[11], 103);
    }

    #[test]
    fn parallel_claims_from_scoped_threads() {
        let mut buf = vec![0usize; 97];
        let n = buf.len();
        {
            let w = DisjointWriter::new(&mut buf);
            let w = &w;
            std::thread::scope(|scope| {
                for chunk in crate::schedule::chunk_ranges(n, 4) {
                    scope.spawn(move || {
                        let claim = w.claim_range(chunk.clone());
                        for i in chunk {
                            // SAFETY: ranges from chunk_ranges are disjoint.
                            unsafe { claim.write(i, i * 2) };
                        }
                    });
                }
            });
            w.debug_assert_fully_claimed();
        }
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overlapping claim")]
    fn overlapping_range_claims_panic() {
        let mut buf = vec![0u8; 10];
        let w = DisjointWriter::new(&mut buf);
        let _a = w.claim_range(0..6);
        let _b = w.claim_range(5..10); // element 5 claimed twice
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overlapping claim")]
    fn overlapping_index_claims_panic() {
        let mut buf = vec![0u8; 10];
        let w = DisjointWriter::new(&mut buf);
        let _a = w.claim_indices(&[0, 2, 4]);
        let _b = w.claim_indices(&[1, 2, 3]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overlapping claim")]
    fn overlapping_rect_claims_panic() {
        let mut buf = vec![0u8; 64];
        let w = DisjointWriter::new(&mut buf);
        let _a = w.claim_rect(0..4, 0..8, 8);
        let _b = w.claim_rect(3..6, 0..8, 8); // column 3 claimed twice
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "unclaimed element")]
    fn write_outside_claim_panics_in_debug() {
        let mut buf = vec![0u8; 10];
        let w = DisjointWriter::new(&mut buf);
        let a = w.claim_range(0..5);
        // SAFETY: deliberately violates the claim to exercise the check.
        unsafe { a.write(7, 1) };
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "partition is not a cover")]
    fn partial_cover_fails_full_coverage_assert() {
        let mut buf = vec![0u8; 10];
        let w = DisjointWriter::new(&mut buf);
        let _a = w.claim_range(0..5);
        w.debug_assert_fully_claimed();
    }

    #[test]
    fn rect_claim_matches_strided_layout() {
        // 6 columns x 4 rows with stride 8 (2 columns of padding).
        let mut buf = vec![0u32; 32];
        {
            let w = DisjointWriter::new(&mut buf);
            let left = w.claim_rect(0..3, 0..4, 8);
            let right = w.claim_rect(3..6, 0..4, 8);
            for y in 0..4 {
                for x in 0..3 {
                    // SAFETY: each rect owns its columns exclusively.
                    unsafe {
                        left.write(y * 8 + x, 1);
                        right.write(y * 8 + 3 + x, 2);
                    }
                }
            }
            w.debug_assert_claimed(24);
        }
        for y in 0..4 {
            for x in 0..8 {
                let want = if x < 3 {
                    1
                } else if x < 6 {
                    2
                } else {
                    0
                };
                assert_eq!(buf[y * 8 + x], want, "({x},{y})");
            }
        }
    }

    #[test]
    fn slice_mut_within_rect_row() {
        let mut buf: Vec<u16> = (0..40).collect();
        let w = DisjointWriter::new(&mut buf);
        let claim = w.claim_rect(0..6, 1..3, 10);
        // SAFETY: row segment [10, 16) lies inside the claimed rect.
        let row = unsafe { claim.slice_mut(10, 6) };
        row.copy_from_slice(&[9, 9, 9, 9, 9, 9]);
        drop(claim);
        w.debug_assert_claimed(12);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "unclaimed span")]
    fn slice_mut_crossing_rect_padding_panics_in_debug() {
        let mut buf = vec![0u16; 40];
        let w = DisjointWriter::new(&mut buf);
        let claim = w.claim_rect(0..6, 1..3, 10);
        // Span [10, 18) runs past column 5 into the padding.
        // SAFETY: deliberately violates the claim to exercise the check.
        let _ = unsafe { claim.slice_mut(10, 8) };
    }

    #[test]
    fn claim_bounds_checked_in_all_builds() {
        let mut buf = vec![0u8; 10];
        let w = DisjointWriter::new(&mut buf);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = w.claim_range(5..11);
        }))
        .is_err());
    }

    #[test]
    fn empty_claims_are_fine() {
        let mut buf = vec![0u8; 4];
        let w = DisjointWriter::new(&mut buf);
        let _a = w.claim_range(0..0);
        let _b = w.claim_indices(&[]);
        let _c = w.claim_rect(0..0, 0..0, 4);
        w.debug_assert_claimed(0);
    }
}
