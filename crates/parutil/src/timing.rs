//! Per-stage wall-clock accounting.
//!
//! The paper's runtime-analysis charts (Figs. 3, 6, 9) break the coding time
//! into named pipeline stages (image I/O, pipeline setup, inter-component
//! transform, intra-component transform, quantization, tier-1 coding, tier-2
//! coding, bitstream I/O). [`StageTimes`] accumulates durations under stage
//! names while preserving first-seen order so the harness can print the same
//! stacked rows as the paper.

use std::time::{Duration, Instant};

/// Ordered accumulator of named stage durations.
#[derive(Debug, Clone, Default)]
pub struct StageTimes {
    entries: Vec<(String, Duration)>,
}

impl StageTimes {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `d` to stage `name`, creating the stage on first use.
    // AUDIT(hot): cold — stage accounting runs once per pipeline stage
    // per run (a handful of entries), never inside coding loops.
    pub fn add(&mut self, name: &str, d: Duration) {
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| n == name) {
            entry.1 += d;
        } else {
            self.entries.push((name.to_owned(), d));
        }
    }

    /// Time the closure and charge its duration to stage `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(name, start.elapsed());
        out
    }

    /// Duration recorded for `name` (zero if never recorded).
    pub fn get(&self, name: &str) -> Duration {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map_or(Duration::ZERO, |(_, d)| *d)
    }

    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Stages in first-recorded order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.entries.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Merge another accumulator into this one (used to combine per-tile or
    /// per-run timings).
    pub fn merge(&mut self, other: &StageTimes) {
        for (name, d) in other.iter() {
            self.add(name, d);
        }
    }

    /// Fraction of the total spent in `name`; 0 when the total is zero.
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.get(name).as_secs_f64() / total
        }
    }

    /// True when no stage has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// RAII helper that charges the time between construction and `stop` (or
/// drop) to a [`StageTimes`] entry captured by name.
pub struct StageClock {
    start: Instant,
}

impl StageClock {
    /// Start a clock now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since construction.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stop and charge the elapsed time to `times` under `name`.
    pub fn stop(self, times: &mut StageTimes, name: &str) {
        times.add(name, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_preserves_order() {
        let mut t = StageTimes::new();
        t.add("dwt", Duration::from_millis(5));
        t.add("tier-1", Duration::from_millis(7));
        t.add("dwt", Duration::from_millis(3));
        let names: Vec<&str> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["dwt", "tier-1"]);
        assert_eq!(t.get("dwt"), Duration::from_millis(8));
        assert_eq!(t.total(), Duration::from_millis(15));
    }

    #[test]
    fn time_charges_closure() {
        let mut t = StageTimes::new();
        let v = t.time("work", || 21 * 2);
        assert_eq!(v, 42);
        assert!(t.get("work") > Duration::ZERO);
    }

    #[test]
    fn merge_combines() {
        let mut a = StageTimes::new();
        a.add("x", Duration::from_millis(1));
        let mut b = StageTimes::new();
        b.add("x", Duration::from_millis(2));
        b.add("y", Duration::from_millis(4));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_millis(3));
        assert_eq!(a.get("y"), Duration::from_millis(4));
    }

    #[test]
    fn fraction_is_normalized() {
        let mut t = StageTimes::new();
        assert_eq!(t.fraction("missing"), 0.0);
        t.add("a", Duration::from_millis(30));
        t.add("b", Duration::from_millis(10));
        assert!((t.fraction("a") - 0.75).abs() < 1e-9);
    }

    #[test]
    fn stage_clock_records() {
        let mut t = StageTimes::new();
        let clock = StageClock::new();
        std::hint::black_box(1 + 1);
        clock.stop(&mut t, "tick");
        assert!(t.get("tick") > Duration::ZERO);
    }
}
