//! Work-to-worker assignment policies.
//!
//! The policies correspond to the allocation strategies discussed in the
//! paper: deterministic static splits for the wavelet transform (the
//! workload per row/column is uniform, so a static allocation suffices) and
//! round-robin variants for the code-block coding stage (per-block runtime
//! varies, so blocks are interleaved across workers).
//!
//! [`DynamicCursor`] is the runtime half of [`Schedule::Dynamic`]: the
//! shared atomic claim counter every executor in [`crate::pool`] loops on.
//! It lives here (instead of inline `fetch_add` loops at each call site) so
//! the loom models in `tests/loom.rs` exercise the exact production
//! claiming code, and so all executors share one proven implementation.

use crate::sync::{AtomicUsize, Ordering};
use std::ops::Range;

/// How a list of independent work items is distributed over `p` workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Contiguous blocks: worker `w` receives items
    /// `[w*ceil(n/p), (w+1)*ceil(n/p))`. Used for the DWT row/column split
    /// where the per-item cost is uniform and locality matters.
    StaticBlock,
    /// Plain round robin: item `i` goes to worker `i % p`.
    RoundRobin,
    /// Staggered round robin, the paper's Tier-1 policy: in round `r`
    /// (items `r*p .. (r+1)*p`), the mapping of items to workers is rotated
    /// by `r`, so that systematic cost gradients along the item list (e.g.
    /// code-blocks ordered by resolution level, whose coding cost shrinks
    /// with depth) do not always penalize the same worker.
    StaggeredRoundRobin,
    /// Dynamic self-scheduling: items are grouped into consecutive chunks
    /// of `chunk` items and workers *claim* the next unprocessed chunk from
    /// a shared atomic counter whenever they go idle, so the partition
    /// adapts to the measured per-item cost at runtime (OpenMP's
    /// `schedule(dynamic, chunk)`). The executors in [`crate::pool`] claim
    /// at runtime; [`assign`] returns the *nominal* contention-free
    /// partition (chunk `c` to worker `c % p`) so schedule-shaped analyses
    /// and the claim-table oracle still see a deterministic cover.
    Dynamic {
        /// Items claimed per grab (>= 1). Small chunks balance best;
        /// larger chunks amortize the claim and improve locality.
        chunk: usize,
    },
}

/// Compute the item indices assigned to each of `p` workers.
///
/// Returns a vector of length `p`; entry `w` lists the indices owned by
/// worker `w`, in increasing order of processing. Every index in `0..n`
/// appears exactly once across all workers.
///
/// For [`Schedule::Dynamic`] the returned partition is *nominal*: the
/// chunk-cyclic assignment a contention-free run would produce (worker
/// `c % p` claims chunk `c`). Real executors resolve the owner of each
/// chunk at runtime.
///
/// # Panics
/// Panics if `p == 0`, or if `schedule` is [`Schedule::Dynamic`] with
/// `chunk == 0`.
// AUDIT(hot): batch dispatch — assignment lists are built once per
// parallel batch, O(n) total; executors then run allocation-free off
// the returned partition.
pub fn assign(n: usize, p: usize, schedule: Schedule) -> Vec<Vec<usize>> {
    assert!(p > 0, "worker count must be positive");
    let mut out = vec![Vec::with_capacity(n.div_ceil(p)); p];
    match schedule {
        Schedule::StaticBlock => {
            for (w, range) in chunk_ranges(n, p).into_iter().enumerate() {
                out[w].extend(range);
            }
        }
        Schedule::RoundRobin => {
            for i in 0..n {
                out[i % p].push(i);
            }
        }
        Schedule::StaggeredRoundRobin => {
            for i in 0..n {
                let round = i / p;
                let lane = i % p;
                out[(lane + round) % p].push(i);
            }
        }
        Schedule::Dynamic { chunk } => {
            assert!(chunk > 0, "dynamic chunk size must be positive");
            for i in 0..n {
                out[(i / chunk) % p].push(i);
            }
        }
    }
    out
}

/// The runtime claim counter realizing [`Schedule::Dynamic`]: a shared
/// cursor over the chunked domain `0..n` from which idle workers grab the
/// next unprocessed chunk.
///
/// Claiming is a single `fetch_add` on an atomic cursor — wait-free, no
/// locks — and hands every chunk to **exactly one** claimant: two workers
/// can never observe the same `fetch_add` result. The loom model
/// `dynamic_cursor_claims_each_index_exactly_once` (tests/loom.rs) checks
/// that exactly-once property across all interleavings of 2–3 threads.
///
/// `Relaxed` ordering suffices for the claim itself: the cursor only
/// partitions the index space, and every executor publishes the *results*
/// of claimed work through a separate synchronization edge (thread join,
/// channel hand-off, or the outstanding-job condvar) before readers look
/// at them.
pub struct DynamicCursor {
    next: AtomicUsize,
    n: usize,
    chunk: usize,
}

impl DynamicCursor {
    /// Cursor over `0..n` claiming `chunk` consecutive items per grab.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    // AUDIT(hot): setup-time — one cursor per dynamic batch; the chunk
    // assert is its documented contract.
    pub fn new(n: usize, chunk: usize) -> Self {
        assert!(chunk > 0, "dynamic chunk size must be positive");
        DynamicCursor {
            next: AtomicUsize::new(0),
            n,
            chunk,
        }
    }

    /// Claim the next unprocessed chunk, or `None` when the domain is
    /// exhausted. Each index in `0..n` is handed out exactly once across
    /// all claimants.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.n {
            return None;
        }
        Some(start..(start + self.chunk).min(self.n))
    }
}

/// Split `0..n` into `p` contiguous ranges whose lengths differ by at most 1.
///
/// The first `n % p` ranges are one longer than the rest, matching the
/// canonical static loop split of OpenMP's `schedule(static)`.
// AUDIT(hot): batch dispatch — O(p) range list once per batch.
pub fn chunk_ranges(n: usize, p: usize) -> Vec<std::ops::Range<usize>> {
    assert!(p > 0, "worker count must be positive");
    let base = n / p;
    let extra = n % p;
    let mut ranges = Vec::with_capacity(p);
    let mut start = 0;
    for w in 0..p {
        let len = base + usize::from(w < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn flatten_sorted(parts: &[Vec<usize>]) -> Vec<usize> {
        let mut v: Vec<usize> = parts.iter().flatten().copied().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn static_block_is_contiguous_and_complete() {
        for n in [0, 1, 7, 64, 65] {
            for p in [1, 2, 3, 4, 16] {
                let parts = assign(n, p, Schedule::StaticBlock);
                assert_eq!(parts.len(), p);
                assert_eq!(flatten_sorted(&parts), (0..n).collect::<Vec<_>>());
                for part in &parts {
                    for pair in part.windows(2) {
                        assert_eq!(pair[1], pair[0] + 1, "static parts must be contiguous");
                    }
                }
            }
        }
    }

    #[test]
    fn round_robin_interleaves() {
        let parts = assign(10, 3, Schedule::RoundRobin);
        assert_eq!(parts[0], vec![0, 3, 6, 9]);
        assert_eq!(parts[1], vec![1, 4, 7]);
        assert_eq!(parts[2], vec![2, 5, 8]);
    }

    #[test]
    fn staggered_rotates_by_round() {
        // p=3: round 0 keeps lanes, round 1 rotates by one, round 2 by two.
        let parts = assign(9, 3, Schedule::StaggeredRoundRobin);
        assert_eq!(parts[0], vec![0, 5, 7]);
        assert_eq!(parts[1], vec![1, 3, 8]);
        assert_eq!(parts[2], vec![2, 4, 6]);
    }

    #[test]
    fn staggered_is_a_partition() {
        for n in [0, 1, 5, 31, 100] {
            for p in [1, 2, 4, 7] {
                let parts = assign(n, p, Schedule::StaggeredRoundRobin);
                let all: BTreeSet<usize> = parts.iter().flatten().copied().collect();
                assert_eq!(all.len(), n);
                assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn staggered_balances_linear_cost_gradient() {
        // Cost of item i is i; staggering should spread the gradient so the
        // max/min worker cost ratio stays close to 1.
        let n = 64;
        let p = 4;
        let parts = assign(n, p, Schedule::StaggeredRoundRobin);
        let costs: Vec<usize> = parts
            .iter()
            .map(|idxs| idxs.iter().copied().sum::<usize>())
            .collect();
        let max = *costs.iter().max().unwrap();
        let min = *costs.iter().min().unwrap();
        assert!(
            max - min <= n,
            "staggered RR should balance linear gradients: {costs:?}"
        );
    }

    #[test]
    fn dynamic_nominal_assignment_is_chunk_cyclic() {
        let parts = assign(10, 3, Schedule::Dynamic { chunk: 2 });
        assert_eq!(parts[0], vec![0, 1, 6, 7]);
        assert_eq!(parts[1], vec![2, 3, 8, 9]);
        assert_eq!(parts[2], vec![4, 5]);
    }

    #[test]
    fn dynamic_nominal_assignment_is_a_partition() {
        for n in [0, 1, 5, 31, 100] {
            for p in [1, 2, 4, 7] {
                for chunk in [1, 2, 3, 8, 200] {
                    let parts = assign(n, p, Schedule::Dynamic { chunk });
                    let all: BTreeSet<usize> = parts.iter().flatten().copied().collect();
                    assert_eq!(all.len(), n, "n={n} p={p} chunk={chunk}");
                    assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), n);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn dynamic_zero_chunk_panics() {
        let _ = assign(4, 2, Schedule::Dynamic { chunk: 0 });
    }

    #[test]
    fn dynamic_cursor_covers_domain_sequentially() {
        for (n, chunk) in [(0, 1), (1, 3), (10, 3), (12, 4), (5, 100)] {
            let cursor = DynamicCursor::new(n, chunk);
            let mut seen = Vec::new();
            while let Some(range) = cursor.claim() {
                assert!(range.len() <= chunk, "n={n} chunk={chunk}");
                seen.extend(range);
            }
            assert_eq!(seen, (0..n).collect::<Vec<_>>(), "n={n} chunk={chunk}");
            assert!(cursor.claim().is_none(), "cursor must stay exhausted");
        }
    }

    #[test]
    fn dynamic_cursor_is_exactly_once_across_threads() {
        // std-runtime regression twin of the loom model: hammer one cursor
        // from several real threads and require an exactly-once partition.
        let n = 1000;
        let cursor = DynamicCursor::new(n, 7);
        let counts: Vec<std::sync::atomic::AtomicUsize> = (0..n)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (cursor, counts) = (&cursor, &counts);
                scope.spawn(move || {
                    while let Some(range) = cursor.claim() {
                        for i in range {
                            counts[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(std::sync::atomic::Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn dynamic_cursor_zero_chunk_panics() {
        let _ = DynamicCursor::new(4, 0);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0, 1, 10, 17] {
            for p in [1, 2, 3, 5] {
                let ranges = chunk_ranges(n, p);
                assert_eq!(ranges.len(), p);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                assert_eq!(expect, n);
                let lens: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                let maxl = lens.iter().max().unwrap();
                let minl = lens.iter().min().unwrap();
                assert!(maxl - minl <= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "worker count")]
    fn zero_workers_panics() {
        let _ = assign(4, 0, Schedule::RoundRobin);
    }
}
