//! Static-split executor over contiguous index ranges.
//!
//! The paper's wavelet transform parallelization assigns *contiguous* row or
//! column ranges to processors ("the deterministic workload allows a static
//! load allocation") with a barrier between the vertical and horizontal
//! filtering of every decomposition level. [`Exec`] captures exactly that
//! pattern over three backends: inline sequential execution, scoped OS
//! threads (the JJ2000 Java-thread analogue), and rayon tasks (the Jasper
//! OpenMP analogue — rayon inherits the ambient thread pool, so callers can
//! bound parallelism with `ThreadPool::install`).

use std::ops::Range;

use crate::schedule::chunk_ranges;

/// Which mechanism carries the parallel work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Run everything inline on the calling thread.
    Sequential,
    /// Scoped `std::thread` workers — the explicit-threads scheme.
    Threads,
    /// `rayon::scope` tasks — the OpenMP-style scheme.
    Rayon,
}

/// An execution policy: backend plus worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exec {
    /// Carrier of the parallel work.
    pub backend: Backend,
    /// Number of workers (contiguous ranges) per parallel region.
    pub workers: usize,
}

impl Exec {
    /// Sequential policy (1 worker, inline).
    pub const SEQ: Exec = Exec {
        backend: Backend::Sequential,
        workers: 1,
    };

    /// Scoped-thread policy with `workers` threads.
    pub fn threads(workers: usize) -> Self {
        Exec {
            backend: Backend::Threads,
            workers: workers.max(1),
        }
    }

    /// Rayon policy with `workers` ranges (parallelism additionally bounded
    /// by the ambient rayon pool).
    pub fn rayon(workers: usize) -> Self {
        Exec {
            backend: Backend::Rayon,
            workers: workers.max(1),
        }
    }

    /// True when this policy never runs more than one worker.
    pub fn is_sequential(&self) -> bool {
        matches!(self.backend, Backend::Sequential) || self.workers <= 1
    }

    /// Split `0..n` into `workers` contiguous ranges and run `f` on each,
    /// in parallel per the backend. Returns after all ranges complete
    /// (barrier semantics). The worker count is clamped to the
    /// process-wide [`thread_budget`](crate::thread_budget)
    /// (`PJ2K_THREADS`) before splitting.
    pub fn run_ranges<F>(&self, n: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let p = crate::budget::clamp_workers(self.workers).min(n);
        if self.is_sequential() || p == 1 {
            f(0..n);
            return;
        }
        let ranges = chunk_ranges(n, p);
        match self.backend {
            Backend::Sequential => f(0..n),
            Backend::Threads => {
                std::thread::scope(|scope| {
                    for range in ranges {
                        let f = &f;
                        scope.spawn(move || f(range));
                    }
                });
            }
            Backend::Rayon => {
                rayon::scope(|scope| {
                    for range in ranges {
                        let f = &f;
                        scope.spawn(move |_| f(range));
                    }
                });
            }
        }
    }
}

/// A raw mutable pointer that asserts `Send + Sync`, for handing disjoint
/// regions of one buffer to scoped workers.
///
/// # Safety contract (on the *user*)
/// Every concurrent user must access a disjoint set of element indices, and
/// the pointee must outlive all uses. The wavelet drivers uphold this by
/// assigning disjoint row or column ranges per worker.
pub struct SendPtr<T>(pub *mut T);

impl<T> SendPtr<T> {
    /// Wrap a mutable slice's base pointer.
    pub fn new(slice: &mut [T]) -> Self {
        SendPtr(slice.as_mut_ptr())
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the original buffer and not concurrently
    /// written by another thread.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        // SAFETY: `i` in bounds is the caller's contract.
        unsafe { *self.0.add(i) }
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and owned exclusively by the calling worker.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        // SAFETY: `i` in bounds and exclusively owned is the caller's
        // contract.
        unsafe { *self.0.add(i) = v };
    }

    /// Reborrow a sub-slice `[start, start+len)`.
    ///
    /// # Safety
    /// The range must be in bounds and disjoint from every range handed to
    /// other threads.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        // SAFETY: the range being in bounds and disjoint from other
        // threads' ranges is the caller's contract.
        unsafe { std::slice::from_raw_parts_mut(self.0.add(start), len) }
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: see the safety contract in the type docs; disjointness is the
// caller's obligation.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_ranges_covers_everything_on_all_backends() {
        for exec in [
            Exec::SEQ,
            Exec::threads(3),
            Exec::rayon(3),
            Exec::threads(1),
        ] {
            let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
            exec.run_ranges(37, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "exec={exec:?} index {i}");
            }
        }
    }

    #[test]
    fn run_ranges_empty_is_noop() {
        Exec::threads(4).run_ranges(0, |_| panic!("must not run"));
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let hits = AtomicUsize::new(0);
        Exec::threads(16).run_ranges(3, |r| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn send_ptr_disjoint_writes() {
        let mut buf = vec![0u32; 64];
        let ptr = SendPtr::new(&mut buf);
        Exec::threads(4).run_ranges(64, |range| {
            for i in range {
                // SAFETY: ranges from run_ranges are disjoint.
                unsafe { ptr.write(i, i as u32 * 2) };
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
    }
}
