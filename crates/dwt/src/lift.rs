//! One-dimensional lifting kernels on contiguous slices (the horizontal
//! filtering direction), plus the interleave/deinterleave helpers shared
//! with the vertical drivers.
//!
//! Conventions (matching ISO 15444-1 Annex F for signals starting at an even
//! coordinate): even input positions feed the lowpass band, odd positions
//! the highpass band; boundary handling is whole-sample symmetric extension
//! (`x[-1] = x[1]`, `x[n] = x[n-2]`). After analysis the slice holds the
//! deinterleaved `[low | high]` bands with `ceil(n/2)` low coefficients.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::{ALPHA, BETA, DELTA, GAMMA, KAPPA};

/// Mirror index `i` into `[0, n)` by whole-sample symmetric reflection.
#[inline]
// AUDIT(fn): encoder-side 1-D lifting kernel: every index is either mirror-clamped
// into range or derived from the slice's own length.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn mirror(i: isize, n: usize) -> usize {
    debug_assert!(n >= 1);
    let n = n as isize;
    let m = if i < 0 {
        -i
    } else if i >= n {
        2 * n - 2 - i
    } else {
        i
    };
    debug_assert!((0..n).contains(&m), "mirror out of range for short signals");
    m as usize
}

/// Deinterleave `buf` (even/odd) into `[low | high]` using `scratch`.
///
/// Only the odd samples (half the signal) go through `scratch`: the even
/// samples are compacted in place by an ascending walk (`buf[i] = buf[2i]`
/// reads ahead of every write), and the buffered odds are copied once into
/// the high half — ~1.5n moves instead of the 2n of a full scratch
/// round-trip.
// AUDIT(fn): encoder-side 1-D lifting kernel: every index is either mirror-clamped
// into range or derived from the slice's own length.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn deinterleave<T: Copy>(buf: &mut [T], scratch: &mut Vec<T>) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    let ce = n.div_ceil(2);
    scratch.clear();
    scratch.extend(buf.iter().copied().skip(1).step_by(2)); // AUDIT(hot): amortized — refills cleared recycled scratch.
    for i in 1..ce {
        buf[i] = buf[2 * i];
    }
    buf[ce..].copy_from_slice(scratch);
}

/// Interleave `[low | high]` in `buf` back to even/odd order using `scratch`.
///
/// The inverse permutation of [`deinterleave`], with the same half-scratch
/// scheme: the high half is buffered, the low half is spread by a
/// *descending* walk (`buf[2i] = buf[i]` writes land strictly ahead of
/// every remaining read), and the buffered highs drop into the odd slots.
// AUDIT(fn): encoder-side 1-D lifting kernel: every index is either mirror-clamped
// into range or derived from the slice's own length.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn interleave<T: Copy>(buf: &mut [T], scratch: &mut Vec<T>) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    let ce = n.div_ceil(2);
    scratch.clear();
    scratch.extend_from_slice(&buf[ce..]); // AUDIT(hot): amortized — refills cleared recycled scratch.
    for i in (1..ce).rev() {
        buf[2 * i] = buf[i];
    }
    for (i, &v) in scratch.iter().enumerate() {
        buf[2 * i + 1] = v;
    }
}

// --------------------------------------------------------------------------
// Reversible 5/3
// --------------------------------------------------------------------------

/// Forward 5/3 analysis of one row, in place; output is `[low | high]`.
// AUDIT(fn): encoder-side 1-D lifting kernel: every index is either mirror-clamped
// into range or derived from the slice's own length.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn fwd_row_53(row: &mut [i32], scratch: &mut Vec<i32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    // Predict (highpass): d[i] = x[i] - floor((x[i-1] + x[i+1]) / 2)
    let mut i = 1;
    while i + 1 < n {
        row[i] -= (row[i - 1] + row[i + 1]) >> 1;
        i += 2;
    }
    if i < n {
        // last odd position mirrors its right neighbour
        row[i] -= (2 * row[i - 1]) >> 1;
    }
    // Update (lowpass): s[i] = x[i] + floor((d[i-1] + d[i+1] + 2) / 4)
    row[0] += (2 * row[1] + 2) >> 2;
    let mut i = 2;
    while i + 1 < n {
        row[i] += (row[i - 1] + row[i + 1] + 2) >> 2;
        i += 2;
    }
    if i < n {
        row[i] += (2 * row[i - 1] + 2) >> 2;
    }
    deinterleave(row, scratch);
}

/// Inverse 5/3 synthesis of one row holding `[low | high]`, in place.
// AUDIT(fn): encoder-side 1-D lifting kernel: every index is either mirror-clamped
// into range or derived from the slice's own length.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn inv_row_53(row: &mut [i32], scratch: &mut Vec<i32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    interleave(row, scratch);
    // Undo update
    row[0] -= (2 * row[1] + 2) >> 2;
    let mut i = 2;
    while i + 1 < n {
        row[i] -= (row[i - 1] + row[i + 1] + 2) >> 2;
        i += 2;
    }
    if i < n {
        row[i] -= (2 * row[i - 1] + 2) >> 2;
    }
    // Undo predict
    let mut i = 1;
    while i + 1 < n {
        row[i] += (row[i - 1] + row[i + 1]) >> 1;
        i += 2;
    }
    if i < n {
        row[i] += (2 * row[i - 1]) >> 1;
    }
}

// --------------------------------------------------------------------------
// Irreversible 9/7
// --------------------------------------------------------------------------

/// One lifting step over a slice: `x[i] += c * (x[i-1] + x[i+1])` for every
/// `i` of `parity` (0 = even, 1 = odd), with mirrored boundaries.
#[inline]
// AUDIT(fn): encoder-side 1-D lifting kernel: every index is either mirror-clamped
// into range or derived from the slice's own length.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn lift_step_97(row: &mut [f32], parity: usize, c: f32) {
    let n = row.len();
    let mut i = parity;
    while i < n {
        let l = row[mirror(i as isize - 1, n)];
        let r = row[mirror(i as isize + 1, n)];
        row[i] += c * (l + r);
        i += 2;
    }
}

/// Forward 9/7 analysis of one row, in place; output is `[low | high]`.
///
/// Scaling: lowpass × `1/K`, highpass × `K/2`, so that the lowpass filter
/// has unit DC gain and the highpass unit Nyquist gain (the inverse of the
/// synthesis scaling used by common JPEG2000 implementations).
// AUDIT(fn): encoder-side 1-D lifting kernel: every index is either mirror-clamped
// into range or derived from the slice's own length.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn fwd_row_97(row: &mut [f32], scratch: &mut Vec<f32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    lift_step_97(row, 1, ALPHA);
    lift_step_97(row, 0, BETA);
    lift_step_97(row, 1, GAMMA);
    lift_step_97(row, 0, DELTA);
    let (kl, kh) = (1.0 / KAPPA, KAPPA / 2.0);
    let mut i = 0;
    while i < n {
        row[i] *= kl;
        if i + 1 < n {
            row[i + 1] *= kh;
        }
        i += 2;
    }
    deinterleave(row, scratch);
}

/// Inverse 9/7 synthesis of one row holding `[low | high]`, in place.
// AUDIT(fn): encoder-side 1-D lifting kernel: every index is either mirror-clamped
// into range or derived from the slice's own length.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn inv_row_97(row: &mut [f32], scratch: &mut Vec<f32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    interleave(row, scratch);
    let (kl, kh) = (KAPPA, 2.0 / KAPPA);
    let mut i = 0;
    while i < n {
        row[i] *= kl;
        if i + 1 < n {
            row[i + 1] *= kh;
        }
        i += 2;
    }
    lift_step_97(row, 0, -DELTA);
    lift_step_97(row, 1, -GAMMA);
    lift_step_97(row, 0, -BETA);
    lift_step_97(row, 1, -ALPHA);
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn mirror_reflects() {
        assert_eq!(mirror(-1, 8), 1);
        assert_eq!(mirror(-2, 8), 2);
        assert_eq!(mirror(8, 8), 6);
        assert_eq!(mirror(9, 8), 5);
        assert_eq!(mirror(3, 8), 3);
        assert_eq!(mirror(2, 2), 0);
    }

    #[test]
    fn deinterleave_interleave_roundtrip() {
        for n in 1..20usize {
            let orig: Vec<i32> = (0..n as i32).collect();
            let mut buf = orig.clone();
            let mut scratch = Vec::new();
            deinterleave(&mut buf, &mut scratch);
            // low half must be the even samples
            let ce = n.div_ceil(2);
            for (k, &v) in buf[..ce].iter().enumerate() {
                assert_eq!(v, 2 * k as i32);
            }
            interleave(&mut buf, &mut scratch);
            assert_eq!(buf, orig, "n={n}");
        }
    }

    #[test]
    fn dwt53_roundtrip_all_small_lengths() {
        let mut scratch = Vec::new();
        for n in 1..33usize {
            let orig: Vec<i32> = (0..n).map(|i| ((i * 37 + 11) % 251) as i32 - 120).collect();
            let mut buf = orig.clone();
            fwd_row_53(&mut buf, &mut scratch);
            inv_row_53(&mut buf, &mut scratch);
            assert_eq!(buf, orig, "n={n}");
        }
    }

    #[test]
    fn dwt53_constant_signal_has_zero_highpass() {
        let mut buf = vec![77i32; 16];
        let mut scratch = Vec::new();
        fwd_row_53(&mut buf, &mut scratch);
        assert!(
            buf[..8].iter().all(|&v| v == 77),
            "lowpass preserves DC: {buf:?}"
        );
        assert!(
            buf[8..].iter().all(|&v| v == 0),
            "highpass kills DC: {buf:?}"
        );
    }

    #[test]
    fn dwt53_ramp_has_zero_highpass() {
        // 5/3 predict is exact for linear signals (interior).
        let mut buf: Vec<i32> = (0..16).map(|i| 4 * i).collect();
        let mut scratch = Vec::new();
        fwd_row_53(&mut buf, &mut scratch);
        // interior highpass coefficients vanish (boundary one may not).
        for &v in &buf[8..15] {
            assert_eq!(v, 0, "{buf:?}");
        }
    }

    #[test]
    fn dwt97_roundtrip_all_small_lengths() {
        let mut scratch = Vec::new();
        for n in 1..33usize {
            let orig: Vec<f32> = (0..n).map(|i| ((i * 29 + 3) % 97) as f32 - 40.0).collect();
            let mut buf = orig.clone();
            fwd_row_97(&mut buf, &mut scratch);
            inv_row_97(&mut buf, &mut scratch);
            for (a, b) in buf.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-3, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dwt97_dc_gain_is_unity() {
        let mut buf = vec![100.0f32; 64];
        let mut scratch = Vec::new();
        fwd_row_97(&mut buf, &mut scratch);
        for &v in &buf[..32] {
            assert!((v - 100.0).abs() < 1e-2, "lowpass DC gain should be 1: {v}");
        }
        for &v in &buf[32..] {
            assert!(v.abs() < 1e-3, "highpass DC response should vanish: {v}");
        }
    }

    #[test]
    fn dwt97_nyquist_gain_is_unity() {
        let mut buf: Vec<f32> = (0..64)
            .map(|i| if i % 2 == 0 { 50.0 } else { -50.0 })
            .collect();
        let mut scratch = Vec::new();
        fwd_row_97(&mut buf, &mut scratch);
        // interior coefficients: lowpass ~0, highpass magnitude ~50
        for &v in &buf[4..28] {
            assert!(v.abs() < 0.1, "lowpass Nyquist response should vanish: {v}");
        }
        for &v in &buf[36..60] {
            assert!(
                (v.abs() - 50.0).abs() < 0.5,
                "highpass Nyquist gain should be 1: {v}"
            );
        }
    }

    #[test]
    fn single_sample_is_identity() {
        let mut b53 = vec![42i32];
        let mut s = Vec::new();
        fwd_row_53(&mut b53, &mut s);
        assert_eq!(b53, [42]);
        inv_row_53(&mut b53, &mut s);
        assert_eq!(b53, [42]);
        let mut b97 = vec![42.0f32];
        let mut sf = Vec::new();
        fwd_row_97(&mut b97, &mut sf);
        assert_eq!(b97, [42.0]);
    }

    #[test]
    fn length_two_roundtrip() {
        let mut s = Vec::new();
        let mut b = vec![10i32, -7];
        fwd_row_53(&mut b, &mut s);
        inv_row_53(&mut b, &mut s);
        assert_eq!(b, [10, -7]);
    }
}
