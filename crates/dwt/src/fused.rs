//! Fused single-pass lifting kernels ("single-loop" schemes).
//!
//! The per-step kernels in [`crate::lift`] and [`crate::vertical`] make one
//! full sweep over the signal *per lifting step* — two sweeps for 5/3, five
//! (four lifting + scaling) for 9/7, plus a deinterleave pass. For a
//! memory-bound transform that traffic dominates. The kernels here apply
//! every predict/update/scale step in a single rolling sweep: a small
//! coefficient-history window (one value for 5/3, three for 9/7) carries
//! the partially-lifted boundary of the sweep, and each input sample is
//! read exactly once.
//!
//! Every kernel computes *bit-identical* outputs to its per-step
//! counterpart: each output coefficient is produced by the same arithmetic
//! expressions, on the same operand values, in the same order — fusion only
//! reorders *between* independent coefficients, never inside one. The
//! integer 5/3 path is exactly identical; the 9/7 path is identical to the
//! last float bit (asserted by unit tests and property tests).
//!
//! Whole-sample symmetric extension matches [`crate::lift::mirror`] exactly,
//! including the degenerate 1- and 2-sample signals:
//! `x[-1] = x[1]`, `x[n] = x[n-2]`, and a 1-sample signal is the identity.
//!
//! Layout conventions match the per-step kernels: analysis leaves the
//! deinterleaved `[low | high]` Mallat halves with `ceil(n/2)` low
//! coefficients; synthesis consumes that layout.
//!
//! The vertical (column) kernels keep the strip discipline of
//! [`crate::vertical`]: the inner loop iterates across `strip` adjacent
//! columns of one row so every fetched cache line is fully used and the
//! compiler can vectorize the lane loop. Per-lane history lives in small
//! scratch arrays. Low rows are written in place *behind* the read front
//! (the rolling sweep reads rows `2i..=2i+2` while writing row `i` or
//! `i-1`, which the sweep has already consumed); high rows are buffered in
//! scratch and stored to the bottom half afterwards, so the whole vertical
//! pass touches each coefficient once on read and ~1.5 times on write —
//! versus 5-7 full read+write sweeps for the per-step path. All accesses go
//! through [`DisjointClaim`] raw reads/writes, so the hot lane loops carry
//! no bounds checks by construction.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::lift::mirror;
use crate::{ALPHA, BETA, DELTA, GAMMA, KAPPA};
use pj2k_parutil::DisjointClaim;
use std::ops::Range;

#[inline]
// AUDIT(fn): encoder-side fused lifting kernel: indices derive from the claimed
// region's geometry (debug-checked disjoint claims) and rolling-window
// offsets are mirror-clamped.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn mirror_y(y: isize, h: usize) -> usize {
    mirror(y, h)
}

// --------------------------------------------------------------------------
// Fused 5/3 rows
// --------------------------------------------------------------------------

/// Fused forward 5/3 analysis of one row; output is `[low | high]`.
///
/// Single rolling sweep: for each even/odd input pair the highpass `d(i)`
/// is predicted and the lowpass `s(i)` updated immediately from
/// `d(i-1), d(i)`, so the row is read once instead of once per lifting
/// step. Bit-identical to [`crate::lift::fwd_row_53`].
// AUDIT(fn): encoder-side fused lifting kernel: indices derive from the claimed
// region's geometry (debug-checked disjoint claims) and rolling-window
// offsets are mirror-clamped.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn fwd_row_53_fused(row: &mut [i32], scratch: &mut Vec<i32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    let ce = n.div_ceil(2);
    let fh = n / 2;
    scratch.clear();
    scratch.resize(n, 0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
    let (lo, hi) = scratch.split_at_mut(ce);
    let mut d_prev = 0i32;
    for i in 0..fh {
        let xe = row[2 * i];
        let xr = row[mirror(2 * i as isize + 2, n)];
        let d = row[2 * i + 1] - ((xe + xr) >> 1);
        let dl = if i == 0 { d } else { d_prev };
        hi[i] = d;
        lo[i] = xe + ((dl + d + 2) >> 2);
        d_prev = d;
    }
    if n % 2 == 1 {
        lo[ce - 1] = row[n - 1] + ((2 * d_prev + 2) >> 2);
    }
    row.copy_from_slice(scratch);
}

/// Fused inverse 5/3 synthesis of one row holding `[low | high]`.
///
/// Bit-identical to [`crate::lift::inv_row_53`].
// AUDIT(fn): encoder-side fused lifting kernel: indices derive from the claimed
// region's geometry (debug-checked disjoint claims) and rolling-window
// offsets are mirror-clamped.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn inv_row_53_fused(row: &mut [i32], scratch: &mut Vec<i32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    let ce = n.div_ceil(2);
    let fh = n / 2;
    scratch.clear();
    scratch.resize(n, 0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
    let mut prev_even = row[0] - ((2 * row[ce] + 2) >> 2);
    scratch[0] = prev_even;
    for i in 1..ce {
        let dl = row[ce + i - 1];
        let dr = if i < fh { row[ce + i] } else { dl };
        let e = row[i] - ((dl + dr + 2) >> 2);
        scratch[2 * i] = e;
        scratch[2 * i - 1] = dl + ((prev_even + e) >> 1);
        prev_even = e;
    }
    if n.is_multiple_of(2) {
        scratch[n - 1] = row[n - 1] + ((2 * prev_even) >> 1);
    }
    row.copy_from_slice(scratch);
}

// --------------------------------------------------------------------------
// Fused 9/7 rows
// --------------------------------------------------------------------------

/// Fused forward 9/7 analysis of one row; output is `[low | high]`.
///
/// The four lifting stages form a rolling pipeline: at pair `i` the sweep
/// computes `a(2i+1)` (α-stage), `b(2i)` (β-stage), `c(2i-1)` (γ-stage)
/// and `e(2i-2)` (δ-stage) from a three-value history window, then emits
/// `low[i-1] = e·(1/K)` and `high[i-1] = c·(K/2)`. Bit-identical to
/// [`crate::lift::fwd_row_97`].
// AUDIT(fn): encoder-side fused lifting kernel: indices derive from the claimed
// region's geometry (debug-checked disjoint claims) and rolling-window
// offsets are mirror-clamped.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn fwd_row_97_fused(row: &mut [f32], scratch: &mut Vec<f32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    let ce = n.div_ceil(2);
    let fh = n / 2;
    let (kl, kh) = (1.0 / KAPPA, KAPPA / 2.0);
    scratch.clear();
    scratch.resize(n, 0.0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
    let (lo, hi) = scratch.split_at_mut(ce);
    let (mut a_prev, mut b_prev, mut c_prev) = (0f32, 0f32, 0f32);
    for i in 0..fh {
        let xe = row[2 * i];
        let xr = row[mirror(2 * i as isize + 2, n)];
        let a = row[2 * i + 1] + ALPHA * (xe + xr);
        let al = if i == 0 { a } else { a_prev };
        let b = xe + BETA * (al + a);
        if i >= 1 {
            let c = a_prev + GAMMA * (b_prev + b);
            let cl = if i == 1 { c } else { c_prev };
            let e = b_prev + DELTA * (cl + c);
            lo[i - 1] = e * kl;
            hi[i - 1] = c * kh;
            c_prev = c;
        }
        a_prev = a;
        b_prev = b;
    }
    if n.is_multiple_of(2) {
        // Pending tail: c(n-1) mirrors b(n) = b(n-2), then e(n-2).
        let c = a_prev + GAMMA * (b_prev + b_prev);
        let cl = if fh == 1 { c } else { c_prev };
        let e = b_prev + DELTA * (cl + c);
        lo[fh - 1] = e * kl;
        hi[fh - 1] = c * kh;
    } else {
        // Pending tail: b(n-1) mirrors a(n) = a(n-2); then c(n-2), e(n-3)
        // and the final even e(n-1) which mirrors c(n) = c(n-2).
        let b_last = row[n - 1] + BETA * (a_prev + a_prev);
        let c = a_prev + GAMMA * (b_prev + b_last);
        let cl = if fh == 1 { c } else { c_prev };
        let e = b_prev + DELTA * (cl + c);
        lo[fh - 1] = e * kl;
        hi[fh - 1] = c * kh;
        lo[fh] = (b_last + DELTA * (c + c)) * kl;
    }
    row.copy_from_slice(scratch);
}

/// Fused inverse 9/7 synthesis of one row holding `[low | high]`.
///
/// Bit-identical to [`crate::lift::inv_row_97`].
// AUDIT(fn): encoder-side fused lifting kernel: indices derive from the claimed
// region's geometry (debug-checked disjoint claims) and rolling-window
// offsets are mirror-clamped.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn inv_row_97_fused(row: &mut [f32], scratch: &mut Vec<f32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    let ce = n.div_ceil(2);
    let fh = n / 2;
    let (kl, kh) = (KAPPA, 2.0 / KAPPA);
    scratch.clear();
    scratch.resize(n, 0.0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
    let (mut c_prev, mut b_prev, mut a_prev, mut x_prev) = (0f32, 0f32, 0f32, 0f32);
    for i in 0..ce {
        let e_cur = row[i] * kl;
        let c_cur = if i < fh { row[ce + i] * kh } else { c_prev };
        let b = e_cur - DELTA * (if i == 0 { c_cur } else { c_prev } + c_cur);
        if i >= 1 {
            let a = c_prev - GAMMA * (b_prev + b);
            let al = if i == 1 { a } else { a_prev };
            let xe = b_prev - BETA * (al + a);
            scratch[2 * i - 2] = xe;
            if i >= 2 {
                scratch[2 * i - 3] = a_prev - ALPHA * (x_prev + xe);
            }
            a_prev = a;
            x_prev = xe;
        }
        b_prev = b;
        c_prev = c_cur;
    }
    if n.is_multiple_of(2) {
        // Pending tail: a(n-1) mirrors b(n) = b(n-2); x(n-2); x(n-3);
        // and x(n-1) which mirrors x(n) = x(n-2).
        let a_last = c_prev - GAMMA * (b_prev + b_prev);
        let al = if ce == 1 { a_last } else { a_prev };
        let xe = b_prev - BETA * (al + a_last);
        scratch[n - 2] = xe;
        if n >= 4 {
            scratch[n - 3] = a_prev - ALPHA * (x_prev + xe);
        }
        scratch[n - 1] = a_last - ALPHA * (xe + xe);
    } else {
        // Pending tail: even x(n-1) mirrors a(n) = a(n-2), then odd x(n-2).
        let x_last = b_prev - BETA * (a_prev + a_prev);
        scratch[n - 1] = x_last;
        scratch[n - 2] = a_prev - ALPHA * (x_prev + x_last);
    }
    row.copy_from_slice(scratch);
}

// --------------------------------------------------------------------------
// Fused 5/3 vertical strips
// --------------------------------------------------------------------------

/// Fused forward 5/3 vertical analysis over columns `cols`, `strip` adjacent
/// columns per rolling sweep.
///
/// One top-to-bottom sweep applies predict + update and deinterleaves on
/// the fly: low rows land in place behind the read front, high rows are
/// buffered in `scratch` and stored to the bottom half after the sweep.
/// Bit-identical to [`crate::vertical::fwd_strip_53_cols`] (and hence the
/// naive kernel) for every strip width.
///
/// # Safety
/// `cols` must be in bounds and disjoint from ranges given to other
/// threads; `h * stride` elements must be allocated.
// AUDIT(fn): encoder-side fused lifting kernel: indices derive from the claimed
// region's geometry (debug-checked disjoint claims) and rolling-window
// offsets are mirror-clamped.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn fwd_fused_strip_53_cols(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    strip: usize,
    scratch: &mut Vec<i32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let strip = strip.max(1);
        let ce = h.div_ceil(2);
        let fh = h / 2;
        let mut x0 = cols.start;
        while x0 < cols.end {
            let s = strip.min(cols.end - x0);
            scratch.clear();
            // Layout: `fh` buffered high rows, then one lane of d-history.
            scratch.resize((fh + 1) * s, 0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
            let (hibuf, d_prev) = scratch.split_at_mut(fh * s);
            for i in 0..fh {
                let r0 = 2 * i * stride;
                let r1 = r0 + stride;
                let rr = mirror_y(2 * i as isize + 2, h) * stride;
                let wl = i * stride;
                let first = i == 0;
                for dx in 0..s {
                    let x = x0 + dx;
                    let xe = ptr.read(r0 + x);
                    let d = ptr.read(r1 + x) - ((xe + ptr.read(rr + x)) >> 1);
                    let dl = if first { d } else { d_prev[dx] };
                    hibuf[i * s + dx] = d;
                    d_prev[dx] = d;
                    ptr.write(wl + x, xe + ((dl + d + 2) >> 2));
                }
            }
            if !h.is_multiple_of(2) {
                let rn = (h - 1) * stride;
                let wl = (ce - 1) * stride;
                for (dx, &d) in d_prev.iter().enumerate() {
                    let x = x0 + dx;
                    ptr.write(wl + x, ptr.read(rn + x) + ((2 * d + 2) >> 2));
                }
            }
            for j in 0..fh {
                let wr = (ce + j) * stride;
                for dx in 0..s {
                    ptr.write(wr + x0 + dx, hibuf[j * s + dx]);
                }
            }
            x0 += s;
        }
    }
}

/// Fused inverse 5/3 vertical synthesis over columns `cols`.
///
/// The low half is buffered in `scratch` up front (the interleaved write
/// front overtakes it), then one rolling sweep reconstructs even/odd rows
/// in place. Bit-identical to [`crate::vertical::inv_strip_53_cols`].
///
/// # Safety
/// Same contract as [`fwd_fused_strip_53_cols`].
// AUDIT(fn): encoder-side fused lifting kernel: indices derive from the claimed
// region's geometry (debug-checked disjoint claims) and rolling-window
// offsets are mirror-clamped.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn inv_fused_strip_53_cols(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    strip: usize,
    scratch: &mut Vec<i32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let strip = strip.max(1);
        let ce = h.div_ceil(2);
        let fh = h / 2;
        let mut x0 = cols.start;
        while x0 < cols.end {
            let s = strip.min(cols.end - x0);
            scratch.clear();
            // Layout: `ce` buffered low rows, then lanes of d-history and
            // the previous reconstructed even row.
            scratch.resize((ce + 2) * s, 0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
            let (lobuf, state) = scratch.split_at_mut(ce * s);
            let (d_prev, pe) = state.split_at_mut(s);
            for j in 0..ce {
                let rr = j * stride;
                for dx in 0..s {
                    lobuf[j * s + dx] = ptr.read(rr + x0 + dx);
                }
            }
            let hrow0 = ce * stride;
            for dx in 0..s {
                let x = x0 + dx;
                let d0 = ptr.read(hrow0 + x);
                let e = lobuf[dx] - ((2 * d0 + 2) >> 2);
                ptr.write(x, e);
                d_prev[dx] = d0;
                pe[dx] = e;
            }
            for i in 1..ce {
                let rh = (ce + i) * stride;
                let we = 2 * i * stride;
                let wo = we - stride;
                let interior = i < fh;
                for dx in 0..s {
                    let x = x0 + dx;
                    let dl = d_prev[dx];
                    let dr = if interior { ptr.read(rh + x) } else { dl };
                    let e = lobuf[i * s + dx] - ((dl + dr + 2) >> 2);
                    ptr.write(we + x, e);
                    ptr.write(wo + x, dl + ((pe[dx] + e) >> 1));
                    d_prev[dx] = dr;
                    pe[dx] = e;
                }
            }
            if h.is_multiple_of(2) {
                let wn = (h - 1) * stride;
                for dx in 0..s {
                    let x = x0 + dx;
                    ptr.write(wn + x, d_prev[dx] + ((2 * pe[dx]) >> 1));
                }
            }
            x0 += s;
        }
    }
}

// --------------------------------------------------------------------------
// Fused 9/7 vertical strips
// --------------------------------------------------------------------------

/// Fused forward 9/7 vertical analysis over columns `cols`, `strip` adjacent
/// columns per rolling sweep.
///
/// All four lifting stages plus scaling run in one top-to-bottom sweep with
/// three per-lane history rows; low rows land in place behind the read
/// front, high rows are buffered and stored afterwards. Bit-identical to
/// [`crate::vertical::fwd_strip_97_cols`] for every strip width.
///
/// # Safety
/// Same contract as [`fwd_fused_strip_53_cols`].
// AUDIT(fn): encoder-side fused lifting kernel: indices derive from the claimed
// region's geometry (debug-checked disjoint claims) and rolling-window
// offsets are mirror-clamped.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn fwd_fused_strip_97_cols(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    strip: usize,
    scratch: &mut Vec<f32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let strip = strip.max(1);
        let ce = h.div_ceil(2);
        let fh = h / 2;
        let (kl, kh) = (1.0 / KAPPA, KAPPA / 2.0);
        let mut x0 = cols.start;
        while x0 < cols.end {
            let s = strip.min(cols.end - x0);
            scratch.clear();
            // Layout: `fh` buffered high rows + three lanes of history
            // (a, b, c stage values).
            scratch.resize((fh + 3) * s, 0.0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
            let (hibuf, state) = scratch.split_at_mut(fh * s);
            let (a_prev, state) = state.split_at_mut(s);
            let (b_prev, c_prev) = state.split_at_mut(s);
            for i in 0..fh {
                let r0 = 2 * i * stride;
                let r1 = r0 + stride;
                let rr = mirror_y(2 * i as isize + 2, h) * stride;
                let (first, second) = (i == 0, i == 1);
                let wl = i.wrapping_sub(1).wrapping_mul(stride);
                for dx in 0..s {
                    let x = x0 + dx;
                    let xe = ptr.read(r0 + x);
                    let a = ptr.read(r1 + x) + ALPHA * (xe + ptr.read(rr + x));
                    let al = if first { a } else { a_prev[dx] };
                    let b = xe + BETA * (al + a);
                    if !first {
                        let c = a_prev[dx] + GAMMA * (b_prev[dx] + b);
                        let cl = if second { c } else { c_prev[dx] };
                        let e = b_prev[dx] + DELTA * (cl + c);
                        ptr.write(wl + x, e * kl);
                        hibuf[(i - 1) * s + dx] = c * kh;
                        c_prev[dx] = c;
                    }
                    a_prev[dx] = a;
                    b_prev[dx] = b;
                }
            }
            let single = fh == 1;
            if h.is_multiple_of(2) {
                let wl = (fh - 1) * stride;
                for dx in 0..s {
                    let x = x0 + dx;
                    let c = a_prev[dx] + GAMMA * (b_prev[dx] + b_prev[dx]);
                    let cl = if single { c } else { c_prev[dx] };
                    let e = b_prev[dx] + DELTA * (cl + c);
                    ptr.write(wl + x, e * kl);
                    hibuf[(fh - 1) * s + dx] = c * kh;
                }
            } else {
                let rn = (h - 1) * stride;
                let wl = (fh - 1) * stride;
                let wn = fh * stride;
                for dx in 0..s {
                    let x = x0 + dx;
                    let b_last = ptr.read(rn + x) + BETA * (a_prev[dx] + a_prev[dx]);
                    let c = a_prev[dx] + GAMMA * (b_prev[dx] + b_last);
                    let cl = if single { c } else { c_prev[dx] };
                    let e = b_prev[dx] + DELTA * (cl + c);
                    ptr.write(wl + x, e * kl);
                    hibuf[(fh - 1) * s + dx] = c * kh;
                    ptr.write(wn + x, (b_last + DELTA * (c + c)) * kl);
                }
            }
            for j in 0..fh {
                let wr = (ce + j) * stride;
                for dx in 0..s {
                    ptr.write(wr + x0 + dx, hibuf[j * s + dx]);
                }
            }
            x0 += s;
        }
    }
}

/// Fused inverse 9/7 vertical synthesis over columns `cols`.
///
/// Bit-identical to [`crate::vertical::inv_strip_97_cols`].
///
/// # Safety
/// Same contract as [`fwd_fused_strip_53_cols`].
// AUDIT(fn): encoder-side fused lifting kernel: indices derive from the claimed
// region's geometry (debug-checked disjoint claims) and rolling-window
// offsets are mirror-clamped.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn inv_fused_strip_97_cols(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    strip: usize,
    scratch: &mut Vec<f32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let strip = strip.max(1);
        let ce = h.div_ceil(2);
        let fh = h / 2;
        let (kl, kh) = (KAPPA, 2.0 / KAPPA);
        let mut x0 = cols.start;
        while x0 < cols.end {
            let s = strip.min(cols.end - x0);
            scratch.clear();
            // Layout: `ce` buffered low rows + four lanes of history
            // (c, b, a stage values and the previous even output).
            scratch.resize((ce + 4) * s, 0.0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
            let (lobuf, state) = scratch.split_at_mut(ce * s);
            let (c_prev, state) = state.split_at_mut(s);
            let (b_prev, state) = state.split_at_mut(s);
            let (a_prev, x_prev) = state.split_at_mut(s);
            for j in 0..ce {
                let rr = j * stride;
                for dx in 0..s {
                    lobuf[j * s + dx] = ptr.read(rr + x0 + dx);
                }
            }
            for i in 0..ce {
                let rh = (ce + i) * stride;
                let we = (2 * i).wrapping_sub(2).wrapping_mul(stride);
                let wo = (2 * i).wrapping_sub(3).wrapping_mul(stride);
                let (first, second) = (i == 0, i == 1);
                let interior = i < fh;
                for dx in 0..s {
                    let x = x0 + dx;
                    let e_cur = lobuf[i * s + dx] * kl;
                    let c_cur = if interior {
                        ptr.read(rh + x) * kh
                    } else {
                        c_prev[dx]
                    };
                    let b = e_cur - DELTA * (if first { c_cur } else { c_prev[dx] } + c_cur);
                    if !first {
                        let a = c_prev[dx] - GAMMA * (b_prev[dx] + b);
                        let al = if second { a } else { a_prev[dx] };
                        let xe = b_prev[dx] - BETA * (al + a);
                        ptr.write(we + x, xe);
                        if !second {
                            ptr.write(wo + x, a_prev[dx] - ALPHA * (x_prev[dx] + xe));
                        }
                        a_prev[dx] = a;
                        x_prev[dx] = xe;
                    }
                    b_prev[dx] = b;
                    c_prev[dx] = c_cur;
                }
            }
            if h.is_multiple_of(2) {
                let we = (h - 2) * stride;
                let wo = we.wrapping_sub(stride);
                let wn = (h - 1) * stride;
                let single = ce == 1;
                for dx in 0..s {
                    let x = x0 + dx;
                    let a_last = c_prev[dx] - GAMMA * (b_prev[dx] + b_prev[dx]);
                    let al = if single { a_last } else { a_prev[dx] };
                    let xe = b_prev[dx] - BETA * (al + a_last);
                    ptr.write(we + x, xe);
                    if h >= 4 {
                        ptr.write(wo + x, a_prev[dx] - ALPHA * (x_prev[dx] + xe));
                    }
                    ptr.write(wn + x, a_last - ALPHA * (xe + xe));
                }
            } else {
                let wn = (h - 1) * stride;
                let wo = wn - stride;
                for dx in 0..s {
                    let x = x0 + dx;
                    let x_last = b_prev[dx] - BETA * (a_prev[dx] + a_prev[dx]);
                    ptr.write(wn + x, x_last);
                    ptr.write(wo + x, a_prev[dx] - ALPHA * (x_prev[dx] + x_last));
                }
            }
            x0 += s;
        }
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::lift::{fwd_row_53, fwd_row_97, inv_row_53, inv_row_97};
    use crate::vertical::{fwd_strip_53_cols, fwd_strip_97_cols};
    use pj2k_parutil::DisjointWriter;

    fn sig_i32(n: usize, seed: usize) -> Vec<i32> {
        (0..n)
            .map(|i| ((i * 37 + seed * 11 + i * i) % 509) as i32 - 254)
            .collect()
    }

    fn sig_f32(n: usize, seed: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 29 + seed * 7 + i * i) % 255) as f32 - 127.0)
            .collect()
    }

    #[test]
    fn fwd_row_53_fused_bit_identical_all_lengths() {
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        for n in 1..=64usize {
            let orig = sig_i32(n, n);
            let mut a = orig.clone();
            let mut b = orig;
            fwd_row_53(&mut a, &mut s1);
            fwd_row_53_fused(&mut b, &mut s2);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn inv_row_53_fused_bit_identical_all_lengths() {
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        for n in 1..=64usize {
            let mut a = sig_i32(n, n + 1);
            fwd_row_53(&mut a, &mut s1);
            let mut b = a.clone();
            inv_row_53(&mut a, &mut s1);
            inv_row_53_fused(&mut b, &mut s2);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn fwd_row_97_fused_bit_identical_all_lengths() {
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        for n in 1..=64usize {
            let orig = sig_f32(n, n);
            let mut a = orig.clone();
            let mut b = orig;
            fwd_row_97(&mut a, &mut s1);
            fwd_row_97_fused(&mut b, &mut s2);
            for i in 0..n {
                assert_eq!(
                    a[i].to_bits(),
                    b[i].to_bits(),
                    "n={n} i={i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }

    #[test]
    fn inv_row_97_fused_bit_identical_all_lengths() {
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        for n in 1..=64usize {
            let mut a = sig_f32(n, n + 3);
            fwd_row_97(&mut a, &mut s1);
            let mut b = a.clone();
            inv_row_97(&mut a, &mut s1);
            inv_row_97_fused(&mut b, &mut s2);
            for i in 0..n {
                assert_eq!(
                    a[i].to_bits(),
                    b[i].to_bits(),
                    "n={n} i={i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }

    #[test]
    fn fused_row_roundtrips() {
        let (mut s, mut sf) = (Vec::new(), Vec::new());
        for n in 1..=33usize {
            let orig = sig_i32(n, 5);
            let mut b = orig.clone();
            fwd_row_53_fused(&mut b, &mut s);
            inv_row_53_fused(&mut b, &mut s);
            assert_eq!(b, orig, "5/3 n={n}");
            let origf = sig_f32(n, 5);
            let mut bf = origf.clone();
            fwd_row_97_fused(&mut bf, &mut sf);
            inv_row_97_fused(&mut bf, &mut sf);
            for i in 0..n {
                assert!((bf[i] - origf[i]).abs() < 1e-3, "9/7 n={n} i={i}");
            }
        }
    }

    /// Run `f` with a claim over columns `cols` (all `h` rows) of `buf`.
    fn with_claim<T: Send, R>(
        buf: &mut [T],
        cols: Range<usize>,
        h: usize,
        stride: usize,
        f: impl FnOnce(&DisjointClaim<T>) -> R,
    ) -> R {
        let writer = DisjointWriter::new(buf);
        let claim = writer.claim_rect(cols, 0..h, stride);
        f(&claim)
    }

    fn grid_i32(w: usize, h: usize, stride: usize, seed: usize) -> Vec<i32> {
        let mut buf = vec![0i32; stride * h];
        for y in 0..h {
            for x in 0..w {
                buf[y * stride + x] = ((x * 57 + y * 23 + seed * 13 + x * y) % 499) as i32 - 249;
            }
        }
        buf
    }

    fn grid_f32(w: usize, h: usize, stride: usize, seed: usize) -> Vec<f32> {
        let mut buf = vec![0f32; stride * h];
        for y in 0..h {
            for x in 0..w {
                buf[y * stride + x] = ((x * 37 + y * 11 + seed * 5 + x * y) % 251) as f32 - 125.0;
            }
        }
        buf
    }

    #[test]
    fn fused_strip_53_bit_identical_to_per_step_small_heights() {
        // Degenerate and small sizes 1..8 in both dimensions, plus odd
        // strip widths and a non-trivial stride.
        let mut s = Vec::new();
        for h in 1..=8usize {
            for w in 1..=8usize {
                let stride = w + 3;
                let a0 = grid_i32(w, h, stride, h * 8 + w);
                for strip in [1usize, 2, 3, 16] {
                    let mut a = a0.clone();
                    let mut b = a0.clone();
                    with_claim(&mut a, 0..w, h, stride, |c| {
                        // SAFETY: the claim covers all filtered columns.
                        unsafe { fwd_strip_53_cols(c, stride, 0..w, h, strip, &mut s) }
                    });
                    with_claim(&mut b, 0..w, h, stride, |c| {
                        // SAFETY: the claim covers all filtered columns.
                        unsafe { fwd_fused_strip_53_cols(c, stride, 0..w, h, strip, &mut s) }
                    });
                    assert_eq!(a, b, "w={w} h={h} strip={strip}");
                }
            }
        }
    }

    #[test]
    fn fused_strip_97_bit_identical_to_per_step_small_heights() {
        let mut s = Vec::new();
        for h in 1..=8usize {
            for w in 1..=8usize {
                let stride = w + 2;
                let a0 = grid_f32(w, h, stride, h * 8 + w);
                for strip in [1usize, 2, 5, 16] {
                    let mut a = a0.clone();
                    let mut b = a0.clone();
                    with_claim(&mut a, 0..w, h, stride, |c| {
                        // SAFETY: the claim covers all filtered columns.
                        unsafe { fwd_strip_97_cols(c, stride, 0..w, h, strip, &mut s) }
                    });
                    with_claim(&mut b, 0..w, h, stride, |c| {
                        // SAFETY: the claim covers all filtered columns.
                        unsafe { fwd_fused_strip_97_cols(c, stride, 0..w, h, strip, &mut s) }
                    });
                    for i in 0..a.len() {
                        assert_eq!(
                            a[i].to_bits(),
                            b[i].to_bits(),
                            "w={w} h={h} strip={strip} i={i}: {} vs {}",
                            a[i],
                            b[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_strip_53_bit_identical_larger_and_offset_cols() {
        let mut s = Vec::new();
        for h in [15usize, 16, 31, 40] {
            let (w, stride) = (13usize, 17usize);
            let a0 = grid_i32(w, h, stride, h);
            let mut a = a0.clone();
            let mut b = a0.clone();
            with_claim(&mut a, 3..11, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_strip_53_cols(c, stride, 3..11, h, 4, &mut s) }
            });
            with_claim(&mut b, 3..11, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_fused_strip_53_cols(c, stride, 3..11, h, 4, &mut s) }
            });
            assert_eq!(a, b, "h={h}");
        }
    }

    #[test]
    fn fused_strip_97_bit_identical_larger_heights() {
        let mut s = Vec::new();
        for h in [9usize, 16, 21, 33, 64] {
            let (w, stride) = (11usize, 11usize);
            let a0 = grid_f32(w, h, stride, h);
            let mut a = a0.clone();
            let mut b = a0.clone();
            with_claim(&mut a, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_strip_97_cols(c, stride, 0..w, h, 6, &mut s) }
            });
            with_claim(&mut b, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_fused_strip_97_cols(c, stride, 0..w, h, 6, &mut s) }
            });
            for i in 0..a.len() {
                assert_eq!(a[i].to_bits(), b[i].to_bits(), "h={h} i={i}");
            }
        }
    }

    #[test]
    fn fused_vertical_roundtrips_small_sizes() {
        let mut s = Vec::new();
        for h in 1..=8usize {
            let (w, stride) = (5usize, 7usize);
            let orig = grid_i32(w, h, stride, h + 1);
            let mut buf = orig.clone();
            with_claim(&mut buf, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_fused_strip_53_cols(c, stride, 0..w, h, 3, &mut s) }
            });
            with_claim(&mut buf, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { inv_fused_strip_53_cols(c, stride, 0..w, h, 3, &mut s) }
            });
            assert_eq!(buf, orig, "5/3 h={h}");

            let origf = grid_f32(w, h, stride, h + 2);
            let mut buff = origf.clone();
            let mut sf = Vec::new();
            with_claim(&mut buff, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_fused_strip_97_cols(c, stride, 0..w, h, 3, &mut sf) }
            });
            with_claim(&mut buff, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { inv_fused_strip_97_cols(c, stride, 0..w, h, 3, &mut sf) }
            });
            for i in 0..buff.len() {
                assert!((buff[i] - origf[i]).abs() < 1e-3, "9/7 h={h} i={i}");
            }
        }
    }

    #[test]
    fn fused_inverse_97_bit_identical_to_per_step() {
        let mut s = Vec::new();
        for h in [2usize, 3, 5, 8, 17, 32] {
            let (w, stride) = (7usize, 9usize);
            let mut fwd = grid_f32(w, h, stride, h + 9);
            with_claim(&mut fwd, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_strip_97_cols(c, stride, 0..w, h, 4, &mut s) }
            });
            let mut a = fwd.clone();
            let mut b = fwd;
            with_claim(&mut a, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { crate::vertical::inv_strip_97_cols(c, stride, 0..w, h, 4, &mut s) }
            });
            with_claim(&mut b, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { inv_fused_strip_97_cols(c, stride, 0..w, h, 4, &mut s) }
            });
            for i in 0..a.len() {
                assert_eq!(a[i].to_bits(), b[i].to_bits(), "h={h} i={i}");
            }
        }
    }

    #[test]
    fn fused_inverse_53_bit_identical_to_per_step() {
        let mut s = Vec::new();
        for h in [2usize, 3, 4, 7, 16, 25] {
            let (w, stride) = (6usize, 6usize);
            let mut fwd = grid_i32(w, h, stride, h + 4);
            with_claim(&mut fwd, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_strip_53_cols(c, stride, 0..w, h, 4, &mut s) }
            });
            let mut a = fwd.clone();
            let mut b = fwd;
            with_claim(&mut a, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { crate::vertical::inv_strip_53_cols(c, stride, 0..w, h, 4, &mut s) }
            });
            with_claim(&mut b, 0..w, h, stride, |c| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { inv_fused_strip_53_cols(c, stride, 0..w, h, 4, &mut s) }
            });
            assert_eq!(a, b, "h={h}");
        }
    }
}
