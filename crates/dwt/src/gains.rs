//! Subband L2 synthesis gains for the 9/7 and 5/3 filter banks.
//!
//! Quantization steps and PCRD distortion estimates must account for how a
//! unit coefficient error in subband `b` propagates to pixel-domain squared
//! error. That factor is the squared L2 norm of the subband's synthesis
//! basis function. Rather than hard-coding the textbook table, the gains are
//! computed numerically — an impulse is placed mid-band and inverse
//! transformed — which keeps them exactly consistent with this crate's
//! filter normalization.

use crate::subband::{Band, Decomposition};
use crate::transform2d::{inverse_53, inverse_97, VerticalStrategy};
use pj2k_image::Plane;
use pj2k_parutil::Exec;
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

// AUDIT(hot): cold — the gain cache is touched once per (level, band)
// geometry at setup; steady-state encoding reads quantizer steps, not this.
fn cache() -> &'static Mutex<HashMap<(u8, Band), f64>> {
    static CACHE: OnceLock<Mutex<HashMap<(u8, Band), f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// L2 norm of the synthesis basis function of band `band` produced at
/// decomposition `level` (1-based) of the 9/7 transform.
///
/// `LL` at level `L` means the residual lowpass band. Gains grow roughly
/// ×2 per level for `LL` and are smallest for `HH`.
///
/// # Panics
/// Panics if `level == 0`.
// AUDIT(hot): cold — called once per subband at quantizer setup; the
// mutex-guarded memo means repeat lookups are a HashMap hit, and nothing
// here runs inside the per-sample loops.
pub fn l2_gain_97(level: u8, band: Band) -> f64 {
    assert!(level >= 1, "subband level is 1-based");
    // lint:allow(hot_path_panic) -- lock() only fails if a holder panicked,
    // and no code panics while holding this cache lock.
    if let Some(&g) = cache().lock().unwrap().get(&(level, band)) {
        return g;
    }
    let g = compute_gain(level, band);
    // lint:allow(hot_path_panic) -- same poisoning argument as above.
    cache().lock().unwrap().insert((level, band), g);
    g
}

fn cache_53() -> &'static Mutex<HashMap<(u8, Band), f64>> {
    static CACHE: OnceLock<Mutex<HashMap<(u8, Band), f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// L2 norm of the synthesis basis function of band `band` produced at
/// decomposition `level` (1-based) of the reversible 5/3 transform.
///
/// Used to weight Tier-1 distortion deltas when PCRD truncates a 5/3
/// codestream (lossy-from-lossless): the 5/3 basis norms differ from the
/// 9/7's, so using the 9/7 table would mis-rank truncation points.
///
/// # Panics
/// Panics if `level == 0`.
pub fn l2_gain_53(level: u8, band: Band) -> f64 {
    assert!(level >= 1, "subband level is 1-based");
    // lint:allow(hot_path_panic) -- lock() only fails if a holder panicked,
    // and no code panics while holding this cache lock.
    if let Some(&g) = cache_53().lock().unwrap().get(&(level, band)) {
        return g;
    }
    let g = compute_gain_53(level, band);
    // lint:allow(hot_path_panic) -- same poisoning argument as above.
    cache_53().lock().unwrap().insert((level, band), g);
    g
}

fn compute_gain_53(level: u8, band: Band) -> f64 {
    let n = ((1usize << level) * 16).max(64);
    let mut p = Plane::<i32>::new(n, n);
    let deco = Decomposition::new(n, n, level);
    let bands = deco.subbands();
    let sb = bands
        .iter()
        .find(|s| s.band == band && (band == Band::LL || s.level == level))
        // lint:allow(hot_path_panic) -- `Decomposition::subbands` always
        // emits every band of every level, so the find cannot fail.
        .expect("requested band exists");
    // The reversible transform is integer-valued, so a unit impulse would
    // drown in the lifting steps' rounding. A large amplitude keeps the
    // rounding error negligible relative to the response; the gain is the
    // response norm scaled back down.
    const AMP: i32 = 1 << 12;
    p.set(sb.x0 + sb.w / 2, sb.y0 + sb.h / 2, AMP);
    inverse_53(&mut p, level, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
    let energy: f64 = p.samples().map(|v| f64::from(v) * f64::from(v)).sum();
    energy.sqrt() / f64::from(AMP)
}

// AUDIT(hot): cold — impulse-response probe behind the gain memo, runs at
// most once per (level, band) for the process lifetime.
fn compute_gain(level: u8, band: Band) -> f64 {
    // A plane large enough that the basis function (support grows ~2^level
    // * filter length) does not clip: 2^level * 16 per side covers the
    // ~10 * 2^level support with margin.
    let n = ((1usize << level) * 16).max(64);
    let mut p = Plane::<f32>::new(n, n);
    let deco = Decomposition::new(n, n, level);
    let bands = deco.subbands();
    let sb = bands
        .iter()
        .find(|s| s.band == band && (band == Band::LL || s.level == level))
        // lint:allow(hot_path_panic) -- `Decomposition::subbands` always
        // emits every band of every level, so the find cannot fail.
        .expect("requested band exists");
    // Impulse in the middle of the band, away from boundary effects.
    p.set(sb.x0 + sb.w / 2, sb.y0 + sb.h / 2, 1.0);
    inverse_97(&mut p, level, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
    let energy: f64 = p.samples().map(|v| (v as f64) * (v as f64)).sum();
    energy.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ll_gain_doubles_per_level() {
        let g1 = l2_gain_97(1, Band::LL);
        let g2 = l2_gain_97(2, Band::LL);
        let g3 = l2_gain_97(3, Band::LL);
        assert!((g2 / g1 - 2.0).abs() < 0.1, "g1={g1} g2={g2}");
        assert!((g3 / g2 - 2.0).abs() < 0.1, "g2={g2} g3={g3}");
    }

    #[test]
    fn gains_are_separable_and_symmetric() {
        // 2D gains are products of 1D filter norms a (low) and b (high):
        // LL = a^2, HL = LH = a*b, HH = b^2, hence HL^2 == LL * HH.
        let ll = l2_gain_97(1, Band::LL);
        let hl = l2_gain_97(1, Band::HL);
        let lh = l2_gain_97(1, Band::LH);
        let hh = l2_gain_97(1, Band::HH);
        assert!(
            (hl - lh).abs() < 1e-6,
            "HL and LH are symmetric: {hl} vs {lh}"
        );
        assert!(
            (hl * hl - ll * hh).abs() / (ll * hh) < 1e-3,
            "separability: HL^2={} vs LL*HH={}",
            hl * hl,
            ll * hh
        );
        for g in [ll, hl, hh] {
            assert!(g > 0.5 && g < 4.0, "sane magnitude: {g}");
        }
    }

    #[test]
    fn gains_are_cached_and_stable() {
        let a = l2_gain_97(2, Band::HH);
        let b = l2_gain_97(2, Band::HH);
        assert_eq!(a, b);
        let c = l2_gain_53(2, Band::HH);
        assert_eq!(c, l2_gain_53(2, Band::HH));
    }

    #[test]
    fn gain_53_tracks_filter_norms() {
        // The 5/3 synthesis lowpass norm is sqrt(3/2) per dimension (taps
        // 1/2, 1, 1/2), so the 2-D LL gain starts at 1.5 and grows by a
        // factor approaching ~1.8 per level (not the 9/7's clean x2).
        // HL/LH are symmetric.
        let ll1 = l2_gain_53(1, Band::LL);
        let ll2 = l2_gain_53(2, Band::LL);
        assert!((ll1 - 1.5).abs() < 0.05, "ll1={ll1}");
        let ratio = ll2 / ll1;
        assert!((1.6..=2.05).contains(&ratio), "ll1={ll1} ll2={ll2}");
        let hl = l2_gain_53(1, Band::HL);
        let lh = l2_gain_53(1, Band::LH);
        assert!((hl - lh).abs() < 0.02, "HL {hl} vs LH {lh}");
        for g in [ll1, hl, l2_gain_53(1, Band::HH)] {
            assert!(g > 0.3 && g < 4.0, "sane magnitude: {g}");
        }
    }

    #[test]
    fn gain_53_differs_from_97() {
        // The two filter banks have different basis norms; if these ever
        // coincide the reversible RD path is silently using the wrong
        // table.
        let a = l2_gain_53(1, Band::HH);
        let b = l2_gain_97(1, Band::HH);
        assert!((a - b).abs() > 1e-3, "5/3 {a} vs 9/7 {b}");
    }
}
