//! Two-dimensional multi-level transform drivers.
//!
//! Each decomposition level filters the current `LL` region horizontally
//! (rows, always contiguous and cache-friendly) and then vertically (columns,
//! per the selected [`VerticalStrategy`]). Row ranges and column ranges are
//! split statically over the [`Exec`] workers with a barrier between the two
//! passes — the paper's parallelization: *"different parts of the data are
//! assigned to different threads ... synchronization is required at each
//! decomposition level between vertical and horizontal filtering"*.
//!
//! Per-pass wall-clock is accumulated in [`DwtStats`] so the harness can
//! report vertical vs. horizontal filtering time (Figs. 7, 8, 10, 11).

use crate::fused;
use crate::lift::{fwd_row_53, fwd_row_97, inv_row_53, inv_row_97};
use crate::simd::{self, SimdMode};
use crate::subband::Decomposition;
use crate::vertical;
use pj2k_image::Plane;
use pj2k_parutil::{DisjointWriter, Exec};
use std::time::{Duration, Instant};

/// How the vertical (column) filtering pass traverses memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerticalStrategy {
    /// One column at a time, one strided walk per lifting step — the
    /// original reference-implementation behaviour the paper diagnoses as
    /// cache-hostile for power-of-two pitches.
    Naive,
    /// Filter `width` adjacent columns concurrently within one worker — the
    /// paper's improved vertical filtering.
    ///
    /// When a SIMD tier is active (see [`SimdMode`]) the strip walk is
    /// vectorized in batches of [`crate::simd::BATCH`] columns and the
    /// configured `width` only governs the scalar tail narrower than one
    /// batch; the coefficients are bit-identical either way.
    Strip {
        /// Number of adjacent columns processed together. 16 matches a
        /// 64-byte cache line of `f32` coefficients.
        width: usize,
    },
}

impl VerticalStrategy {
    /// The paper's improved filtering with a cache-line-sized strip.
    pub const DEFAULT_STRIP: VerticalStrategy = VerticalStrategy::Strip { width: 16 };
}

/// How the lifting steps of one filtering pass traverse memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiftingMode {
    /// One full sweep over the signal per lifting step (two for 5/3, five
    /// for 9/7 including scaling) — the reference formulation.
    PerStep,
    /// All predict/update/scale steps applied in a single rolling sweep
    /// with a small coefficient-history window (the "single-loop" scheme).
    /// Bit-identical outputs; a fraction of the memory traffic. Combined
    /// with [`VerticalStrategy::Naive`] the fused vertical kernel degrades
    /// to a one-column strip.
    Fused,
}

/// Wall-clock spent in the two filtering directions, summed over levels.
#[derive(Debug, Clone, Copy, Default)]
pub struct DwtStats {
    /// Total horizontal (row) filtering time.
    pub horizontal: Duration,
    /// Total vertical (column) filtering time.
    pub vertical: Duration,
}

impl DwtStats {
    /// Sum of both directions.
    pub fn total(&self) -> Duration {
        self.horizontal + self.vertical
    }

    /// Accumulate another stats record.
    pub fn merge(&mut self, other: &DwtStats) {
        self.horizontal += other.horizontal;
        self.vertical += other.vertical;
    }
}

macro_rules! define_2d {
    ($fwd_name:ident, $fwd_with:ident, $fwd_level:ident,
     $inv_name:ident, $inv_with:ident, $inv_level:ident, $ty:ty,
     $fwd_row:ident, $inv_row:ident,
     $fwd_row_fused:ident, $inv_row_fused:ident,
     $fwd_naive:ident, $inv_naive:ident, $fwd_strip:ident, $inv_strip:ident,
     $fwd_fused_strip:ident, $inv_fused_strip:ident,
     $fwd_row_simd:ident, $inv_row_simd:ident,
     $fwd_vert_simd:ident, $inv_vert_simd:ident) => {
        /// Forward multi-level analysis of `plane`, in place (Mallat layout),
        /// with the per-step reference kernels and automatic SIMD dispatch.
        ///
        /// Returns the decomposition geometry and per-direction timings.
        pub fn $fwd_name(
            plane: &mut Plane<$ty>,
            levels: u8,
            strategy: VerticalStrategy,
            exec: &Exec,
        ) -> (Decomposition, DwtStats) {
            $fwd_with(
                plane,
                levels,
                strategy,
                LiftingMode::PerStep,
                SimdMode::Auto,
                exec,
            )
        }

        /// Forward multi-level analysis with an explicit [`LiftingMode`]
        /// and [`SimdMode`].
        pub fn $fwd_with(
            plane: &mut Plane<$ty>,
            levels: u8,
            strategy: VerticalStrategy,
            lifting: LiftingMode,
            simd: SimdMode,
            exec: &Exec,
        ) -> (Decomposition, DwtStats) {
            let deco = Decomposition::new(plane.width(), plane.height(), levels);
            let mut stats = DwtStats::default();
            for l in 0..levels {
                stats.merge(&$fwd_level(plane, &deco, l, strategy, lifting, simd, exec));
            }
            (deco, stats)
        }

        /// Analyze a single decomposition level `l` (filtering the LL region
        /// left by level `l-1`), so callers can interleave per-level DWT with
        /// downstream stages. `$fwd_with` is exactly this in a loop.
        pub fn $fwd_level(
            plane: &mut Plane<$ty>,
            deco: &Decomposition,
            l: u8,
            strategy: VerticalStrategy,
            lifting: LiftingMode,
            simd: SimdMode,
            exec: &Exec,
        ) -> DwtStats {
            let stride = plane.stride();
            let mut stats = DwtStats::default();
            let tier = simd.resolve();
            let (wl, hl) = deco.ll_size(l);
            // Horizontal pass over the rows of the current LL region.
            // Each worker claims its row range through the checked
            // disjoint-access layer; debug builds verify the ranges are
            // pairwise disjoint and exactly cover the LL region.
            let t0 = Instant::now();
            if wl > 1 {
                let writer = DisjointWriter::new(plane.raw_mut());
                exec.run_ranges(hl, |rows| {
                    let claim = writer.claim_rect(0..wl, rows.clone(), stride);
                    let mut scratch = Vec::with_capacity(wl);
                    for y in rows {
                        // SAFETY: the claim covers rows `rows` of the LL
                        // region and `y * stride + wl <= stride * height`.
                        let row = unsafe { claim.slice_mut(y * stride, wl) };
                        match (lifting, tier) {
                            // SAFETY: `tier` came from `SimdMode::resolve`,
                            // which only yields supported tiers.
                            (LiftingMode::PerStep, Some(t)) => unsafe {
                                simd::$fwd_row_simd(t, row, &mut scratch)
                            },
                            (LiftingMode::PerStep, None) => $fwd_row(row, &mut scratch),
                            // The fused row kernel's rolling window is a
                            // sequential recurrence along the row; it stays
                            // scalar (the SIMD row scheme vectorizes the
                            // per-step formulation, which is bit-identical).
                            (LiftingMode::Fused, _) => fused::$fwd_row_fused(row, &mut scratch),
                        }
                    }
                });
                writer.debug_assert_claimed(wl * hl);
            }
            stats.horizontal += t0.elapsed();
            // Vertical pass over the columns of the current LL region.
            let t1 = Instant::now();
            if hl > 1 {
                let writer = DisjointWriter::new(plane.raw_mut());
                exec.run_ranges(wl, |cols| {
                    let claim = writer.claim_rect(cols.clone(), 0..hl, stride);
                    let mut scratch = Vec::new();
                    // SAFETY: the claim covers exactly the columns this
                    // worker filters; overlap panics in debug builds. The
                    // SIMD arms additionally require a supported tier,
                    // guaranteed by `SimdMode::resolve`. `Naive` always
                    // stays scalar so the paper's naive-vs-strip ablation
                    // keeps measuring the cache-hostile walk.
                    unsafe {
                        match (lifting, strategy) {
                            (LiftingMode::PerStep, VerticalStrategy::Naive) => {
                                vertical::$fwd_naive(&claim, stride, cols, hl, &mut scratch)
                            }
                            (LiftingMode::Fused, VerticalStrategy::Naive) => {
                                fused::$fwd_fused_strip(&claim, stride, cols, hl, 1, &mut scratch)
                            }
                            (_, VerticalStrategy::Strip { width }) => match tier {
                                Some(t) => simd::$fwd_vert_simd(
                                    t,
                                    &claim,
                                    stride,
                                    cols,
                                    hl,
                                    lifting,
                                    &mut scratch,
                                ),
                                None => match lifting {
                                    LiftingMode::PerStep => vertical::$fwd_strip(
                                        &claim,
                                        stride,
                                        cols,
                                        hl,
                                        width,
                                        &mut scratch,
                                    ),
                                    LiftingMode::Fused => fused::$fwd_fused_strip(
                                        &claim,
                                        stride,
                                        cols,
                                        hl,
                                        width,
                                        &mut scratch,
                                    ),
                                },
                            },
                        }
                    }
                });
                writer.debug_assert_claimed(wl * hl);
            }
            stats.vertical += t1.elapsed();
            stats
        }

        /// Inverse multi-level synthesis of a Mallat-layout `plane`, in
        /// place, undoing the matching forward transform (per-step kernels).
        pub fn $inv_name(
            plane: &mut Plane<$ty>,
            levels: u8,
            strategy: VerticalStrategy,
            exec: &Exec,
        ) -> DwtStats {
            $inv_with(
                plane,
                levels,
                strategy,
                LiftingMode::PerStep,
                SimdMode::Auto,
                exec,
            )
        }

        /// Inverse multi-level synthesis with an explicit [`LiftingMode`]
        /// and [`SimdMode`].
        pub fn $inv_with(
            plane: &mut Plane<$ty>,
            levels: u8,
            strategy: VerticalStrategy,
            lifting: LiftingMode,
            simd: SimdMode,
            exec: &Exec,
        ) -> DwtStats {
            let deco = Decomposition::new(plane.width(), plane.height(), levels);
            let mut stats = DwtStats::default();
            for l in (0..levels).rev() {
                stats.merge(&$inv_level(plane, &deco, l, strategy, lifting, simd, exec));
            }
            stats
        }

        /// Synthesize a single decomposition level `l` (rebuilding the LL
        /// region consumed by level `l`).
        pub fn $inv_level(
            plane: &mut Plane<$ty>,
            deco: &Decomposition,
            l: u8,
            strategy: VerticalStrategy,
            lifting: LiftingMode,
            simd: SimdMode,
            exec: &Exec,
        ) -> DwtStats {
            let stride = plane.stride();
            let mut stats = DwtStats::default();
            let tier = simd.resolve();
            let (wl, hl) = deco.ll_size(l);
            // Vertical first (reverse of the forward pass order).
            let t0 = Instant::now();
            if hl > 1 {
                let writer = DisjointWriter::new(plane.raw_mut());
                exec.run_ranges(wl, |cols| {
                    let claim = writer.claim_rect(cols.clone(), 0..hl, stride);
                    let mut scratch = Vec::new();
                    // SAFETY: the claim covers exactly the columns this
                    // worker filters; overlap panics in debug builds. The
                    // SIMD arms additionally require a supported tier,
                    // guaranteed by `SimdMode::resolve`.
                    unsafe {
                        match (lifting, strategy) {
                            (LiftingMode::PerStep, VerticalStrategy::Naive) => {
                                vertical::$inv_naive(&claim, stride, cols, hl, &mut scratch)
                            }
                            (LiftingMode::Fused, VerticalStrategy::Naive) => {
                                fused::$inv_fused_strip(&claim, stride, cols, hl, 1, &mut scratch)
                            }
                            (_, VerticalStrategy::Strip { width }) => match tier {
                                Some(t) => simd::$inv_vert_simd(
                                    t,
                                    &claim,
                                    stride,
                                    cols,
                                    hl,
                                    lifting,
                                    &mut scratch,
                                ),
                                None => match lifting {
                                    LiftingMode::PerStep => vertical::$inv_strip(
                                        &claim,
                                        stride,
                                        cols,
                                        hl,
                                        width,
                                        &mut scratch,
                                    ),
                                    LiftingMode::Fused => fused::$inv_fused_strip(
                                        &claim,
                                        stride,
                                        cols,
                                        hl,
                                        width,
                                        &mut scratch,
                                    ),
                                },
                            },
                        }
                    }
                });
                writer.debug_assert_claimed(wl * hl);
            }
            stats.vertical += t0.elapsed();
            let t1 = Instant::now();
            if wl > 1 {
                let writer = DisjointWriter::new(plane.raw_mut());
                exec.run_ranges(hl, |rows| {
                    let claim = writer.claim_rect(0..wl, rows.clone(), stride);
                    let mut scratch = Vec::with_capacity(wl);
                    for y in rows {
                        // SAFETY: the claim covers rows `rows` of the LL
                        // region.
                        let row = unsafe { claim.slice_mut(y * stride, wl) };
                        match (lifting, tier) {
                            // SAFETY: `tier` came from `SimdMode::resolve`,
                            // which only yields supported tiers.
                            (LiftingMode::PerStep, Some(t)) => unsafe {
                                simd::$inv_row_simd(t, row, &mut scratch)
                            },
                            (LiftingMode::PerStep, None) => $inv_row(row, &mut scratch),
                            (LiftingMode::Fused, _) => fused::$inv_row_fused(row, &mut scratch),
                        }
                    }
                });
                writer.debug_assert_claimed(wl * hl);
            }
            stats.horizontal += t1.elapsed();
            stats
        }
    };
}

define_2d!(
    forward_53,
    forward_53_with,
    forward_53_level,
    inverse_53,
    inverse_53_with,
    inverse_53_level,
    i32,
    fwd_row_53,
    inv_row_53,
    fwd_row_53_fused,
    inv_row_53_fused,
    fwd_naive_53_cols,
    inv_naive_53_cols,
    fwd_strip_53_cols,
    inv_strip_53_cols,
    fwd_fused_strip_53_cols,
    inv_fused_strip_53_cols,
    fwd_row_53_simd,
    inv_row_53_simd,
    fwd_vertical_53,
    inv_vertical_53
);

define_2d!(
    forward_97,
    forward_97_with,
    forward_97_level,
    inverse_97,
    inverse_97_with,
    inverse_97_level,
    f32,
    fwd_row_97,
    inv_row_97,
    fwd_row_97_fused,
    inv_row_97_fused,
    fwd_naive_97_cols,
    inv_naive_97_cols,
    fwd_strip_97_cols,
    inv_strip_97_cols,
    fwd_fused_strip_97_cols,
    inv_fused_strip_97_cols,
    fwd_row_97_simd,
    inv_row_97_simd,
    fwd_vertical_97,
    inv_vertical_97
);

#[cfg(test)]
mod tests {
    use super::*;
    use pj2k_parutil::Backend;

    fn test_plane_i32(w: usize, h: usize, stride: usize) -> Plane<i32> {
        let mut p = Plane::with_stride(w, h, stride);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, ((x * 53 + y * 97 + x * y) % 511) as i32 - 255);
            }
        }
        p
    }

    fn test_plane_f32(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            ((x * 31 + y * 17 + x * y) % 255) as f32 - 127.0
        })
    }

    #[test]
    fn forward53_inverse53_exact_roundtrip() {
        for (w, h) in [(1, 1), (2, 2), (5, 9), (16, 16), (33, 31), (64, 48)] {
            for levels in [0u8, 1, 2, 3] {
                let orig = test_plane_i32(w, h, w);
                let mut p = orig.clone();
                forward_53(&mut p, levels, VerticalStrategy::Naive, &Exec::SEQ);
                inverse_53(&mut p, levels, VerticalStrategy::Naive, &Exec::SEQ);
                assert_eq!(p, orig, "{w}x{h} L={levels}");
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // large planes: too slow under the interpreter
    fn forward97_inverse97_close_roundtrip() {
        for (w, h) in [(8, 8), (17, 33), (64, 64)] {
            let orig = test_plane_f32(w, h);
            let mut p = orig.clone();
            forward_97(&mut p, 3, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
            inverse_97(&mut p, 3, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
            for y in 0..h {
                for x in 0..w {
                    assert!(
                        (p.get(x, y) - orig.get(x, y)).abs() < 1e-2,
                        "({x},{y}): {} vs {}",
                        p.get(x, y),
                        orig.get(x, y)
                    );
                }
            }
        }
    }

    #[test]
    fn strategies_agree_53() {
        let orig = test_plane_i32(40, 40, 40);
        let mut naive = orig.clone();
        forward_53(&mut naive, 3, VerticalStrategy::Naive, &Exec::SEQ);
        for width in [2, 16, 100] {
            let mut strip = orig.clone();
            forward_53(&mut strip, 3, VerticalStrategy::Strip { width }, &Exec::SEQ);
            assert_eq!(strip, naive, "strip width {width}");
        }
    }

    #[test]
    fn strategies_agree_97() {
        let orig = test_plane_f32(40, 24);
        let mut naive = orig.clone();
        forward_97(&mut naive, 2, VerticalStrategy::Naive, &Exec::SEQ);
        let mut strip = orig.clone();
        forward_97(&mut strip, 2, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
        for y in 0..24 {
            for x in 0..40 {
                assert!(
                    (naive.get(x, y) - strip.get(x, y)).abs() < 1e-4,
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // large planes: too slow under the interpreter
    fn parallel_backends_are_bit_identical_to_sequential_53() {
        let orig = test_plane_i32(50, 38, 50);
        let mut seq = orig.clone();
        forward_53(&mut seq, 3, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
        for exec in [Exec::threads(2), Exec::threads(4), Exec::rayon(3)] {
            let mut par = orig.clone();
            forward_53(&mut par, 3, VerticalStrategy::DEFAULT_STRIP, &exec);
            assert_eq!(par, seq, "{:?}", exec.backend);
            // and roundtrip in parallel too
            inverse_53(&mut par, 3, VerticalStrategy::DEFAULT_STRIP, &exec);
            assert_eq!(par, orig);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // large planes: too slow under the interpreter
    fn parallel_backends_are_bit_identical_to_sequential_97() {
        let orig = test_plane_f32(48, 48);
        let mut seq = orig.clone();
        forward_97(&mut seq, 4, VerticalStrategy::Naive, &Exec::SEQ);
        let mut par = orig.clone();
        forward_97(
            &mut par,
            4,
            VerticalStrategy::Naive,
            &Exec {
                backend: Backend::Threads,
                workers: 3,
            },
        );
        // Static split + identical kernels => bit-identical floats.
        for y in 0..48 {
            for x in 0..48 {
                assert_eq!(
                    par.get(x, y).to_bits(),
                    seq.get(x, y).to_bits(),
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    fn fused_agrees_with_per_step_53() {
        // Degenerate sizes 1..8 plus larger shapes, every strategy, all
        // decomposition depths: fused must be bit-identical.
        let mut shapes: Vec<(usize, usize)> = Vec::new();
        for w in 1..=8 {
            for h in 1..=8 {
                shapes.push((w, h));
            }
        }
        shapes.extend([(33, 31), (40, 24), (64, 48)]);
        for &(w, h) in &shapes {
            let orig = test_plane_i32(w, h, w + 3);
            for levels in [1u8, 2, 5] {
                for strategy in [
                    VerticalStrategy::Naive,
                    VerticalStrategy::Strip { width: 3 },
                    VerticalStrategy::DEFAULT_STRIP,
                ] {
                    let mut a = orig.clone();
                    let mut b = orig.clone();
                    forward_53_with(
                        &mut a,
                        levels,
                        strategy,
                        LiftingMode::PerStep,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    forward_53_with(
                        &mut b,
                        levels,
                        strategy,
                        LiftingMode::Fused,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    assert_eq!(a, b, "fwd {w}x{h} L={levels} {strategy:?}");
                    let mut c = a.clone();
                    inverse_53_with(
                        &mut a,
                        levels,
                        strategy,
                        LiftingMode::PerStep,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    inverse_53_with(
                        &mut c,
                        levels,
                        strategy,
                        LiftingMode::Fused,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    assert_eq!(a, c, "inv {w}x{h} L={levels} {strategy:?}");
                    assert_eq!(c, orig, "roundtrip {w}x{h} L={levels} {strategy:?}");
                }
            }
        }
    }

    #[test]
    fn fused_agrees_with_per_step_97() {
        let mut shapes: Vec<(usize, usize)> = Vec::new();
        for w in 1..=8 {
            for h in 1..=8 {
                shapes.push((w, h));
            }
        }
        shapes.extend([(17, 33), (40, 24), (48, 48)]);
        for &(w, h) in &shapes {
            let orig = test_plane_f32(w, h);
            for levels in [1u8, 3] {
                for strategy in [VerticalStrategy::Naive, VerticalStrategy::DEFAULT_STRIP] {
                    let mut a = orig.clone();
                    let mut b = orig.clone();
                    forward_97_with(
                        &mut a,
                        levels,
                        strategy,
                        LiftingMode::PerStep,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    forward_97_with(
                        &mut b,
                        levels,
                        strategy,
                        LiftingMode::Fused,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    for y in 0..h {
                        for x in 0..w {
                            assert_eq!(
                                a.get(x, y).to_bits(),
                                b.get(x, y).to_bits(),
                                "fwd {w}x{h} L={levels} {strategy:?} ({x},{y})"
                            );
                        }
                    }
                    inverse_97_with(
                        &mut a,
                        levels,
                        strategy,
                        LiftingMode::PerStep,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    inverse_97_with(
                        &mut b,
                        levels,
                        strategy,
                        LiftingMode::Fused,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    for y in 0..h {
                        for x in 0..w {
                            assert_eq!(
                                a.get(x, y).to_bits(),
                                b.get(x, y).to_bits(),
                                "inv {w}x{h} L={levels} {strategy:?} ({x},{y})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // large planes: too slow under the interpreter
    fn fused_parallel_bit_identical_to_sequential() {
        let orig = test_plane_f32(50, 38);
        let mut seq = orig.clone();
        forward_97_with(
            &mut seq,
            3,
            VerticalStrategy::DEFAULT_STRIP,
            LiftingMode::Fused,
            SimdMode::Scalar,
            &Exec::SEQ,
        );
        for exec in [Exec::threads(2), Exec::threads(4), Exec::rayon(3)] {
            let mut par = orig.clone();
            forward_97_with(
                &mut par,
                3,
                VerticalStrategy::DEFAULT_STRIP,
                LiftingMode::Fused,
                SimdMode::Scalar,
                &exec,
            );
            for y in 0..38 {
                for x in 0..50 {
                    assert_eq!(
                        par.get(x, y).to_bits(),
                        seq.get(x, y).to_bits(),
                        "{:?} ({x},{y})",
                        exec.backend
                    );
                }
            }
        }
    }

    #[test]
    fn level_driver_matches_whole_transform() {
        // Running levels one at a time through the `_level` entry points
        // must equal the all-levels driver — this is what the pipelined
        // encoder relies on.
        let orig = test_plane_f32(40, 33);
        let mut whole = orig.clone();
        let (deco, _) = forward_97_with(
            &mut whole,
            4,
            VerticalStrategy::DEFAULT_STRIP,
            LiftingMode::Fused,
            SimdMode::Scalar,
            &Exec::SEQ,
        );
        let mut stepped = orig.clone();
        for l in 0..4u8 {
            forward_97_level(
                &mut stepped,
                &deco,
                l,
                VerticalStrategy::DEFAULT_STRIP,
                LiftingMode::Fused,
                SimdMode::Scalar,
                &Exec::SEQ,
            );
        }
        for y in 0..33 {
            for x in 0..40 {
                assert_eq!(
                    whole.get(x, y).to_bits(),
                    stepped.get(x, y).to_bits(),
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    fn padded_stride_roundtrip_53() {
        // The paper's width-padding fix: same samples, stride off the
        // power of two. Transform must still reconstruct exactly and agree
        // with the dense layout.
        let dense = test_plane_i32(32, 32, 32);
        let padded = test_plane_i32(32, 32, 37);
        let mut a = dense.clone();
        let mut b = padded.clone();
        forward_53(&mut a, 3, VerticalStrategy::Naive, &Exec::SEQ);
        forward_53(&mut b, 3, VerticalStrategy::Naive, &Exec::SEQ);
        for y in 0..32 {
            assert_eq!(a.row(y), b.row(y), "row {y}");
        }
        inverse_53(&mut b, 3, VerticalStrategy::Naive, &Exec::SEQ);
        for y in 0..32 {
            assert_eq!(b.row(y), padded.row(y));
        }
    }

    #[test]
    fn dc_image_concentrates_in_ll() {
        let mut p = Plane::from_fn(32, 32, |_, _| 800.0f32);
        let (deco, _) = forward_97(&mut p, 3, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
        let (llw, llh) = deco.ll_size(3);
        for y in 0..32 {
            for x in 0..32 {
                let v = p.get(x, y);
                if x < llw && y < llh {
                    assert!((v - 800.0).abs() < 1.0, "LL({x},{y})={v}");
                } else {
                    assert!(v.abs() < 1e-2, "detail({x},{y})={v}");
                }
            }
        }
    }

    fn supported_tiers() -> Vec<crate::SimdTier> {
        use crate::SimdTier;
        [SimdTier::Portable, SimdTier::Sse2, SimdTier::Avx2]
            .into_iter()
            .filter(|t| t.is_supported())
            .collect()
    }

    #[test]
    fn simd_tiers_bit_identical_to_scalar_53() {
        for (w, h) in [(5, 9), (16, 16), (33, 31), (40, 24)] {
            let orig = test_plane_i32(w, h, w + 1);
            for levels in [1u8, 3] {
                for lifting in [LiftingMode::PerStep, LiftingMode::Fused] {
                    let mut scalar = orig.clone();
                    forward_53_with(
                        &mut scalar,
                        levels,
                        VerticalStrategy::DEFAULT_STRIP,
                        lifting,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    for tier in supported_tiers() {
                        let mut p = orig.clone();
                        forward_53_with(
                            &mut p,
                            levels,
                            VerticalStrategy::DEFAULT_STRIP,
                            lifting,
                            SimdMode::Forced(tier),
                            &Exec::SEQ,
                        );
                        assert_eq!(p, scalar, "fwd {w}x{h} L={levels} {lifting:?} {tier:?}");
                        inverse_53_with(
                            &mut p,
                            levels,
                            VerticalStrategy::DEFAULT_STRIP,
                            lifting,
                            SimdMode::Forced(tier),
                            &Exec::SEQ,
                        );
                        assert_eq!(p, orig, "roundtrip {w}x{h} L={levels} {lifting:?} {tier:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn simd_tiers_bit_identical_to_scalar_97() {
        for (w, h) in [(5, 9), (16, 16), (33, 31), (40, 24)] {
            let orig = test_plane_f32(w, h);
            for levels in [1u8, 3] {
                for lifting in [LiftingMode::PerStep, LiftingMode::Fused] {
                    let mut fwd_ref = orig.clone();
                    forward_97_with(
                        &mut fwd_ref,
                        levels,
                        VerticalStrategy::DEFAULT_STRIP,
                        lifting,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    let mut inv_ref = fwd_ref.clone();
                    inverse_97_with(
                        &mut inv_ref,
                        levels,
                        VerticalStrategy::DEFAULT_STRIP,
                        lifting,
                        SimdMode::Scalar,
                        &Exec::SEQ,
                    );
                    for tier in supported_tiers() {
                        let mut p = orig.clone();
                        forward_97_with(
                            &mut p,
                            levels,
                            VerticalStrategy::DEFAULT_STRIP,
                            lifting,
                            SimdMode::Forced(tier),
                            &Exec::SEQ,
                        );
                        for y in 0..h {
                            for x in 0..w {
                                assert_eq!(
                                    p.get(x, y).to_bits(),
                                    fwd_ref.get(x, y).to_bits(),
                                    "fwd {w}x{h} L={levels} {lifting:?} {tier:?} ({x},{y})"
                                );
                            }
                        }
                        inverse_97_with(
                            &mut p,
                            levels,
                            VerticalStrategy::DEFAULT_STRIP,
                            lifting,
                            SimdMode::Forced(tier),
                            &Exec::SEQ,
                        );
                        for y in 0..h {
                            for x in 0..w {
                                assert_eq!(
                                    p.get(x, y).to_bits(),
                                    inv_ref.get(x, y).to_bits(),
                                    "inv {w}x{h} L={levels} {lifting:?} {tier:?} ({x},{y})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn simd_auto_bit_identical_to_scalar() {
        // Whatever Auto resolves to on this host (including the PJ2K_SIMD
        // override), the coefficients must match the scalar kernels bit
        // for bit.
        let orig = test_plane_f32(37, 29);
        let mut scalar = orig.clone();
        let mut auto = orig.clone();
        forward_97_with(
            &mut scalar,
            3,
            VerticalStrategy::DEFAULT_STRIP,
            LiftingMode::PerStep,
            SimdMode::Scalar,
            &Exec::SEQ,
        );
        forward_97_with(
            &mut auto,
            3,
            VerticalStrategy::DEFAULT_STRIP,
            LiftingMode::PerStep,
            SimdMode::Auto,
            &Exec::SEQ,
        );
        for y in 0..29 {
            for x in 0..37 {
                assert_eq!(
                    auto.get(x, y).to_bits(),
                    scalar.get(x, y).to_bits(),
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // large planes: too slow under the interpreter
    fn simd_parallel_bit_identical_to_sequential() {
        // SIMD kernels under a parallel Exec must equal the sequential
        // SIMD run (static split, disjoint column ranges).
        let orig = test_plane_f32(50, 38);
        let mut seq = orig.clone();
        forward_97_with(
            &mut seq,
            3,
            VerticalStrategy::DEFAULT_STRIP,
            LiftingMode::Fused,
            SimdMode::Auto,
            &Exec::SEQ,
        );
        for exec in [Exec::threads(3), Exec::rayon(2)] {
            let mut par = orig.clone();
            forward_97_with(
                &mut par,
                3,
                VerticalStrategy::DEFAULT_STRIP,
                LiftingMode::Fused,
                SimdMode::Auto,
                &exec,
            );
            for y in 0..38 {
                for x in 0..50 {
                    assert_eq!(
                        par.get(x, y).to_bits(),
                        seq.get(x, y).to_bits(),
                        "{:?} ({x},{y})",
                        exec.backend
                    );
                }
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // large planes: too slow under the interpreter
    fn stats_record_time() {
        let mut p = test_plane_f32(128, 128);
        let (_, stats) = forward_97(&mut p, 5, VerticalStrategy::Naive, &Exec::SEQ);
        assert!(stats.total() > Duration::ZERO);
        assert!(stats.vertical > Duration::ZERO);
        assert!(stats.horizontal > Duration::ZERO);
    }
}
