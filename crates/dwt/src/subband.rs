//! Decomposition geometry: where each subband lives in the Mallat layout.
//!
//! After `L` decomposition levels of a `w x h` plane, the transformed plane
//! holds, in place, the deepest lowpass band `LL_L` at the top-left and the
//! detail bands `HL_l`, `LH_l`, `HH_l` for `l = L..1` around it. Level
//! indices follow the "decomposition step that produced the band"
//! convention: level 1 bands are the finest (largest), level `L` the
//! coarsest.

/// Subband orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// Low-low residual (only the deepest level keeps one).
    LL,
    /// Horizontal detail (highpass along x, lowpass along y).
    HL,
    /// Vertical detail (lowpass along x, highpass along y).
    LH,
    /// Diagonal detail.
    HH,
}

/// One subband's placement inside the transformed plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subband {
    /// Orientation.
    pub band: Band,
    /// Producing decomposition level, `1..=levels` (1 = finest). For the
    /// `LL` band this equals `levels`.
    pub level: u8,
    /// Left column of the band inside the transformed plane.
    pub x0: usize,
    /// Top row of the band.
    pub y0: usize,
    /// Band width in coefficients (may be zero for degenerate sizes).
    pub w: usize,
    /// Band height in coefficients.
    pub h: usize,
}

impl Subband {
    /// Number of coefficients in the band.
    pub fn len(&self) -> usize {
        self.w * self.h
    }

    /// True when the band holds no coefficients.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A multi-level dyadic decomposition of a `width x height` plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomposition {
    /// Plane width in samples.
    pub width: usize,
    /// Plane height in samples.
    pub height: usize,
    /// Number of decomposition levels (0 = identity transform).
    pub levels: u8,
}

impl Decomposition {
    /// Construct, clamping `levels` so every decomposed region keeps at
    /// least one sample per side.
    pub fn new(width: usize, height: usize, levels: u8) -> Self {
        Self {
            width,
            height,
            levels,
        }
    }

    /// Size of the `LL_l` region after `l` decomposition steps
    /// (`l = 0` is the full plane).
    pub fn ll_size(&self, l: u8) -> (usize, usize) {
        let mut w = self.width;
        let mut h = self.height;
        for _ in 0..l {
            w = w.div_ceil(2);
            h = h.div_ceil(2);
        }
        (w, h)
    }

    /// All subbands in coarse-to-fine order: `LL_L`, then for
    /// `l = L, L-1, .., 1`: `HL_l`, `LH_l`, `HH_l`.
    ///
    /// This is also the resolution-progression order used by Tier-2.
    // AUDIT(hot): setup-time — builds the O(levels) subband descriptor
    // list once per tile transform, outside the per-sample loops.
    pub fn subbands(&self) -> Vec<Subband> {
        let mut out = Vec::with_capacity(1 + 3 * self.levels as usize);
        let (llw, llh) = self.ll_size(self.levels);
        out.push(Subband {
            band: Band::LL,
            level: self.levels,
            x0: 0,
            y0: 0,
            w: llw,
            h: llh,
        });
        for l in (1..=self.levels).rev() {
            let (pw, ph) = self.ll_size(l - 1);
            let cw = pw.div_ceil(2); // low half sizes
            let ch = ph.div_ceil(2);
            let fw = pw / 2; // high half sizes
            let fh = ph / 2;
            out.push(Subband {
                band: Band::HL,
                level: l,
                x0: cw,
                y0: 0,
                w: fw,
                h: ch,
            });
            out.push(Subband {
                band: Band::LH,
                level: l,
                x0: 0,
                y0: ch,
                w: cw,
                h: fh,
            });
            out.push(Subband {
                band: Band::HH,
                level: l,
                x0: cw,
                y0: ch,
                w: fw,
                h: fh,
            });
        }
        out
    }

    /// Largest level count that keeps the deepest LL at least 1x1 and
    /// meaningful (each side halved at most `log2(min_side)` times).
    pub fn max_levels(width: usize, height: usize) -> u8 {
        let mut side = width.min(height).max(1);
        let mut l = 0u8;
        while side > 1 {
            side = side.div_ceil(2);
            l += 1;
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ll_sizes_halve_with_ceiling() {
        let d = Decomposition::new(5, 7, 3);
        assert_eq!(d.ll_size(0), (5, 7));
        assert_eq!(d.ll_size(1), (3, 4));
        assert_eq!(d.ll_size(2), (2, 2));
        assert_eq!(d.ll_size(3), (1, 1));
    }

    #[test]
    fn subbands_tile_the_plane_exactly() {
        for (w, h, l) in [
            (64, 64, 5),
            (33, 17, 3),
            (5, 7, 2),
            (512, 512, 5),
            (1, 1, 1),
        ] {
            let d = Decomposition::new(w, h, l);
            let bands = d.subbands();
            assert_eq!(bands.len(), 1 + 3 * l as usize);
            let total: usize = bands.iter().map(Subband::len).sum();
            assert_eq!(total, w * h, "{w}x{h} L={l}");
            // Pairwise disjoint.
            let mut covered = vec![false; w * h];
            for b in &bands {
                for y in b.y0..b.y0 + b.h {
                    for x in b.x0..b.x0 + b.w {
                        assert!(!covered[y * w + x], "overlap at ({x},{y}) in {b:?}");
                        covered[y * w + x] = true;
                    }
                }
            }
            assert!(covered.iter().all(|&c| c));
        }
    }

    #[test]
    fn coarse_to_fine_order() {
        let d = Decomposition::new(64, 64, 3);
        let bands = d.subbands();
        assert_eq!(bands[0].band, Band::LL);
        assert_eq!(bands[0].level, 3);
        assert_eq!(bands[1].band, Band::HL);
        assert_eq!(bands[1].level, 3);
        assert_eq!(bands[9].band, Band::HH);
        assert_eq!(bands[9].level, 1);
        assert_eq!(bands[7].band, Band::HL);
        assert_eq!(bands[7].level, 1);
    }

    #[test]
    fn level_one_band_sizes() {
        let d = Decomposition::new(65, 64, 1);
        let bands = d.subbands();
        let hl = bands.iter().find(|b| b.band == Band::HL).unwrap();
        assert_eq!((hl.x0, hl.y0, hl.w, hl.h), (33, 0, 32, 32));
        let lh = bands.iter().find(|b| b.band == Band::LH).unwrap();
        assert_eq!((lh.x0, lh.y0, lh.w, lh.h), (0, 32, 33, 32));
    }

    #[test]
    fn max_levels_bounds() {
        assert_eq!(Decomposition::max_levels(512, 512), 9);
        assert_eq!(Decomposition::max_levels(1, 100), 0);
        assert_eq!(Decomposition::max_levels(3, 1000), 2);
    }

    #[test]
    fn zero_levels_is_single_ll() {
        let d = Decomposition::new(10, 10, 0);
        let bands = d.subbands();
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].len(), 100);
    }
}
