//! Vertical (column-direction) filtering strategies.
//!
//! This module is the code under test for the paper's central observation
//! (§3.2): vertical wavelet filtering of images whose row pitch is a large
//! power of two maps entire columns onto a single cache set and thrashes.
//!
//! * [`fwd_naive_53_cols`]/[`fwd_naive_97_cols`] walk one column at a time,
//!   top to bottom, once per lifting step — the original JJ2000/Jasper
//!   behaviour.
//! * [`fwd_strip_53_cols`]/[`fwd_strip_97_cols`] process a *strip* of
//!   adjacent columns concurrently within a single processor: every lifting
//!   step walks the rows once, updating `strip` horizontally-contiguous
//!   coefficients per row, so each fetched cache line is fully used. This is
//!   the paper's "improved vertical filtering".
//!
//! All functions operate on a strided buffer through a
//! [`pj2k_parutil::DisjointClaim`] — the checked disjoint-access layer —
//! so that parallel drivers can hand disjoint column ranges to different
//! workers and have the disjointness enforced in debug builds.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::{ALPHA, BETA, DELTA, GAMMA, KAPPA};
use pj2k_parutil::DisjointClaim;
use std::ops::Range;

#[inline]
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn mirror_y(y: isize, h: usize) -> usize {
    crate::lift::mirror(y, h)
}

// --------------------------------------------------------------------------
// Column deinterleave / interleave
// --------------------------------------------------------------------------

/// Deinterleave columns `cols` vertically: rows `0,2,4,..` move to the top
/// half, odd rows to the bottom half. Strip-granular: processes
/// `strip` columns per pass using `scratch`.
///
/// # Safety
/// `cols` must be in bounds and disjoint from ranges given to other threads;
/// `h * stride` elements must be allocated.
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub(crate) unsafe fn deinterleave_cols<T: Copy + Default>(
    ptr: &DisjointClaim<T>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    strip: usize,
    scratch: &mut Vec<T>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let ce = h.div_ceil(2);
        let fh = h / 2;
        let mut x0 = cols.start;
        while x0 < cols.end {
            let s = strip.min(cols.end - x0);
            // Only the odd rows (half the strip) go through scratch: even
            // rows compact in place by an ascending walk (`row y <- row 2y`
            // reads ahead of every write), then the buffered odds are
            // stored once into the bottom half.
            scratch.clear();
            scratch.resize(fh * s, T::default()); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
            for j in 0..fh {
                let rr = (2 * j + 1) * stride;
                for dx in 0..s {
                    scratch[j * s + dx] = ptr.read(rr + x0 + dx);
                }
            }
            for y in 1..ce {
                let rr = 2 * y * stride;
                let wr = y * stride;
                for dx in 0..s {
                    ptr.write(wr + x0 + dx, ptr.read(rr + x0 + dx));
                }
            }
            for j in 0..fh {
                let wr = (ce + j) * stride;
                for dx in 0..s {
                    ptr.write(wr + x0 + dx, scratch[j * s + dx]);
                }
            }
            x0 += s;
        }
    }
}

/// Inverse of [`deinterleave_cols`].
///
/// # Safety
/// Same contract as [`deinterleave_cols`].
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub(crate) unsafe fn interleave_cols<T: Copy + Default>(
    ptr: &DisjointClaim<T>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    strip: usize,
    scratch: &mut Vec<T>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let ce = h.div_ceil(2);
        let fh = h / 2;
        let mut x0 = cols.start;
        while x0 < cols.end {
            let s = strip.min(cols.end - x0);
            // Inverse permutation with the same half-scratch scheme: the
            // bottom (high) half is buffered, then a descending walk spreads
            // the low rows (`row 2y <- row y` writes land strictly below
            // every remaining read) and drops the buffered highs into the
            // odd rows.
            scratch.clear();
            scratch.resize(fh * s, T::default()); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
            for j in 0..fh {
                let rr = (ce + j) * stride;
                for dx in 0..s {
                    scratch[j * s + dx] = ptr.read(rr + x0 + dx);
                }
            }
            for y in (1..h).rev() {
                let wr = y * stride;
                if y % 2 == 0 {
                    let rr = (y / 2) * stride;
                    for dx in 0..s {
                        ptr.write(wr + x0 + dx, ptr.read(rr + x0 + dx));
                    }
                } else {
                    for dx in 0..s {
                        ptr.write(wr + x0 + dx, scratch[(y / 2) * s + dx]);
                    }
                }
            }
            x0 += s;
        }
    }
}

// --------------------------------------------------------------------------
// 5/3 naive
// --------------------------------------------------------------------------

/// Forward 5/3 vertical analysis over columns `cols`, one column at a time.
///
/// # Safety
/// `cols` in bounds, disjoint across threads, `h * stride` elements valid.
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn fwd_naive_53_cols(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    scratch: &mut Vec<i32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        // AUDIT(hot): Range copy, no heap.
        for x in cols.clone() {
            let at = |y: usize| y * stride + x;
            // predict odd rows
            let mut y = 1;
            while y < h {
                let l = ptr.read(at(y - 1));
                let r = ptr.read(at(mirror_y(y as isize + 1, h)));
                ptr.write(at(y), ptr.read(at(y)) - ((l + r) >> 1));
                y += 2;
            }
            // update even rows
            let mut y = 0;
            while y < h {
                let l = ptr.read(at(mirror_y(y as isize - 1, h)));
                let r = ptr.read(at(mirror_y(y as isize + 1, h)));
                ptr.write(at(y), ptr.read(at(y)) + ((l + r + 2) >> 2));
                y += 2;
            }
        }
        deinterleave_cols(ptr, stride, cols, h, 1, scratch);
    }
}

/// Inverse 5/3 vertical synthesis over columns `cols`, one column at a time.
///
/// # Safety
/// Same contract as [`fwd_naive_53_cols`].
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn inv_naive_53_cols(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    scratch: &mut Vec<i32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        interleave_cols(
            ptr,
            stride,
            cols.clone(), /* AUDIT(hot): Range copy, no heap */
            h,
            1,
            scratch,
        );
        for x in cols {
            let at = |y: usize| y * stride + x;
            let mut y = 0;
            while y < h {
                let l = ptr.read(at(mirror_y(y as isize - 1, h)));
                let r = ptr.read(at(mirror_y(y as isize + 1, h)));
                ptr.write(at(y), ptr.read(at(y)) - ((l + r + 2) >> 2));
                y += 2;
            }
            let mut y = 1;
            while y < h {
                let l = ptr.read(at(y - 1));
                let r = ptr.read(at(mirror_y(y as isize + 1, h)));
                ptr.write(at(y), ptr.read(at(y)) + ((l + r) >> 1));
                y += 2;
            }
        }
    }
}

// --------------------------------------------------------------------------
// 5/3 strip
// --------------------------------------------------------------------------

/// Forward 5/3 vertical analysis processing `strip` adjacent columns
/// concurrently (the paper's improved filtering).
///
/// # Safety
/// Same contract as [`fwd_naive_53_cols`].
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn fwd_strip_53_cols(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    strip: usize,
    scratch: &mut Vec<i32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let strip = strip.max(1);
        let mut x0 = cols.start;
        while x0 < cols.end {
            let s = strip.min(cols.end - x0);
            // predict odd rows
            let mut y = 1;
            while y < h {
                let ly = (y - 1) * stride;
                let ry = mirror_y(y as isize + 1, h) * stride;
                let cy = y * stride;
                for dx in 0..s {
                    let x = x0 + dx;
                    let v = ptr.read(cy + x) - ((ptr.read(ly + x) + ptr.read(ry + x)) >> 1);
                    ptr.write(cy + x, v);
                }
                y += 2;
            }
            // update even rows
            let mut y = 0;
            while y < h {
                let ly = mirror_y(y as isize - 1, h) * stride;
                let ry = mirror_y(y as isize + 1, h) * stride;
                let cy = y * stride;
                for dx in 0..s {
                    let x = x0 + dx;
                    let v = ptr.read(cy + x) + ((ptr.read(ly + x) + ptr.read(ry + x) + 2) >> 2);
                    ptr.write(cy + x, v);
                }
                y += 2;
            }
            x0 += s;
        }
        deinterleave_cols(ptr, stride, cols, h, strip, scratch);
    }
}

/// Inverse 5/3 strip synthesis.
///
/// # Safety
/// Same contract as [`fwd_naive_53_cols`].
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn inv_strip_53_cols(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    strip: usize,
    scratch: &mut Vec<i32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let strip = strip.max(1);
        interleave_cols(
            ptr,
            stride,
            cols.clone(), /* AUDIT(hot): Range copy, no heap */
            h,
            strip,
            scratch,
        );
        let mut x0 = cols.start;
        while x0 < cols.end {
            let s = strip.min(cols.end - x0);
            let mut y = 0;
            while y < h {
                let ly = mirror_y(y as isize - 1, h) * stride;
                let ry = mirror_y(y as isize + 1, h) * stride;
                let cy = y * stride;
                for dx in 0..s {
                    let x = x0 + dx;
                    let v = ptr.read(cy + x) - ((ptr.read(ly + x) + ptr.read(ry + x) + 2) >> 2);
                    ptr.write(cy + x, v);
                }
                y += 2;
            }
            let mut y = 1;
            while y < h {
                let ly = (y - 1) * stride;
                let ry = mirror_y(y as isize + 1, h) * stride;
                let cy = y * stride;
                for dx in 0..s {
                    let x = x0 + dx;
                    let v = ptr.read(cy + x) + ((ptr.read(ly + x) + ptr.read(ry + x)) >> 1);
                    ptr.write(cy + x, v);
                }
                y += 2;
            }
            x0 += s;
        }
    }
}

// --------------------------------------------------------------------------
// 9/7 naive
// --------------------------------------------------------------------------

/// One 9/7 lifting step down a single column.
///
/// # Safety
/// Column `x` in bounds; exclusive access to it.
#[inline]
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn lift_col_97(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    x: usize,
    h: usize,
    parity: usize,
    c: f32,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        let mut y = parity;
        while y < h {
            let l = ptr.read(mirror_y(y as isize - 1, h) * stride + x);
            let r = ptr.read(mirror_y(y as isize + 1, h) * stride + x);
            let i = y * stride + x;
            ptr.write(i, ptr.read(i) + c * (l + r));
            y += 2;
        }
    }
}

/// Forward 9/7 vertical analysis over columns `cols`, one column at a time
/// (four strided walks + scaling + deinterleave per column).
///
/// # Safety
/// Same contract as [`fwd_naive_53_cols`].
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn fwd_naive_97_cols(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    scratch: &mut Vec<f32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let (kl, kh) = (1.0 / KAPPA, KAPPA / 2.0);
        // AUDIT(hot): Range copy, no heap.
        for x in cols.clone() {
            lift_col_97(ptr, stride, x, h, 1, ALPHA);
            lift_col_97(ptr, stride, x, h, 0, BETA);
            lift_col_97(ptr, stride, x, h, 1, GAMMA);
            lift_col_97(ptr, stride, x, h, 0, DELTA);
            for y in 0..h {
                let i = y * stride + x;
                ptr.write(i, ptr.read(i) * if y % 2 == 0 { kl } else { kh });
            }
        }
        deinterleave_cols(ptr, stride, cols, h, 1, scratch);
    }
}

/// Inverse 9/7 vertical synthesis over columns `cols`, one column at a time.
///
/// # Safety
/// Same contract as [`fwd_naive_53_cols`].
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn inv_naive_97_cols(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    scratch: &mut Vec<f32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        interleave_cols(
            ptr,
            stride,
            cols.clone(), /* AUDIT(hot): Range copy, no heap */
            h,
            1,
            scratch,
        );
        let (kl, kh) = (KAPPA, 2.0 / KAPPA);
        for x in cols {
            for y in 0..h {
                let i = y * stride + x;
                ptr.write(i, ptr.read(i) * if y % 2 == 0 { kl } else { kh });
            }
            lift_col_97(ptr, stride, x, h, 0, -DELTA);
            lift_col_97(ptr, stride, x, h, 1, -GAMMA);
            lift_col_97(ptr, stride, x, h, 0, -BETA);
            lift_col_97(ptr, stride, x, h, 1, -ALPHA);
        }
    }
}

// --------------------------------------------------------------------------
// 9/7 strip
// --------------------------------------------------------------------------

/// One 9/7 lifting step over a strip of columns, walking rows.
///
/// # Safety
/// Strip in bounds; exclusive access to its columns.
#[inline]
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn lift_strip_97(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    x0: usize,
    s: usize,
    h: usize,
    parity: usize,
    c: f32,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        let mut y = parity;
        while y < h {
            let ly = mirror_y(y as isize - 1, h) * stride;
            let ry = mirror_y(y as isize + 1, h) * stride;
            let cy = y * stride;
            for dx in 0..s {
                let x = x0 + dx;
                ptr.write(
                    cy + x,
                    ptr.read(cy + x) + c * (ptr.read(ly + x) + ptr.read(ry + x)),
                );
            }
            y += 2;
        }
    }
}

/// Forward 9/7 vertical analysis with strip processing (the paper's
/// improved filtering).
///
/// # Safety
/// Same contract as [`fwd_naive_53_cols`].
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn fwd_strip_97_cols(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    strip: usize,
    scratch: &mut Vec<f32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let strip = strip.max(1);
        let (kl, kh) = (1.0 / KAPPA, KAPPA / 2.0);
        let mut x0 = cols.start;
        while x0 < cols.end {
            let s = strip.min(cols.end - x0);
            lift_strip_97(ptr, stride, x0, s, h, 1, ALPHA);
            lift_strip_97(ptr, stride, x0, s, h, 0, BETA);
            lift_strip_97(ptr, stride, x0, s, h, 1, GAMMA);
            lift_strip_97(ptr, stride, x0, s, h, 0, DELTA);
            for y in 0..h {
                let k = if y % 2 == 0 { kl } else { kh };
                let cy = y * stride;
                for dx in 0..s {
                    let i = cy + x0 + dx;
                    ptr.write(i, ptr.read(i) * k);
                }
            }
            x0 += s;
        }
        deinterleave_cols(ptr, stride, cols, h, strip, scratch);
    }
}

/// Inverse 9/7 strip synthesis.
///
/// # Safety
/// Same contract as [`fwd_naive_53_cols`].
// AUDIT(fn): encoder-side column-lifting driver: indices derive from the claimed
// rect (cols x rows inside the plane) and strip offsets are clamped to
// the region height.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub unsafe fn inv_strip_97_cols(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    strip: usize,
    scratch: &mut Vec<f32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let strip = strip.max(1);
        interleave_cols(
            ptr,
            stride,
            cols.clone(), /* AUDIT(hot): Range copy, no heap */
            h,
            strip,
            scratch,
        );
        let (kl, kh) = (KAPPA, 2.0 / KAPPA);
        let mut x0 = cols.start;
        while x0 < cols.end {
            let s = strip.min(cols.end - x0);
            for y in 0..h {
                let k = if y % 2 == 0 { kl } else { kh };
                let cy = y * stride;
                for dx in 0..s {
                    let i = cy + x0 + dx;
                    ptr.write(i, ptr.read(i) * k);
                }
            }
            lift_strip_97(ptr, stride, x0, s, h, 0, -DELTA);
            lift_strip_97(ptr, stride, x0, s, h, 1, -GAMMA);
            lift_strip_97(ptr, stride, x0, s, h, 0, -BETA);
            lift_strip_97(ptr, stride, x0, s, h, 1, -ALPHA);
            x0 += s;
        }
    }
}
#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::lift::{fwd_row_53, fwd_row_97};
    use pj2k_parutil::DisjointWriter;

    /// Run `f` with a claim over columns `cols` (all `h` rows) of `buf`.
    fn with_claim<T: Send, R>(
        buf: &mut [T],
        cols: Range<usize>,
        h: usize,
        stride: usize,
        f: impl FnOnce(&DisjointClaim<T>) -> R,
    ) -> R {
        let writer = DisjointWriter::new(buf);
        let claim = writer.claim_rect(cols, 0..h, stride);
        f(&claim)
    }

    /// Transpose-check: vertical filtering of a column must equal the row
    /// kernel applied to the transposed data.
    #[test]
    fn naive_53_matches_row_kernel() {
        let h = 13;
        let w = 4;
        let col: Vec<i32> = (0..h).map(|i| ((i * 31 + 7) % 101) as i32 - 50).collect();
        // build a buffer whose column 2 is `col`
        let stride = w;
        let mut buf = vec![0i32; stride * h];
        for (y, &v) in col.iter().enumerate() {
            buf[y * stride + 2] = v;
        }
        let mut scratch = Vec::new();
        with_claim(&mut buf, 2..3, h, stride, |claim| {
            // SAFETY: the claim covers column 2 for all rows.
            unsafe { fwd_naive_53_cols(claim, stride, 2..3, h, &mut scratch) }
        });
        let mut expect = col.clone();
        let mut s2 = Vec::new();
        fwd_row_53(&mut expect, &mut s2);
        let got: Vec<i32> = (0..h).map(|y| buf[y * stride + 2]).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn strip_53_matches_naive_53() {
        let (w, h, stride) = (11, 17, 13);
        let mk = || {
            let mut buf = vec![0i32; stride * h];
            for y in 0..h {
                for x in 0..w {
                    buf[y * stride + x] = ((x * 57 + y * 23) % 199) as i32 - 99;
                }
            }
            buf
        };
        let mut a = mk();
        let mut s = Vec::new();
        with_claim(&mut a, 0..w, h, stride, |claim| {
            // SAFETY: the claim covers all filtered columns.
            unsafe { fwd_naive_53_cols(claim, stride, 0..w, h, &mut s) }
        });
        for strip in [1, 3, 8, 64] {
            let mut b = mk();
            with_claim(&mut b, 0..w, h, stride, |claim| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_strip_53_cols(claim, stride, 0..w, h, strip, &mut s) }
            });
            for y in 0..h {
                for x in 0..w {
                    assert_eq!(
                        a[y * stride + x],
                        b[y * stride + x],
                        "strip={strip} at ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn naive_97_matches_row_kernel() {
        let h = 16;
        let stride = 5;
        let col: Vec<f32> = (0..h).map(|i| ((i * 13 + 1) % 61) as f32 - 30.0).collect();
        let mut buf = vec![0f32; stride * h];
        for (y, &v) in col.iter().enumerate() {
            buf[y * stride + 1] = v;
        }
        let mut scratch = Vec::new();
        with_claim(&mut buf, 1..2, h, stride, |claim| {
            // SAFETY: the claim covers column 1 for all rows.
            unsafe { fwd_naive_97_cols(claim, stride, 1..2, h, &mut scratch) }
        });
        let mut expect = col.clone();
        let mut s2 = Vec::new();
        fwd_row_97(&mut expect, &mut s2);
        for y in 0..h {
            assert!((buf[y * stride + 1] - expect[y]).abs() < 1e-4, "y={y}");
        }
    }

    #[test]
    fn strip_97_matches_naive_97() {
        let (w, h, stride) = (9, 21, 9);
        let mk = || {
            let mut buf = vec![0f32; stride * h];
            for y in 0..h {
                for x in 0..w {
                    buf[y * stride + x] = ((x * 37 + y * 11) % 157) as f32 - 70.0;
                }
            }
            buf
        };
        let mut a = mk();
        let mut s = Vec::new();
        with_claim(&mut a, 0..w, h, stride, |claim| {
            // SAFETY: the claim covers all filtered columns.
            unsafe { fwd_naive_97_cols(claim, stride, 0..w, h, &mut s) }
        });
        for strip in [2, 4, 16] {
            let mut b = mk();
            with_claim(&mut b, 0..w, h, stride, |claim| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_strip_97_cols(claim, stride, 0..w, h, strip, &mut s) }
            });
            for i in 0..stride * h {
                assert!((a[i] - b[i]).abs() < 1e-4, "strip={strip} i={i}");
            }
        }
    }

    #[test]
    fn fwd_inv_naive_53_roundtrip() {
        for h in [1usize, 2, 3, 8, 15] {
            let stride = 6;
            let w = 5;
            let orig: Vec<i32> = (0..stride * h).map(|i| (i * 7 % 93) as i32 - 46).collect();
            let mut buf = orig.clone();
            let mut s = Vec::new();
            // A fresh writer per pass: each pass re-claims the same region.
            with_claim(&mut buf, 0..w, h, stride, |claim| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { fwd_naive_53_cols(claim, stride, 0..w, h, &mut s) }
            });
            with_claim(&mut buf, 0..w, h, stride, |claim| {
                // SAFETY: the claim covers all filtered columns.
                unsafe { inv_naive_53_cols(claim, stride, 0..w, h, &mut s) }
            });
            for y in 0..h {
                for x in 0..w {
                    assert_eq!(buf[y * stride + x], orig[y * stride + x], "h={h} ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn fwd_inv_strip_97_roundtrip() {
        let (w, h, stride) = (7, 12, 8);
        let orig: Vec<f32> = (0..stride * h).map(|i| (i % 83) as f32 - 41.0).collect();
        let mut buf = orig.clone();
        let mut s = Vec::new();
        with_claim(&mut buf, 0..w, h, stride, |claim| {
            // SAFETY: the claim covers all filtered columns.
            unsafe { fwd_strip_97_cols(claim, stride, 0..w, h, 4, &mut s) }
        });
        with_claim(&mut buf, 0..w, h, stride, |claim| {
            // SAFETY: the claim covers all filtered columns.
            unsafe { inv_strip_97_cols(claim, stride, 0..w, h, 4, &mut s) }
        });
        for y in 0..h {
            for x in 0..w {
                let i = y * stride + x;
                assert!((buf[i] - orig[i]).abs() < 1e-3, "({x},{y})");
            }
        }
    }

    #[test]
    fn untouched_columns_stay_untouched() {
        let (h, stride) = (10, 8);
        let orig: Vec<i32> = (0..stride * h).map(|i| i as i32).collect();
        let mut buf = orig.clone();
        let mut s = Vec::new();
        with_claim(&mut buf, 2..5, h, stride, |claim| {
            // SAFETY: the claim covers exactly the filtered columns 2..5 —
            // in debug builds any write outside them would panic.
            unsafe { fwd_naive_53_cols(claim, stride, 2..5, h, &mut s) }
        });
        for y in 0..h {
            for x in (0..2).chain(5..8) {
                assert_eq!(buf[y * stride + x], orig[y * stride + x], "({x},{y})");
            }
        }
    }
}
