//! Discrete wavelet transform substrate for pj2k.
//!
//! Implements the two JPEG2000 filter banks — the reversible integer 5/3
//! (lossless path) and the irreversible 9/7 (lossy path) — as lifting
//! schemes with whole-sample symmetric boundary extension, the multi-level
//! Mallat decomposition over [`pj2k_image::Plane`], and, central to the
//! reproduced paper, **three vertical-filtering strategies**:
//!
//! * [`VerticalStrategy::Naive`] — each column is filtered by walking down
//!   the column once per lifting step. For images whose row pitch is a large
//!   power of two this maps the whole column onto a single cache set and
//!   thrashes (paper §3.2, Figs. 7/10).
//! * width padding — not a filtering algorithm but a layout fix: allocate
//!   the plane with `stride = width + pad` (`Plane::with_stride`) so
//!   columns spread over many cache sets; the naive walker then behaves.
//! * [`VerticalStrategy::Strip`] — the paper's preferred fix: several
//!   adjacent columns are filtered concurrently within one processor, so
//!   every cache line fetched during the column walk is fully used.
//!
//! Both the horizontal and vertical passes can be split across workers with
//! a [`pj2k_parutil::Exec`] policy (static contiguous ranges, barrier per
//! pass — exactly the paper's scheme), and per-pass wall-clock is reported
//! through [`DwtStats`] so the harness can regenerate Figs. 7, 8, 10, 11.

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(unused_must_use)]

pub mod fused;
pub mod gains;
pub mod lift;
pub mod simd;
pub mod subband;
pub mod transform2d;
pub mod vertical;

pub use simd::{SimdMode, SimdTier};
pub use subband::{Band, Decomposition, Subband};
pub use transform2d::{
    forward_53, forward_53_level, forward_53_with, forward_97, forward_97_level, forward_97_with,
    inverse_53, inverse_53_level, inverse_53_with, inverse_97, inverse_97_level, inverse_97_with,
    DwtStats, LiftingMode, VerticalStrategy,
};

/// 9/7 lifting constant α (first predict step).
pub const ALPHA: f32 = -1.586_134_3;
/// 9/7 lifting constant β (first update step).
pub const BETA: f32 = -0.052_980_117;
/// 9/7 lifting constant γ (second predict step).
pub const GAMMA: f32 = 0.882_911_1;
/// 9/7 lifting constant δ (second update step).
pub const DELTA: f32 = 0.443_506_87;
/// 9/7 scaling constant K; lowpass is scaled by `1/K`, highpass by `K/2`
/// during analysis (and inversely during synthesis), giving the lowpass
/// unit DC gain and the highpass unit Nyquist gain.
pub const KAPPA: f32 = 1.230_174_1;

/// Which JPEG2000 filter bank to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Wavelet {
    /// Reversible integer 5/3 (Le Gall), exact reconstruction.
    Reversible53,
    /// Irreversible floating 9/7 (CDF), the paper's default
    /// ("five-level wavelet decomposition with 7/9-biorthogonal filters").
    Irreversible97,
}
