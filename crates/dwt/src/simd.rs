//! Runtime-dispatched SIMD lifting kernels across strip columns.
//!
//! The paper's strip-vertical filtering already walks rows applying the
//! same lifting step to several adjacent columns — the textbook SIMD shape:
//! one column per vector lane. This module provides vectorized 5/3 and 9/7
//! kernels (per-step and fused) that process a [`BATCH`]-column batch per
//! instruction sequence, plus an interleaved-pair scheme for horizontal
//! rows (the row is split into its even/odd halves, after which every
//! lifting step is a unit-offset streaming pass over two contiguous
//! arrays).
//!
//! Three tiers are selected by runtime dispatch:
//!
//! * **Portable** — plain `[T; 16]` lane arrays whose elementwise loops the
//!   compiler autovectorizes; the fallback on every architecture.
//! * **SSE2** — the x86-64 baseline, four 128-bit registers per batch.
//! * **AVX2** — two 256-bit registers per batch, selected via
//!   `is_x86_feature_detected!` and entered through
//!   `#[target_feature(enable = "avx2")]` wrappers.
//!
//! A batch is 16 columns — a full 64-byte cache line of 4-byte
//! coefficients — so the memory-bound vertical sweep keeps the strip
//! discipline's full-cache-line utilization regardless of register width.
//!
//! **Bit-identity is a hard requirement and holds by construction.** Every
//! vector operation here is elementwise (adds, multiplies, arithmetic
//! shifts, splats); there are no horizontal reductions and no FMA
//! contraction (explicit intrinsics only, and Rust never contracts `a*b+c`
//! on its own). Each lane therefore evaluates exactly the scalar kernel's
//! expression tree, on the same operand values, in the same order — the
//! integer 5/3 path is trivially identical, and the 9/7 path preserves the
//! per-column f32 operation order because lanes are independent columns.
//! The only rewrites are integer-exact: `2*d` becomes `d + d` and
//! `2*d + 2` becomes `d + d + 2`.
//!
//! Tails (fewer than [`BATCH`] remaining columns, or row remainders) fall
//! back to the scalar kernels, which compute the same expressions.
//!
//! The knob is [`SimdMode`]: `Auto` picks the best detected tier (with a
//! `PJ2K_SIMD` environment override for ablation), `Forced(tier)` clamps
//! to the best *supported* tier at or below the request, and `Scalar`
//! disables the module entirely.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::fused;
use crate::lift::mirror;
use crate::transform2d::LiftingMode;
use crate::vertical;
use crate::{ALPHA, BETA, DELTA, GAMMA, KAPPA};
use pj2k_parutil::DisjointClaim;
use std::ops::Range;
use std::sync::OnceLock;

/// Columns per vector batch: a full 64-byte cache line of 4-byte
/// coefficients, independent of the register width of the selected tier.
pub const BATCH: usize = 16;

#[inline]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn mirror_y(y: isize, h: usize) -> usize {
    mirror(y, h)
}

// --------------------------------------------------------------------------
// Tier selection
// --------------------------------------------------------------------------

/// One SIMD implementation tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdTier {
    /// Generic lane arrays relying on autovectorization; always supported.
    Portable,
    /// 128-bit SSE2 intrinsics — part of the x86-64 baseline.
    Sse2,
    /// 256-bit AVX2 intrinsics, runtime-detected.
    Avx2,
}

impl SimdTier {
    /// Whether this tier can run on the current host.
    // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
    // LANES, base indices derive from the claimed region, and ragged tails
    // fall back to the scalar path (unsafe loads carry their own SAFETY
    // bounds arguments).
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    pub fn is_supported(self) -> bool {
        match self {
            SimdTier::Portable => true,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The best supported tier at or below this one (`Avx2 → Sse2 →
    /// Portable`), so a forced tier degrades gracefully on lesser hosts.
    // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
    // LANES, base indices derive from the claimed region, and ragged tails
    // fall back to the scalar path (unsafe loads carry their own SAFETY
    // bounds arguments).
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    pub fn clamp_supported(self) -> SimdTier {
        let mut t = self;
        loop {
            if t.is_supported() {
                return t;
            }
            t = match t {
                SimdTier::Avx2 => SimdTier::Sse2,
                _ => SimdTier::Portable,
            };
        }
    }

    /// The best tier the current host supports.
    // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
    // LANES, base indices derive from the claimed region, and ragged tails
    // fall back to the scalar path (unsafe loads carry their own SAFETY
    // bounds arguments).
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    pub fn best_detected() -> SimdTier {
        SimdTier::Avx2.clamp_supported()
    }
}

/// How the 2-D drivers select (or suppress) the SIMD kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdMode {
    /// Use the best detected tier; honours the `PJ2K_SIMD` environment
    /// override (`scalar`/`off`, `portable`, `sse2`, `avx2`).
    #[default]
    Auto,
    /// Use the given tier, clamped to the best supported one at or below
    /// it. Benches use this to ablate tiers.
    Forced(SimdTier),
    /// Scalar kernels only — the pre-SIMD code paths, bit for bit.
    Scalar,
}

/// Parsed value of a `PJ2K_SIMD` token: `Some(None)` forces scalar,
/// `Some(Some(t))` forces a tier, `None` means "no override".
fn parse_tier_token(tok: &str) -> Option<Option<SimdTier>> {
    match tok.trim().to_ascii_lowercase().as_str() {
        "scalar" | "off" => Some(None),
        "portable" => Some(Some(SimdTier::Portable)),
        "sse2" => Some(Some(SimdTier::Sse2)),
        "avx2" => Some(Some(SimdTier::Avx2)),
        _ => None,
    }
}

/// The cached `PJ2K_SIMD` override, read once per process. A set but
/// unrecognized value warns on stderr instead of silently falling back to
/// runtime detection, so a typo (`PJ2K_SIMD=ssse2`) can't masquerade as a
/// forced-tier run. Empty and `auto` are accepted silently as explicit
/// "no override"; mirrors `PJ2K_TIER1` in `pj2k_ebcot::bitplane`.
fn env_override() -> Option<Option<SimdTier>> {
    static OVERRIDE: OnceLock<Option<Option<SimdTier>>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let v = std::env::var("PJ2K_SIMD").ok()?;
        let tok = v.trim();
        if tok.is_empty() || tok.eq_ignore_ascii_case("auto") {
            return None;
        }
        let parsed = parse_tier_token(tok);
        if parsed.is_none() {
            // AUDIT(hot): cold diagnostic — runs at most once per process
            // (OnceLock) and only when the env var is set to garbage.
            eprintln!(
                "pj2k: ignoring unrecognized PJ2K_SIMD={v:?} \
                 (expected scalar|off, portable, sse2, avx2, or auto)"
            );
        }
        parsed
    })
}

impl SimdMode {
    /// Resolve the mode to a concrete tier, or `None` for scalar.
    pub fn resolve(self) -> Option<SimdTier> {
        match self {
            SimdMode::Scalar => None,
            SimdMode::Forced(t) => Some(t.clamp_supported()),
            SimdMode::Auto => match env_override() {
                Some(None) => None,
                Some(Some(t)) => Some(t.clamp_supported()),
                None => Some(SimdTier::best_detected()),
            },
        }
    }
}

// --------------------------------------------------------------------------
// Vector abstraction
// --------------------------------------------------------------------------

/// A [`BATCH`]-lane f32 vector. All operations are elementwise, so every
/// lane evaluates the scalar expression tree unchanged — the basis of the
/// module's bit-identity guarantee.
pub(crate) trait VecF: Copy {
    /// Load `BATCH` lanes from claim offset `idx`.
    ///
    /// # Safety
    /// `idx .. idx + BATCH` must be in bounds and owned by the claim.
    unsafe fn ld(c: &DisjointClaim<f32>, idx: usize) -> Self;
    /// Store `BATCH` lanes at claim offset `idx`.
    ///
    /// # Safety
    /// Same contract as [`VecF::ld`].
    unsafe fn st(self, c: &DisjointClaim<f32>, idx: usize);
    /// Load `BATCH` lanes from a slice at `idx`.
    ///
    /// # Safety
    /// `idx + BATCH <= s.len()`.
    unsafe fn lds(s: &[f32], idx: usize) -> Self;
    /// Store `BATCH` lanes into a slice at `idx`.
    ///
    /// # Safety
    /// `idx + BATCH <= s.len()`.
    unsafe fn sts(self, s: &mut [f32], idx: usize);
    /// Broadcast one value to all lanes.
    fn splat(v: f32) -> Self;
    /// Lanewise `self + o`.
    fn add(self, o: Self) -> Self;
    /// Lanewise `self - o`.
    fn sub(self, o: Self) -> Self;
    /// Lanewise `self * o`.
    fn mul(self, o: Self) -> Self;
}

/// A [`BATCH`]-lane i32 vector; see [`VecF`] for the lane discipline.
pub(crate) trait VecI: Copy {
    /// Load `BATCH` lanes from claim offset `idx`.
    ///
    /// # Safety
    /// `idx .. idx + BATCH` must be in bounds and owned by the claim.
    unsafe fn ld(c: &DisjointClaim<i32>, idx: usize) -> Self;
    /// Store `BATCH` lanes at claim offset `idx`.
    ///
    /// # Safety
    /// Same contract as [`VecI::ld`].
    unsafe fn st(self, c: &DisjointClaim<i32>, idx: usize);
    /// Load `BATCH` lanes from a slice at `idx`.
    ///
    /// # Safety
    /// `idx + BATCH <= s.len()`.
    unsafe fn lds(s: &[i32], idx: usize) -> Self;
    /// Store `BATCH` lanes into a slice at `idx`.
    ///
    /// # Safety
    /// `idx + BATCH <= s.len()`.
    unsafe fn sts(self, s: &mut [i32], idx: usize);
    /// Broadcast one value to all lanes.
    fn splat(v: i32) -> Self;
    /// Lanewise `self + o` (wrapping, like the scalar kernels' release
    /// behaviour on in-range coefficient data).
    fn add(self, o: Self) -> Self;
    /// Lanewise `self - o`.
    fn sub(self, o: Self) -> Self;
    /// Lanewise arithmetic `self >> 1`.
    fn shr1(self) -> Self;
    /// Lanewise arithmetic `self >> 2`.
    fn shr2(self) -> Self;
}

// --------------------------------------------------------------------------
// Portable tier
// --------------------------------------------------------------------------

pub(crate) mod portable {
    use super::{DisjointClaim, VecF, VecI, BATCH};

    /// Portable f32 batch: a plain lane array the compiler autovectorizes.
    #[derive(Clone, Copy)]
    pub(crate) struct F16([f32; BATCH]);

    /// Portable i32 batch.
    #[derive(Clone, Copy)]
    pub(crate) struct I16([i32; BATCH]);

    impl VecF for F16 {
        // SAFETY: caller upholds the `# Safety` contract documented on
        // the trait method (`VecF::ld` / `VecI::ld`).
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        unsafe fn ld(c: &DisjointClaim<f32>, idx: usize) -> Self {
            // SAFETY: caller guarantees idx..idx+BATCH is owned by the
            // claim (checked by slice_mut in debug builds).
            let s = unsafe { c.slice_mut(idx, BATCH) };
            let mut a = [0.0; BATCH];
            a.copy_from_slice(s);
            F16(a)
        }
        // SAFETY: caller upholds the `# Safety` contract documented on
        // the trait method (`VecF::st` / `VecI::st`).
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        unsafe fn st(self, c: &DisjointClaim<f32>, idx: usize) {
            // SAFETY: caller guarantees idx..idx+BATCH is owned by the
            // claim (checked by slice_mut in debug builds).
            let s = unsafe { c.slice_mut(idx, BATCH) };
            s.copy_from_slice(&self.0);
        }
        // SAFETY: caller upholds the `# Safety` contract documented on
        // the trait method (`VecF::lds` / `VecI::lds`).
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        unsafe fn lds(s: &[f32], idx: usize) -> Self {
            debug_assert!(idx + BATCH <= s.len());
            let mut a = [0.0; BATCH];
            // SAFETY: caller guarantees idx + BATCH <= s.len().
            unsafe {
                std::ptr::copy_nonoverlapping(s.as_ptr().add(idx), a.as_mut_ptr(), BATCH);
            }
            F16(a)
        }
        // SAFETY: caller upholds the `# Safety` contract documented on
        // the trait method (`VecF::sts` / `VecI::sts`).
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        unsafe fn sts(self, s: &mut [f32], idx: usize) {
            debug_assert!(idx + BATCH <= s.len());
            // SAFETY: caller guarantees idx + BATCH <= s.len().
            unsafe {
                std::ptr::copy_nonoverlapping(self.0.as_ptr(), s.as_mut_ptr().add(idx), BATCH);
            }
        }
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        fn splat(v: f32) -> Self {
            F16([v; BATCH])
        }
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        fn add(self, o: Self) -> Self {
            let mut r = self.0;
            for (a, b) in r.iter_mut().zip(o.0) {
                *a += b;
            }
            F16(r)
        }
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        fn sub(self, o: Self) -> Self {
            let mut r = self.0;
            for (a, b) in r.iter_mut().zip(o.0) {
                *a -= b;
            }
            F16(r)
        }
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        fn mul(self, o: Self) -> Self {
            let mut r = self.0;
            for (a, b) in r.iter_mut().zip(o.0) {
                *a *= b;
            }
            F16(r)
        }
    }

    impl VecI for I16 {
        // SAFETY: caller upholds the `# Safety` contract documented on
        // the trait method (`VecF::ld` / `VecI::ld`).
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        unsafe fn ld(c: &DisjointClaim<i32>, idx: usize) -> Self {
            // SAFETY: caller guarantees idx..idx+BATCH is owned by the
            // claim (checked by slice_mut in debug builds).
            let s = unsafe { c.slice_mut(idx, BATCH) };
            let mut a = [0; BATCH];
            a.copy_from_slice(s);
            I16(a)
        }
        // SAFETY: caller upholds the `# Safety` contract documented on
        // the trait method (`VecF::st` / `VecI::st`).
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        unsafe fn st(self, c: &DisjointClaim<i32>, idx: usize) {
            // SAFETY: caller guarantees idx..idx+BATCH is owned by the
            // claim (checked by slice_mut in debug builds).
            let s = unsafe { c.slice_mut(idx, BATCH) };
            s.copy_from_slice(&self.0);
        }
        // SAFETY: caller upholds the `# Safety` contract documented on
        // the trait method (`VecF::lds` / `VecI::lds`).
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        unsafe fn lds(s: &[i32], idx: usize) -> Self {
            debug_assert!(idx + BATCH <= s.len());
            let mut a = [0; BATCH];
            // SAFETY: caller guarantees idx + BATCH <= s.len().
            unsafe {
                std::ptr::copy_nonoverlapping(s.as_ptr().add(idx), a.as_mut_ptr(), BATCH);
            }
            I16(a)
        }
        // SAFETY: caller upholds the `# Safety` contract documented on
        // the trait method (`VecF::sts` / `VecI::sts`).
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        unsafe fn sts(self, s: &mut [i32], idx: usize) {
            debug_assert!(idx + BATCH <= s.len());
            // SAFETY: caller guarantees idx + BATCH <= s.len().
            unsafe {
                std::ptr::copy_nonoverlapping(self.0.as_ptr(), s.as_mut_ptr().add(idx), BATCH);
            }
        }
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        fn splat(v: i32) -> Self {
            I16([v; BATCH])
        }
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        fn add(self, o: Self) -> Self {
            let mut r = self.0;
            for (a, b) in r.iter_mut().zip(o.0) {
                *a = a.wrapping_add(b);
            }
            I16(r)
        }
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        fn sub(self, o: Self) -> Self {
            let mut r = self.0;
            for (a, b) in r.iter_mut().zip(o.0) {
                *a = a.wrapping_sub(b);
            }
            I16(r)
        }
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        fn shr1(self) -> Self {
            let mut r = self.0;
            for a in &mut r {
                *a >>= 1;
            }
            I16(r)
        }
        #[inline(always)]
        // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
        // LANES, base indices derive from the claimed region, and ragged tails
        // fall back to the scalar path (unsafe loads carry their own SAFETY
        // bounds arguments).
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        fn shr2(self) -> Self {
            let mut r = self.0;
            for a in &mut r {
                *a >>= 2;
            }
            I16(r)
        }
    }
}

// --------------------------------------------------------------------------
// x86-64 intrinsic tiers
// --------------------------------------------------------------------------

/// Generates one x86-64 tier module: a [`BATCH`]-lane composite vector
/// built from `$n` registers of `$w` lanes each.
///
/// Module invariant: values of these types are only constructed and
/// operated on inside the dispatch entry for their tier (for AVX2, a
/// `#[target_feature(enable = "avx2")]` wrapper guarded by runtime
/// detection), so the required CPU features are present whenever the
/// intrinsics execute. SSE2 is unconditionally part of the x86-64
/// baseline.
#[cfg(target_arch = "x86_64")]
macro_rules! x86_tier {
    ($mod:ident, $freg:ty, $ireg:ty, $n:expr, $w:expr,
     $loadu_ps:ident, $storeu_ps:ident, $set1_ps:ident,
     $add_ps:ident, $sub_ps:ident, $mul_ps:ident,
     $loadu_si:ident, $storeu_si:ident, $set1_epi32:ident,
     $add_epi32:ident, $sub_epi32:ident, $srai_epi32:ident) => {
        pub(crate) mod $mod {
            use super::{DisjointClaim, VecF, VecI, BATCH};
            use std::arch::x86_64::*;

            /// f32 batch: `$n` registers of `$w` lanes.
            #[derive(Clone, Copy)]
            pub(crate) struct F16([$freg; $n]);

            /// i32 batch: `$n` registers of `$w` lanes.
            #[derive(Clone, Copy)]
            pub(crate) struct I16([$ireg; $n]);

            impl VecF for F16 {
                // SAFETY: caller upholds the `# Safety` contract documented on
                // the trait method (`VecF::ld` / `VecI::ld`).
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                unsafe fn ld(c: &DisjointClaim<f32>, idx: usize) -> Self {
                    // SAFETY: caller guarantees idx..idx+BATCH is owned by
                    // the claim (slice_mut checks in debug builds); loads
                    // are unaligned; CPU support per the module invariant.
                    unsafe {
                        let p = c.slice_mut(idx, BATCH).as_ptr();
                        F16(core::array::from_fn(|k| $loadu_ps(p.add(k * $w))))
                    }
                }
                // SAFETY: caller upholds the `# Safety` contract documented on
                // the trait method (`VecF::st` / `VecI::st`).
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                unsafe fn st(self, c: &DisjointClaim<f32>, idx: usize) {
                    // SAFETY: caller guarantees idx..idx+BATCH is owned by
                    // the claim; stores are unaligned; CPU support per the
                    // module invariant.
                    unsafe {
                        let p = c.slice_mut(idx, BATCH).as_mut_ptr();
                        for (k, r) in self.0.iter().enumerate() {
                            $storeu_ps(p.add(k * $w), *r);
                        }
                    }
                }
                // SAFETY: caller upholds the `# Safety` contract documented on
                // the trait method (`VecF::lds` / `VecI::lds`).
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                unsafe fn lds(s: &[f32], idx: usize) -> Self {
                    debug_assert!(idx + BATCH <= s.len());
                    // SAFETY: caller guarantees idx + BATCH <= s.len();
                    // CPU support per the module invariant.
                    unsafe {
                        let p = s.as_ptr().add(idx);
                        F16(core::array::from_fn(|k| $loadu_ps(p.add(k * $w))))
                    }
                }
                // SAFETY: caller upholds the `# Safety` contract documented on
                // the trait method (`VecF::sts` / `VecI::sts`).
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                unsafe fn sts(self, s: &mut [f32], idx: usize) {
                    debug_assert!(idx + BATCH <= s.len());
                    // SAFETY: caller guarantees idx + BATCH <= s.len();
                    // CPU support per the module invariant.
                    unsafe {
                        let p = s.as_mut_ptr().add(idx);
                        for (k, r) in self.0.iter().enumerate() {
                            $storeu_ps(p.add(k * $w), *r);
                        }
                    }
                }
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                fn splat(v: f32) -> Self {
                    // SAFETY: register-only broadcast; CPU support per the
                    // module invariant.
                    unsafe { F16([$set1_ps(v); $n]) }
                }
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                fn add(self, o: Self) -> Self {
                    // SAFETY: register-only lanewise op; CPU support per
                    // the module invariant.
                    unsafe { F16(core::array::from_fn(|k| $add_ps(self.0[k], o.0[k]))) }
                }
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                fn sub(self, o: Self) -> Self {
                    // SAFETY: register-only lanewise op; CPU support per
                    // the module invariant.
                    unsafe { F16(core::array::from_fn(|k| $sub_ps(self.0[k], o.0[k]))) }
                }
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                fn mul(self, o: Self) -> Self {
                    // SAFETY: register-only lanewise op; CPU support per
                    // the module invariant.
                    unsafe { F16(core::array::from_fn(|k| $mul_ps(self.0[k], o.0[k]))) }
                }
            }

            impl VecI for I16 {
                // SAFETY: caller upholds the `# Safety` contract documented on
                // the trait method (`VecF::ld` / `VecI::ld`).
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                unsafe fn ld(c: &DisjointClaim<i32>, idx: usize) -> Self {
                    // SAFETY: caller guarantees idx..idx+BATCH is owned by
                    // the claim; loads are unaligned; CPU support per the
                    // module invariant.
                    unsafe {
                        let p = c.slice_mut(idx, BATCH).as_ptr();
                        I16(core::array::from_fn(|k| {
                            $loadu_si(p.add(k * $w) as *const $ireg)
                        }))
                    }
                }
                // SAFETY: caller upholds the `# Safety` contract documented on
                // the trait method (`VecF::st` / `VecI::st`).
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                unsafe fn st(self, c: &DisjointClaim<i32>, idx: usize) {
                    // SAFETY: caller guarantees idx..idx+BATCH is owned by
                    // the claim; stores are unaligned; CPU support per the
                    // module invariant.
                    unsafe {
                        let p = c.slice_mut(idx, BATCH).as_mut_ptr();
                        for (k, r) in self.0.iter().enumerate() {
                            $storeu_si(p.add(k * $w) as *mut $ireg, *r);
                        }
                    }
                }
                // SAFETY: caller upholds the `# Safety` contract documented on
                // the trait method (`VecF::lds` / `VecI::lds`).
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                unsafe fn lds(s: &[i32], idx: usize) -> Self {
                    debug_assert!(idx + BATCH <= s.len());
                    // SAFETY: caller guarantees idx + BATCH <= s.len();
                    // CPU support per the module invariant.
                    unsafe {
                        let p = s.as_ptr().add(idx);
                        I16(core::array::from_fn(|k| {
                            $loadu_si(p.add(k * $w) as *const $ireg)
                        }))
                    }
                }
                // SAFETY: caller upholds the `# Safety` contract documented on
                // the trait method (`VecF::sts` / `VecI::sts`).
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                unsafe fn sts(self, s: &mut [i32], idx: usize) {
                    debug_assert!(idx + BATCH <= s.len());
                    // SAFETY: caller guarantees idx + BATCH <= s.len();
                    // CPU support per the module invariant.
                    unsafe {
                        let p = s.as_mut_ptr().add(idx);
                        for (k, r) in self.0.iter().enumerate() {
                            $storeu_si(p.add(k * $w) as *mut $ireg, *r);
                        }
                    }
                }
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                fn splat(v: i32) -> Self {
                    // SAFETY: register-only broadcast; CPU support per the
                    // module invariant.
                    unsafe { I16([$set1_epi32(v); $n]) }
                }
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                fn add(self, o: Self) -> Self {
                    // SAFETY: register-only lanewise op; CPU support per
                    // the module invariant.
                    unsafe { I16(core::array::from_fn(|k| $add_epi32(self.0[k], o.0[k]))) }
                }
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                fn sub(self, o: Self) -> Self {
                    // SAFETY: register-only lanewise op; CPU support per
                    // the module invariant.
                    unsafe { I16(core::array::from_fn(|k| $sub_epi32(self.0[k], o.0[k]))) }
                }
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                fn shr1(self) -> Self {
                    // SAFETY: register-only lanewise arithmetic shift; CPU
                    // support per the module invariant.
                    unsafe { I16(core::array::from_fn(|k| $srai_epi32::<1>(self.0[k]))) }
                }
                #[inline(always)]
                // AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
                // LANES, base indices derive from the claimed region, and ragged tails
                // fall back to the scalar path (unsafe loads carry their own SAFETY
                // bounds arguments).
                #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                fn shr2(self) -> Self {
                    // SAFETY: register-only lanewise arithmetic shift; CPU
                    // support per the module invariant.
                    unsafe { I16(core::array::from_fn(|k| $srai_epi32::<2>(self.0[k]))) }
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
x86_tier!(
    sse2,
    std::arch::x86_64::__m128,
    std::arch::x86_64::__m128i,
    4,
    4,
    _mm_loadu_ps,
    _mm_storeu_ps,
    _mm_set1_ps,
    _mm_add_ps,
    _mm_sub_ps,
    _mm_mul_ps,
    _mm_loadu_si128,
    _mm_storeu_si128,
    _mm_set1_epi32,
    _mm_add_epi32,
    _mm_sub_epi32,
    _mm_srai_epi32
);

#[cfg(target_arch = "x86_64")]
x86_tier!(
    avx2,
    std::arch::x86_64::__m256,
    std::arch::x86_64::__m256i,
    2,
    8,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_set1_ps,
    _mm256_add_ps,
    _mm256_sub_ps,
    _mm256_mul_ps,
    _mm256_loadu_si256,
    _mm256_storeu_si256,
    _mm256_set1_epi32,
    _mm256_add_epi32,
    _mm256_sub_epi32,
    _mm256_srai_epi32
);

// --------------------------------------------------------------------------
// Vertical batch kernels (one BATCH of adjacent columns per call)
// --------------------------------------------------------------------------
//
// Each kernel is the vector transcription of its scalar counterpart in
// `fused`/`vertical` with `strip = BATCH` and the per-lane history arrays
// promoted to vector registers. Row indices, mirror handling and the order
// of arithmetic per coefficient are copied verbatim, so each lane computes
// exactly the scalar expression tree (see the module docs).

/// Fused forward 5/3 on columns `x0..x0+BATCH`; vector transcription of
/// [`fused::fwd_fused_strip_53_cols`].
///
/// # Safety
/// Columns `x0..x0+BATCH` over all `h` rows must be owned by the claim;
/// `h * stride` elements allocated; `h > 1`; CPU support for `I`'s tier.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn fwd_fused_53_batch<I: VecI>(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    x0: usize,
    h: usize,
    scratch: &mut Vec<i32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        let ce = h.div_ceil(2);
        let fh = h / 2;
        scratch.clear();
        scratch.resize(fh * BATCH, 0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
        let two = I::splat(2);
        let mut d_prev = I::splat(0);
        for i in 0..fh {
            let r0 = 2 * i * stride;
            let r1 = r0 + stride;
            let rr = mirror_y(2 * i as isize + 2, h) * stride;
            let xe = I::ld(ptr, r0 + x0);
            let d = I::ld(ptr, r1 + x0).sub(xe.add(I::ld(ptr, rr + x0)).shr1());
            let dl = if i == 0 { d } else { d_prev };
            d.sts(scratch, i * BATCH);
            d_prev = d;
            xe.add(dl.add(d).add(two).shr2()).st(ptr, i * stride + x0);
        }
        if !h.is_multiple_of(2) {
            let rn = (h - 1) * stride;
            let wl = (ce - 1) * stride;
            I::ld(ptr, rn + x0)
                .add(d_prev.add(d_prev).add(two).shr2())
                .st(ptr, wl + x0);
        }
        for j in 0..fh {
            I::lds(scratch, j * BATCH).st(ptr, (ce + j) * stride + x0);
        }
    }
}

/// Fused inverse 5/3 on columns `x0..x0+BATCH`; vector transcription of
/// [`fused::inv_fused_strip_53_cols`].
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`].
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn inv_fused_53_batch<I: VecI>(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    x0: usize,
    h: usize,
    scratch: &mut Vec<i32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        let ce = h.div_ceil(2);
        let fh = h / 2;
        scratch.clear();
        scratch.resize(ce * BATCH, 0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
        for j in 0..ce {
            I::ld(ptr, j * stride + x0).sts(scratch, j * BATCH);
        }
        let two = I::splat(2);
        let d0 = I::ld(ptr, ce * stride + x0);
        let e0 = I::lds(scratch, 0).sub(d0.add(d0).add(two).shr2());
        e0.st(ptr, x0);
        let mut d_prev = d0;
        let mut pe = e0;
        for i in 1..ce {
            let rh = (ce + i) * stride;
            let we = 2 * i * stride;
            let wo = we - stride;
            let dl = d_prev;
            let dr = if i < fh { I::ld(ptr, rh + x0) } else { dl };
            let e = I::lds(scratch, i * BATCH).sub(dl.add(dr).add(two).shr2());
            e.st(ptr, we + x0);
            dl.add(pe.add(e).shr1()).st(ptr, wo + x0);
            d_prev = dr;
            pe = e;
        }
        if h.is_multiple_of(2) {
            let wn = (h - 1) * stride;
            d_prev.add(pe.add(pe).shr1()).st(ptr, wn + x0);
        }
    }
}

/// Fused forward 9/7 on columns `x0..x0+BATCH`; vector transcription of
/// [`fused::fwd_fused_strip_97_cols`].
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`].
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn fwd_fused_97_batch<F: VecF>(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    x0: usize,
    h: usize,
    scratch: &mut Vec<f32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        let ce = h.div_ceil(2);
        let fh = h / 2;
        scratch.clear();
        scratch.resize(fh * BATCH, 0.0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
        let (vkl, vkh) = (F::splat(1.0 / KAPPA), F::splat(KAPPA / 2.0));
        let (va, vb) = (F::splat(ALPHA), F::splat(BETA));
        let (vg, vd) = (F::splat(GAMMA), F::splat(DELTA));
        let mut a_prev = F::splat(0.0);
        let mut b_prev = F::splat(0.0);
        let mut c_prev = F::splat(0.0);
        for i in 0..fh {
            let r0 = 2 * i * stride;
            let r1 = r0 + stride;
            let rr = mirror_y(2 * i as isize + 2, h) * stride;
            let (first, second) = (i == 0, i == 1);
            let xe = F::ld(ptr, r0 + x0);
            let a = F::ld(ptr, r1 + x0).add(va.mul(xe.add(F::ld(ptr, rr + x0))));
            let al = if first { a } else { a_prev };
            let b = xe.add(vb.mul(al.add(a)));
            if !first {
                let c = a_prev.add(vg.mul(b_prev.add(b)));
                let cl = if second { c } else { c_prev };
                let e = b_prev.add(vd.mul(cl.add(c)));
                e.mul(vkl).st(ptr, (i - 1) * stride + x0);
                c.mul(vkh).sts(scratch, (i - 1) * BATCH);
                c_prev = c;
            }
            a_prev = a;
            b_prev = b;
        }
        let single = fh == 1;
        if h.is_multiple_of(2) {
            let c = a_prev.add(vg.mul(b_prev.add(b_prev)));
            let cl = if single { c } else { c_prev };
            let e = b_prev.add(vd.mul(cl.add(c)));
            e.mul(vkl).st(ptr, (fh - 1) * stride + x0);
            c.mul(vkh).sts(scratch, (fh - 1) * BATCH);
        } else {
            let b_last = F::ld(ptr, (h - 1) * stride + x0).add(vb.mul(a_prev.add(a_prev)));
            let c = a_prev.add(vg.mul(b_prev.add(b_last)));
            let cl = if single { c } else { c_prev };
            let e = b_prev.add(vd.mul(cl.add(c)));
            e.mul(vkl).st(ptr, (fh - 1) * stride + x0);
            c.mul(vkh).sts(scratch, (fh - 1) * BATCH);
            b_last
                .add(vd.mul(c.add(c)))
                .mul(vkl)
                .st(ptr, fh * stride + x0);
        }
        for j in 0..fh {
            F::lds(scratch, j * BATCH).st(ptr, (ce + j) * stride + x0);
        }
    }
}

/// Fused inverse 9/7 on columns `x0..x0+BATCH`; vector transcription of
/// [`fused::inv_fused_strip_97_cols`].
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`].
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn inv_fused_97_batch<F: VecF>(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    x0: usize,
    h: usize,
    scratch: &mut Vec<f32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        let ce = h.div_ceil(2);
        let fh = h / 2;
        scratch.clear();
        scratch.resize(ce * BATCH, 0.0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
        for j in 0..ce {
            F::ld(ptr, j * stride + x0).sts(scratch, j * BATCH);
        }
        let (vkl, vkh) = (F::splat(KAPPA), F::splat(2.0 / KAPPA));
        let (va, vb) = (F::splat(ALPHA), F::splat(BETA));
        let (vg, vd) = (F::splat(GAMMA), F::splat(DELTA));
        let mut c_prev = F::splat(0.0);
        let mut b_prev = F::splat(0.0);
        let mut a_prev = F::splat(0.0);
        let mut x_prev = F::splat(0.0);
        for i in 0..ce {
            let rh = (ce + i) * stride;
            let (first, second) = (i == 0, i == 1);
            let e_cur = F::lds(scratch, i * BATCH).mul(vkl);
            let c_cur = if i < fh {
                F::ld(ptr, rh + x0).mul(vkh)
            } else {
                c_prev
            };
            let b = e_cur.sub(vd.mul((if first { c_cur } else { c_prev }).add(c_cur)));
            if !first {
                let a = c_prev.sub(vg.mul(b_prev.add(b)));
                let al = if second { a } else { a_prev };
                let xe = b_prev.sub(vb.mul(al.add(a)));
                xe.st(ptr, (2 * i - 2) * stride + x0);
                if !second {
                    a_prev
                        .sub(va.mul(x_prev.add(xe)))
                        .st(ptr, (2 * i - 3) * stride + x0);
                }
                a_prev = a;
                x_prev = xe;
            }
            b_prev = b;
            c_prev = c_cur;
        }
        if h.is_multiple_of(2) {
            let we = (h - 2) * stride;
            let wn = (h - 1) * stride;
            let single = ce == 1;
            let a_last = c_prev.sub(vg.mul(b_prev.add(b_prev)));
            let al = if single { a_last } else { a_prev };
            let xe = b_prev.sub(vb.mul(al.add(a_last)));
            xe.st(ptr, we + x0);
            if h >= 4 {
                a_prev.sub(va.mul(x_prev.add(xe))).st(ptr, we - stride + x0);
            }
            a_last.sub(va.mul(xe.add(xe))).st(ptr, wn + x0);
        } else {
            let wn = (h - 1) * stride;
            let x_last = b_prev.sub(vb.mul(a_prev.add(a_prev)));
            x_last.st(ptr, wn + x0);
            a_prev
                .sub(va.mul(x_prev.add(x_last)))
                .st(ptr, wn - stride + x0);
        }
    }
}

/// Per-step forward 5/3 lifting (predict + update walks) on columns
/// `x0..x0+BATCH`; the deinterleave is left to the caller, exactly as
/// [`vertical::fwd_strip_53_cols`] sequences it.
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`].
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn fwd_perstep_53_batch<I: VecI>(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    x0: usize,
    h: usize,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        let two = I::splat(2);
        let mut y = 1;
        while y < h {
            let ly = (y - 1) * stride;
            let ry = mirror_y(y as isize + 1, h) * stride;
            let cy = y * stride;
            I::ld(ptr, cy + x0)
                .sub(I::ld(ptr, ly + x0).add(I::ld(ptr, ry + x0)).shr1())
                .st(ptr, cy + x0);
            y += 2;
        }
        let mut y = 0;
        while y < h {
            let ly = mirror_y(y as isize - 1, h) * stride;
            let ry = mirror_y(y as isize + 1, h) * stride;
            let cy = y * stride;
            I::ld(ptr, cy + x0)
                .add(I::ld(ptr, ly + x0).add(I::ld(ptr, ry + x0)).add(two).shr2())
                .st(ptr, cy + x0);
            y += 2;
        }
    }
}

/// Per-step inverse 5/3 lifting on columns `x0..x0+BATCH`; the caller has
/// already interleaved, as in [`vertical::inv_strip_53_cols`].
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`].
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn inv_perstep_53_batch<I: VecI>(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    x0: usize,
    h: usize,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        let two = I::splat(2);
        let mut y = 0;
        while y < h {
            let ly = mirror_y(y as isize - 1, h) * stride;
            let ry = mirror_y(y as isize + 1, h) * stride;
            let cy = y * stride;
            I::ld(ptr, cy + x0)
                .sub(I::ld(ptr, ly + x0).add(I::ld(ptr, ry + x0)).add(two).shr2())
                .st(ptr, cy + x0);
            y += 2;
        }
        let mut y = 1;
        while y < h {
            let ly = (y - 1) * stride;
            let ry = mirror_y(y as isize + 1, h) * stride;
            let cy = y * stride;
            I::ld(ptr, cy + x0)
                .add(I::ld(ptr, ly + x0).add(I::ld(ptr, ry + x0)).shr1())
                .st(ptr, cy + x0);
            y += 2;
        }
    }
}

/// One 9/7 lifting step over a column batch — the vector form of
/// [`vertical`]'s `lift_strip_97`.
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`].
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn lift_batch_97<F: VecF>(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    x0: usize,
    h: usize,
    parity: usize,
    c: f32,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        let vc = F::splat(c);
        let mut y = parity;
        while y < h {
            let ly = mirror_y(y as isize - 1, h) * stride;
            let ry = mirror_y(y as isize + 1, h) * stride;
            let cy = y * stride;
            F::ld(ptr, cy + x0)
                .add(vc.mul(F::ld(ptr, ly + x0).add(F::ld(ptr, ry + x0))))
                .st(ptr, cy + x0);
            y += 2;
        }
    }
}

/// Per-step forward 9/7 (four lifting walks + scaling) on columns
/// `x0..x0+BATCH`; deinterleave left to the caller, as in
/// [`vertical::fwd_strip_97_cols`].
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`].
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn fwd_perstep_97_batch<F: VecF>(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    x0: usize,
    h: usize,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        lift_batch_97::<F>(ptr, stride, x0, h, 1, ALPHA);
        lift_batch_97::<F>(ptr, stride, x0, h, 0, BETA);
        lift_batch_97::<F>(ptr, stride, x0, h, 1, GAMMA);
        lift_batch_97::<F>(ptr, stride, x0, h, 0, DELTA);
        let (vkl, vkh) = (F::splat(1.0 / KAPPA), F::splat(KAPPA / 2.0));
        for y in 0..h {
            let k = if y % 2 == 0 { vkl } else { vkh };
            let i = y * stride + x0;
            F::ld(ptr, i).mul(k).st(ptr, i);
        }
    }
}

/// Per-step inverse 9/7 on columns `x0..x0+BATCH`; the caller has already
/// interleaved, as in [`vertical::inv_strip_97_cols`].
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`].
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn inv_perstep_97_batch<F: VecF>(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    x0: usize,
    h: usize,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        let (vkl, vkh) = (F::splat(KAPPA), F::splat(2.0 / KAPPA));
        for y in 0..h {
            let k = if y % 2 == 0 { vkl } else { vkh };
            let i = y * stride + x0;
            F::ld(ptr, i).mul(k).st(ptr, i);
        }
        lift_batch_97::<F>(ptr, stride, x0, h, 0, -DELTA);
        lift_batch_97::<F>(ptr, stride, x0, h, 1, -GAMMA);
        lift_batch_97::<F>(ptr, stride, x0, h, 0, -BETA);
        lift_batch_97::<F>(ptr, stride, x0, h, 1, -ALPHA);
    }
}

// --------------------------------------------------------------------------
// Vertical region drivers: batches of BATCH columns + scalar tail
// --------------------------------------------------------------------------

/// Forward 5/3 vertical analysis of `cols`: full [`BATCH`]-column batches
/// through the vector kernels, remaining tail columns through the scalar
/// strip kernels (same expressions, hence still bit-identical).
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`] for the whole `cols` range.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn fwd_vert_53_t<I: VecI>(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    lifting: LiftingMode,
    scratch: &mut Vec<i32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let mut x0 = cols.start;
        while x0 + BATCH <= cols.end {
            match lifting {
                LiftingMode::Fused => fwd_fused_53_batch::<I>(ptr, stride, x0, h, scratch),
                LiftingMode::PerStep => fwd_perstep_53_batch::<I>(ptr, stride, x0, h),
            }
            x0 += BATCH;
        }
        if matches!(lifting, LiftingMode::PerStep) && x0 > cols.start {
            vertical::deinterleave_cols(ptr, stride, cols.start..x0, h, BATCH, scratch);
        }
        if x0 < cols.end {
            let w = cols.end - x0;
            match lifting {
                LiftingMode::Fused => {
                    fused::fwd_fused_strip_53_cols(ptr, stride, x0..cols.end, h, w, scratch)
                }
                LiftingMode::PerStep => {
                    vertical::fwd_strip_53_cols(ptr, stride, x0..cols.end, h, w, scratch)
                }
            }
        }
    }
}

/// Inverse 5/3 vertical synthesis of `cols`; see [`fwd_vert_53_t`].
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`] for the whole `cols` range.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn inv_vert_53_t<I: VecI>(
    ptr: &DisjointClaim<i32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    lifting: LiftingMode,
    scratch: &mut Vec<i32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let bend = cols.start + ((cols.end - cols.start) / BATCH) * BATCH;
        if matches!(lifting, LiftingMode::PerStep) && bend > cols.start {
            vertical::interleave_cols(ptr, stride, cols.start..bend, h, BATCH, scratch);
        }
        let mut x0 = cols.start;
        while x0 < bend {
            match lifting {
                LiftingMode::Fused => inv_fused_53_batch::<I>(ptr, stride, x0, h, scratch),
                LiftingMode::PerStep => inv_perstep_53_batch::<I>(ptr, stride, x0, h),
            }
            x0 += BATCH;
        }
        if bend < cols.end {
            let w = cols.end - bend;
            match lifting {
                LiftingMode::Fused => {
                    fused::inv_fused_strip_53_cols(ptr, stride, bend..cols.end, h, w, scratch)
                }
                LiftingMode::PerStep => {
                    vertical::inv_strip_53_cols(ptr, stride, bend..cols.end, h, w, scratch)
                }
            }
        }
    }
}

/// Forward 9/7 vertical analysis of `cols`; see [`fwd_vert_53_t`].
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`] for the whole `cols` range.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn fwd_vert_97_t<F: VecF>(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    lifting: LiftingMode,
    scratch: &mut Vec<f32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let mut x0 = cols.start;
        while x0 + BATCH <= cols.end {
            match lifting {
                LiftingMode::Fused => fwd_fused_97_batch::<F>(ptr, stride, x0, h, scratch),
                LiftingMode::PerStep => fwd_perstep_97_batch::<F>(ptr, stride, x0, h),
            }
            x0 += BATCH;
        }
        if matches!(lifting, LiftingMode::PerStep) && x0 > cols.start {
            vertical::deinterleave_cols(ptr, stride, cols.start..x0, h, BATCH, scratch);
        }
        if x0 < cols.end {
            let w = cols.end - x0;
            match lifting {
                LiftingMode::Fused => {
                    fused::fwd_fused_strip_97_cols(ptr, stride, x0..cols.end, h, w, scratch)
                }
                LiftingMode::PerStep => {
                    vertical::fwd_strip_97_cols(ptr, stride, x0..cols.end, h, w, scratch)
                }
            }
        }
    }
}

/// Inverse 9/7 vertical synthesis of `cols`; see [`fwd_vert_53_t`].
///
/// # Safety
/// Same contract as [`fwd_fused_53_batch`] for the whole `cols` range.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn inv_vert_97_t<F: VecF>(
    ptr: &DisjointClaim<f32>,
    stride: usize,
    cols: Range<usize>,
    h: usize,
    lifting: LiftingMode,
    scratch: &mut Vec<f32>,
) {
    // SAFETY: upheld by this function's documented safety contract,
    // which the caller must satisfy.
    unsafe {
        if h <= 1 {
            return;
        }
        let bend = cols.start + ((cols.end - cols.start) / BATCH) * BATCH;
        if matches!(lifting, LiftingMode::PerStep) && bend > cols.start {
            vertical::interleave_cols(ptr, stride, cols.start..bend, h, BATCH, scratch);
        }
        let mut x0 = cols.start;
        while x0 < bend {
            match lifting {
                LiftingMode::Fused => inv_fused_97_batch::<F>(ptr, stride, x0, h, scratch),
                LiftingMode::PerStep => inv_perstep_97_batch::<F>(ptr, stride, x0, h),
            }
            x0 += BATCH;
        }
        if bend < cols.end {
            let w = cols.end - bend;
            match lifting {
                LiftingMode::Fused => {
                    fused::inv_fused_strip_97_cols(ptr, stride, bend..cols.end, h, w, scratch)
                }
                LiftingMode::PerStep => {
                    vertical::inv_strip_97_cols(ptr, stride, bend..cols.end, h, w, scratch)
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// Horizontal rows: the interleaved-pair scheme
// --------------------------------------------------------------------------
//
// A row is split into its even/odd halves (the pair arrays); every lifting
// step then becomes a streaming pass over two contiguous arrays whose
// neighbour accesses are unit-offset unaligned loads — no shuffles needed.
// Since the forward output layout is exactly `[low | high]`, the split IS
// the deinterleave. Boundary samples are handled scalar with the same
// mirror expressions as `crate::lift`.

/// One 9/7-style lifting step on the odd half: `o[i] += c * (e[i] +
/// e[i+1])`, with the even-length mirror tail `o[last] += c * 2*e[last]`.
///
/// # Safety
/// CPU support for `F`'s tier; `eb.len() >= ob.len() + usize::from(!even_n)`.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn step_odd_97<F: VecF>(ob: &mut [f32], eb: &[f32], c: f32, even_n: bool) {
    let fh = ob.len();
    if fh == 0 {
        return;
    }
    let interior = if even_n { fh - 1 } else { fh };
    let vc = F::splat(c);
    let mut i = 0;
    // SAFETY: i + BATCH <= interior <= ob.len(), and eb holds at least
    // interior + 1 elements per this function's contract.
    unsafe {
        while i + BATCH <= interior {
            F::lds(ob, i)
                .add(vc.mul(F::lds(eb, i).add(F::lds(eb, i + 1))))
                .sts(ob, i);
            i += BATCH;
        }
    }
    while i < interior {
        ob[i] += c * (eb[i] + eb[i + 1]);
        i += 1;
    }
    if even_n {
        ob[fh - 1] += c * (eb[fh - 1] + eb[fh - 1]);
    }
}

/// One 9/7-style lifting step on the even half: `e[0] += c * 2*o[0]`,
/// `e[i] += c * (o[i-1] + o[i])`, odd-length tail `e[last] += c *
/// 2*o[last]`.
///
/// # Safety
/// CPU support for `F`'s tier; `eb.len() == ob.len() + usize::from(odd_n)`
/// with `ob` non-empty.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn step_even_97<F: VecF>(eb: &mut [f32], ob: &[f32], c: f32, odd_n: bool) {
    let fh = ob.len();
    let vc = F::splat(c);
    eb[0] += c * (ob[0] + ob[0]);
    let mut i = 1;
    // SAFETY: i + BATCH <= fh == ob.len() and eb.len() >= fh per this
    // function's contract.
    unsafe {
        while i + BATCH <= fh {
            F::lds(eb, i)
                .add(vc.mul(F::lds(ob, i - 1).add(F::lds(ob, i))))
                .sts(eb, i);
            i += BATCH;
        }
    }
    while i < fh {
        eb[i] += c * (ob[i - 1] + ob[i]);
        i += 1;
    }
    if odd_n {
        eb[fh] += c * (ob[fh - 1] + ob[fh - 1]);
    }
}

/// Scale every element of `buf` by `k` (vector body, scalar remainder).
///
/// # Safety
/// CPU support for `F`'s tier.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn scale_97<F: VecF>(buf: &mut [f32], k: f32) {
    let vk = F::splat(k);
    let mut i = 0;
    // SAFETY: i + BATCH <= buf.len() inside the loop.
    unsafe {
        while i + BATCH <= buf.len() {
            F::lds(buf, i).mul(vk).sts(buf, i);
            i += BATCH;
        }
    }
    while i < buf.len() {
        buf[i] *= k;
        i += 1;
    }
}

/// Forward 5/3 analysis of one row via the interleaved-pair scheme;
/// bit-identical to [`crate::lift::fwd_row_53`].
///
/// # Safety
/// CPU support for `I`'s tier.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn fwd_row_53_t<I: VecI>(row: &mut [i32], scratch: &mut Vec<i32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    let ce = n.div_ceil(2);
    let fh = n / 2;
    scratch.clear();
    scratch.resize(n, 0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
    let (eb, ob) = scratch.split_at_mut(ce);
    for (i, e) in eb.iter_mut().enumerate() {
        *e = row[2 * i];
    }
    for (i, o) in ob.iter_mut().enumerate() {
        *o = row[2 * i + 1];
    }
    let even_n = n.is_multiple_of(2);
    // Predict the high half: o[i] -= (e[i] + e[i+1]) >> 1.
    let interior = if even_n { fh - 1 } else { fh };
    let mut i = 0;
    // SAFETY: i + BATCH <= interior <= ob.len(); eb holds interior + 1
    // elements or more.
    unsafe {
        while i + BATCH <= interior {
            I::lds(ob, i)
                .sub(I::lds(eb, i).add(I::lds(eb, i + 1)).shr1())
                .sts(ob, i);
            i += BATCH;
        }
    }
    while i < interior {
        ob[i] -= (eb[i] + eb[i + 1]) >> 1;
        i += 1;
    }
    if even_n {
        ob[fh - 1] -= (eb[fh - 1] + eb[fh - 1]) >> 1;
    }
    // Update the low half: e[i] += (o[i-1] + o[i] + 2) >> 2.
    let two = I::splat(2);
    eb[0] += (ob[0] + ob[0] + 2) >> 2;
    let mut i = 1;
    // SAFETY: i + BATCH <= fh == ob.len() <= eb.len().
    unsafe {
        while i + BATCH <= fh {
            I::lds(eb, i)
                .add(I::lds(ob, i - 1).add(I::lds(ob, i)).add(two).shr2())
                .sts(eb, i);
            i += BATCH;
        }
    }
    while i < fh {
        eb[i] += (ob[i - 1] + ob[i] + 2) >> 2;
        i += 1;
    }
    if !even_n {
        eb[ce - 1] += (ob[fh - 1] + ob[fh - 1] + 2) >> 2;
    }
    row.copy_from_slice(scratch);
}

/// Inverse 5/3 synthesis of one `[low | high]` row; bit-identical to
/// [`crate::lift::inv_row_53`].
///
/// # Safety
/// CPU support for `I`'s tier.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn inv_row_53_t<I: VecI>(row: &mut [i32], scratch: &mut Vec<i32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    let ce = n.div_ceil(2);
    let fh = n / 2;
    scratch.clear();
    scratch.extend_from_slice(row); // AUDIT(hot): amortized — refills cleared recycled scratch, capacity reused.
    let (eb, ob) = scratch.split_at_mut(ce);
    let even_n = n.is_multiple_of(2);
    // Undo the update: e[i] -= (o[i-1] + o[i] + 2) >> 2.
    let two = I::splat(2);
    eb[0] -= (ob[0] + ob[0] + 2) >> 2;
    let mut i = 1;
    // SAFETY: i + BATCH <= fh == ob.len() <= eb.len().
    unsafe {
        while i + BATCH <= fh {
            I::lds(eb, i)
                .sub(I::lds(ob, i - 1).add(I::lds(ob, i)).add(two).shr2())
                .sts(eb, i);
            i += BATCH;
        }
    }
    while i < fh {
        eb[i] -= (ob[i - 1] + ob[i] + 2) >> 2;
        i += 1;
    }
    if !even_n {
        eb[ce - 1] -= (ob[fh - 1] + ob[fh - 1] + 2) >> 2;
    }
    // Undo the predict: o[i] += (e[i] + e[i+1]) >> 1.
    let interior = if even_n { fh - 1 } else { fh };
    let mut i = 0;
    // SAFETY: i + BATCH <= interior <= ob.len(); eb holds interior + 1
    // elements or more.
    unsafe {
        while i + BATCH <= interior {
            I::lds(ob, i)
                .add(I::lds(eb, i).add(I::lds(eb, i + 1)).shr1())
                .sts(ob, i);
            i += BATCH;
        }
    }
    while i < interior {
        ob[i] += (eb[i] + eb[i + 1]) >> 1;
        i += 1;
    }
    if even_n {
        ob[fh - 1] += (eb[fh - 1] + eb[fh - 1]) >> 1;
    }
    for (i, &e) in eb.iter().enumerate() {
        row[2 * i] = e;
    }
    for (i, &o) in ob.iter().enumerate() {
        row[2 * i + 1] = o;
    }
}

/// Forward 9/7 analysis of one row via the interleaved-pair scheme;
/// bit-identical to [`crate::lift::fwd_row_97`].
///
/// # Safety
/// CPU support for `F`'s tier.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn fwd_row_97_t<F: VecF>(row: &mut [f32], scratch: &mut Vec<f32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    let ce = n.div_ceil(2);
    scratch.clear();
    scratch.resize(n, 0.0); // AUDIT(hot): amortized — recycled scratch, no-op once capacity is warm.
    let (eb, ob) = scratch.split_at_mut(ce);
    for (i, e) in eb.iter_mut().enumerate() {
        *e = row[2 * i];
    }
    for (i, o) in ob.iter_mut().enumerate() {
        *o = row[2 * i + 1];
    }
    let even_n = n.is_multiple_of(2);
    // SAFETY: forwarded to the step helpers; the pair arrays satisfy their
    // length contracts by construction (ce == fh + usize::from(!even_n)).
    unsafe {
        step_odd_97::<F>(ob, eb, ALPHA, even_n);
        step_even_97::<F>(eb, ob, BETA, !even_n);
        step_odd_97::<F>(ob, eb, GAMMA, even_n);
        step_even_97::<F>(eb, ob, DELTA, !even_n);
        scale_97::<F>(eb, 1.0 / KAPPA);
        scale_97::<F>(ob, KAPPA / 2.0);
    }
    row.copy_from_slice(scratch);
}

/// Inverse 9/7 synthesis of one `[low | high]` row; bit-identical to
/// [`crate::lift::inv_row_97`].
///
/// # Safety
/// CPU support for `F`'s tier.
#[inline(always)]
// AUDIT(fn): encoder-side SIMD batch kernel: lane offsets are fixed by the tier's
// LANES, base indices derive from the claimed region, and ragged tails
// fall back to the scalar path (unsafe loads carry their own SAFETY
// bounds arguments).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
unsafe fn inv_row_97_t<F: VecF>(row: &mut [f32], scratch: &mut Vec<f32>) {
    let n = row.len();
    if n <= 1 {
        return;
    }
    let ce = n.div_ceil(2);
    scratch.clear();
    scratch.extend_from_slice(row); // AUDIT(hot): amortized — refills cleared recycled scratch, capacity reused.
    let (eb, ob) = scratch.split_at_mut(ce);
    let even_n = n.is_multiple_of(2);
    // SAFETY: forwarded to the step helpers; the pair arrays satisfy their
    // length contracts by construction.
    unsafe {
        scale_97::<F>(eb, KAPPA);
        scale_97::<F>(ob, 2.0 / KAPPA);
        step_even_97::<F>(eb, ob, -DELTA, !even_n);
        step_odd_97::<F>(ob, eb, -GAMMA, even_n);
        step_even_97::<F>(eb, ob, -BETA, !even_n);
        step_odd_97::<F>(ob, eb, -ALPHA, even_n);
    }
    for (i, &e) in eb.iter().enumerate() {
        row[2 * i] = e;
    }
    for (i, &o) in ob.iter().enumerate() {
        row[2 * i + 1] = o;
    }
}

// --------------------------------------------------------------------------
// Tier dispatch
// --------------------------------------------------------------------------

/// Generates the public dispatch entry for one generic kernel: a
/// `#[target_feature(enable = "avx2")]` wrapper (so the whole inlined
/// kernel is compiled with AVX2 codegen) plus the tier `match`.
macro_rules! tiered_entry {
    ($(#[$meta:meta])* $name:ident, $wrap:ident, $driver:ident, $vec:ident,
     ($($arg:ident: $ty:ty),*)) => {
        // SAFETY: the caller's contract (including AVX2 presence) is
        // forwarded unchanged to the generic driver.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $wrap($($arg: $ty),*) {
            // SAFETY: the caller's contract (including AVX2 presence,
            // guaranteed by runtime detection in the dispatcher) is
            // forwarded unchanged.
            unsafe { $driver::<avx2::$vec>($($arg),*) }
        }

        $(#[$meta])*
        // SAFETY: `# Safety` contract documented at each invocation
        // (via `$meta`); the AVX2 arm additionally requires
        // `tier.is_supported()`.
        pub(crate) unsafe fn $name(tier: SimdTier, $($arg: $ty),*) {
            // SAFETY: the caller's contract is forwarded unchanged; the
            // AVX2 arm requires `tier.is_supported()`, part of the
            // documented contract.
            unsafe {
                match tier {
                    SimdTier::Portable => $driver::<portable::$vec>($($arg),*),
                    #[cfg(target_arch = "x86_64")]
                    SimdTier::Sse2 => $driver::<sse2::$vec>($($arg),*),
                    #[cfg(target_arch = "x86_64")]
                    SimdTier::Avx2 => $wrap($($arg),*),
                    #[cfg(not(target_arch = "x86_64"))]
                    _ => $driver::<portable::$vec>($($arg),*),
                }
            }
        }
    };
}

tiered_entry!(
    /// Forward 5/3 vertical analysis over `cols` with the `tier` kernels.
    ///
    /// # Safety
    /// `cols` (all `h` rows) owned by the claim, `h * stride` elements
    /// allocated, and `tier.is_supported()`.
    fwd_vertical_53, fwd_vertical_53_avx2, fwd_vert_53_t, I16,
    (ptr: &DisjointClaim<i32>, stride: usize, cols: Range<usize>, h: usize,
     lifting: LiftingMode, scratch: &mut Vec<i32>)
);

tiered_entry!(
    /// Inverse 5/3 vertical synthesis over `cols` with the `tier` kernels.
    ///
    /// # Safety
    /// Same contract as [`fwd_vertical_53`].
    inv_vertical_53, inv_vertical_53_avx2, inv_vert_53_t, I16,
    (ptr: &DisjointClaim<i32>, stride: usize, cols: Range<usize>, h: usize,
     lifting: LiftingMode, scratch: &mut Vec<i32>)
);

tiered_entry!(
    /// Forward 9/7 vertical analysis over `cols` with the `tier` kernels.
    ///
    /// # Safety
    /// Same contract as [`fwd_vertical_53`].
    fwd_vertical_97, fwd_vertical_97_avx2, fwd_vert_97_t, F16,
    (ptr: &DisjointClaim<f32>, stride: usize, cols: Range<usize>, h: usize,
     lifting: LiftingMode, scratch: &mut Vec<f32>)
);

tiered_entry!(
    /// Inverse 9/7 vertical synthesis over `cols` with the `tier` kernels.
    ///
    /// # Safety
    /// Same contract as [`fwd_vertical_53`].
    inv_vertical_97, inv_vertical_97_avx2, inv_vert_97_t, F16,
    (ptr: &DisjointClaim<f32>, stride: usize, cols: Range<usize>, h: usize,
     lifting: LiftingMode, scratch: &mut Vec<f32>)
);

tiered_entry!(
    /// Forward 5/3 row analysis (interleaved-pair scheme); bit-identical
    /// to [`crate::lift::fwd_row_53`].
    ///
    /// # Safety
    /// `tier.is_supported()`.
    fwd_row_53_simd, fwd_row_53_simd_avx2, fwd_row_53_t, I16,
    (row: &mut [i32], scratch: &mut Vec<i32>)
);

tiered_entry!(
    /// Inverse 5/3 row synthesis; bit-identical to
    /// [`crate::lift::inv_row_53`].
    ///
    /// # Safety
    /// `tier.is_supported()`.
    inv_row_53_simd, inv_row_53_simd_avx2, inv_row_53_t, I16,
    (row: &mut [i32], scratch: &mut Vec<i32>)
);

tiered_entry!(
    /// Forward 9/7 row analysis (interleaved-pair scheme); bit-identical
    /// to [`crate::lift::fwd_row_97`].
    ///
    /// # Safety
    /// `tier.is_supported()`.
    fwd_row_97_simd, fwd_row_97_simd_avx2, fwd_row_97_t, F16,
    (row: &mut [f32], scratch: &mut Vec<f32>)
);

tiered_entry!(
    /// Inverse 9/7 row synthesis; bit-identical to
    /// [`crate::lift::inv_row_97`].
    ///
    /// # Safety
    /// `tier.is_supported()`.
    inv_row_97_simd, inv_row_97_simd_avx2, inv_row_97_t, F16,
    (row: &mut [f32], scratch: &mut Vec<f32>)
);

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::lift;
    use pj2k_parutil::DisjointWriter;

    fn supported_tiers() -> Vec<SimdTier> {
        [SimdTier::Portable, SimdTier::Sse2, SimdTier::Avx2]
            .into_iter()
            .filter(|t| t.is_supported())
            .collect()
    }

    #[test]
    fn parse_tier_token_covers_knob_vocabulary() {
        assert_eq!(parse_tier_token("scalar"), Some(None));
        assert_eq!(parse_tier_token("off"), Some(None));
        assert_eq!(parse_tier_token("portable"), Some(Some(SimdTier::Portable)));
        assert_eq!(parse_tier_token("sse2"), Some(Some(SimdTier::Sse2)));
        assert_eq!(parse_tier_token("avx2"), Some(Some(SimdTier::Avx2)));
        assert_eq!(parse_tier_token("AVX2"), Some(Some(SimdTier::Avx2)));
        assert_eq!(
            parse_tier_token(" portable "),
            Some(Some(SimdTier::Portable))
        );
        assert_eq!(parse_tier_token("neon"), None);
        assert_eq!(parse_tier_token(""), None);
    }

    #[test]
    fn resolve_honours_mode() {
        assert_eq!(SimdMode::Scalar.resolve(), None);
        // Portable is always supported, so a forced portable sticks.
        assert_eq!(
            SimdMode::Forced(SimdTier::Portable).resolve(),
            Some(SimdTier::Portable)
        );
        // A forced tier never resolves to something unsupported.
        for mode in [
            SimdMode::Forced(SimdTier::Avx2),
            SimdMode::Forced(SimdTier::Sse2),
        ] {
            let t = mode.resolve().expect("clamps to a supported tier");
            assert!(t.is_supported());
        }
    }

    #[test]
    fn clamp_supported_degrades_in_order() {
        // Whatever the host, the clamp chain ends at Portable.
        assert!(SimdTier::Portable.clamp_supported().is_supported());
        assert!(SimdTier::Sse2.clamp_supported().is_supported());
        assert!(SimdTier::Avx2.clamp_supported().is_supported());
    }

    /// Deterministic i32 test pattern.
    fn fill_i32(buf: &mut [i32], stride: usize) {
        for (i, v) in buf.iter_mut().enumerate() {
            let (y, x) = (i / stride, i % stride);
            *v = ((x * 53 + y * 97 + x * y) % 511) as i32 - 255;
        }
    }

    /// Deterministic f32 test pattern.
    fn fill_f32(buf: &mut [f32], stride: usize) {
        for (i, v) in buf.iter_mut().enumerate() {
            let (y, x) = (i / stride, i % stride);
            *v = ((x * 31 + y * 17 + x * y) % 255) as f32 - 127.0;
        }
    }

    /// Shapes that stress every tail: widths below one batch, exact
    /// batches, non-multiples, and degenerate heights.
    const SHAPES: &[(usize, usize)] = &[
        (1, 7),
        (3, 4),
        (7, 2),
        (16, 16),
        (17, 9),
        (31, 3),
        (33, 33),
        (40, 24),
        (48, 5),
    ];

    #[test]
    fn vertical_53_bit_identical_to_scalar_every_tier() {
        for &(w, h) in SHAPES {
            let stride = w + 2; // off the batch grid on purpose
            let mut reference = vec![0i32; stride * h];
            fill_i32(&mut reference, stride);
            let orig = reference.clone();
            for lifting in [LiftingMode::PerStep, LiftingMode::Fused] {
                // Scalar reference for this lifting mode.
                let mut scalar = orig.clone();
                {
                    let writer = DisjointWriter::new(&mut scalar);
                    let claim = writer.claim_rect(0..w, 0..h, stride);
                    let mut scratch = Vec::new();
                    // SAFETY: claim covers all of `0..w`; buffer holds
                    // `stride * h` elements.
                    unsafe {
                        match lifting {
                            LiftingMode::PerStep => vertical::fwd_strip_53_cols(
                                &claim,
                                stride,
                                0..w,
                                h,
                                16,
                                &mut scratch,
                            ),
                            LiftingMode::Fused => fused::fwd_fused_strip_53_cols(
                                &claim,
                                stride,
                                0..w,
                                h,
                                16,
                                &mut scratch,
                            ),
                        }
                    }
                }
                for tier in supported_tiers() {
                    let mut buf = orig.clone();
                    {
                        let writer = DisjointWriter::new(&mut buf);
                        let claim = writer.claim_rect(0..w, 0..h, stride);
                        let mut scratch = Vec::new();
                        // SAFETY: claim covers all of `0..w`; tier is
                        // supported by construction.
                        unsafe {
                            fwd_vertical_53(tier, &claim, stride, 0..w, h, lifting, &mut scratch);
                        }
                    }
                    assert_eq!(buf, scalar, "fwd {w}x{h} {lifting:?} {tier:?}");
                    // And the inverse restores the original exactly.
                    {
                        let writer = DisjointWriter::new(&mut buf);
                        let claim = writer.claim_rect(0..w, 0..h, stride);
                        let mut scratch = Vec::new();
                        // SAFETY: as above.
                        unsafe {
                            inv_vertical_53(tier, &claim, stride, 0..w, h, lifting, &mut scratch);
                        }
                    }
                    assert_eq!(buf, orig, "roundtrip {w}x{h} {lifting:?} {tier:?}");
                }
            }
        }
    }

    #[test]
    fn vertical_97_bit_identical_to_scalar_every_tier() {
        for &(w, h) in SHAPES {
            let stride = w + 1;
            let mut reference = vec![0f32; stride * h];
            fill_f32(&mut reference, stride);
            let orig = reference.clone();
            for lifting in [LiftingMode::PerStep, LiftingMode::Fused] {
                let mut scalar = orig.clone();
                {
                    let writer = DisjointWriter::new(&mut scalar);
                    let claim = writer.claim_rect(0..w, 0..h, stride);
                    let mut scratch = Vec::new();
                    // SAFETY: claim covers all of `0..w`; buffer holds
                    // `stride * h` elements.
                    unsafe {
                        match lifting {
                            LiftingMode::PerStep => vertical::fwd_strip_97_cols(
                                &claim,
                                stride,
                                0..w,
                                h,
                                16,
                                &mut scratch,
                            ),
                            LiftingMode::Fused => fused::fwd_fused_strip_97_cols(
                                &claim,
                                stride,
                                0..w,
                                h,
                                16,
                                &mut scratch,
                            ),
                        }
                    }
                }
                for tier in supported_tiers() {
                    let mut buf = orig.clone();
                    {
                        let writer = DisjointWriter::new(&mut buf);
                        let claim = writer.claim_rect(0..w, 0..h, stride);
                        let mut scratch = Vec::new();
                        // SAFETY: claim covers all of `0..w`; tier is
                        // supported by construction.
                        unsafe {
                            fwd_vertical_97(tier, &claim, stride, 0..w, h, lifting, &mut scratch);
                        }
                    }
                    for (i, (a, b)) in buf.iter().zip(scalar.iter()).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "fwd {w}x{h} {lifting:?} {tier:?} elem {i}"
                        );
                    }
                    let mut rt = buf.clone();
                    {
                        let writer = DisjointWriter::new(&mut rt);
                        let claim = writer.claim_rect(0..w, 0..h, stride);
                        let mut scratch = Vec::new();
                        // SAFETY: as above.
                        unsafe {
                            inv_vertical_97(tier, &claim, stride, 0..w, h, lifting, &mut scratch);
                        }
                    }
                    for (i, (a, b)) in rt.iter().zip(orig.iter()).enumerate() {
                        assert!(
                            (a - b).abs() < 1e-3,
                            "roundtrip {w}x{h} {lifting:?} {tier:?} elem {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rows_53_bit_identical_to_scalar_every_tier() {
        for n in 1..=67usize {
            let mut scalar = vec![0i32; n];
            fill_i32(&mut scalar, n.max(1));
            let orig = scalar.clone();
            let mut scratch = Vec::new();
            lift::fwd_row_53(&mut scalar, &mut scratch);
            for tier in supported_tiers() {
                let mut row = orig.clone();
                // SAFETY: tier is supported by construction.
                unsafe { fwd_row_53_simd(tier, &mut row, &mut scratch) };
                assert_eq!(row, scalar, "fwd n={n} {tier:?}");
                // SAFETY: as above.
                unsafe { inv_row_53_simd(tier, &mut row, &mut scratch) };
                assert_eq!(row, orig, "roundtrip n={n} {tier:?}");
            }
        }
    }

    #[test]
    fn rows_97_bit_identical_to_scalar_every_tier() {
        for n in 1..=67usize {
            let mut scalar = vec![0f32; n];
            fill_f32(&mut scalar, n.max(1));
            let orig = scalar.clone();
            let mut scratch = Vec::new();
            lift::fwd_row_97(&mut scalar, &mut scratch);
            for tier in supported_tiers() {
                let mut row = orig.clone();
                // SAFETY: tier is supported by construction.
                unsafe { fwd_row_97_simd(tier, &mut row, &mut scratch) };
                for (i, (a, b)) in row.iter().zip(scalar.iter()).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "fwd n={n} {tier:?} elem {i}");
                }
                // The scalar inverse must also undo the SIMD forward: same
                // bits in, same bits out.
                let mut undo = row.clone();
                lift::inv_row_97(&mut undo, &mut scratch);
                // SAFETY: as above.
                unsafe { inv_row_97_simd(tier, &mut row, &mut scratch) };
                for (i, (a, b)) in row.iter().zip(undo.iter()).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "inv n={n} {tier:?} elem {i}");
                }
            }
        }
    }
}
