//! Property tests: the transform invariants every other crate builds on.

use pj2k_dwt::{
    forward_53, forward_53_with, forward_97, forward_97_with, inverse_53, inverse_53_with,
    inverse_97, inverse_97_with, Decomposition, LiftingMode, SimdMode, SimdTier, VerticalStrategy,
};
use pj2k_image::Plane;
use pj2k_parutil::Exec;
use proptest::prelude::*;

fn arb_plane_i32() -> impl Strategy<Value = Plane<i32>> {
    (1usize..48, 1usize..48, 0usize..7, any::<u64>()).prop_map(|(w, h, pad, seed)| {
        let mut p = Plane::with_stride(w, h, w + pad);
        let mut state = seed | 1;
        for y in 0..h {
            for x in 0..w {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                p.set(x, y, ((state >> 33) as i32 % 511) - 255);
            }
        }
        p
    })
}

fn strategies() -> impl Strategy<Value = VerticalStrategy> {
    prop_oneof![
        Just(VerticalStrategy::Naive),
        (1usize..40).prop_map(|w| VerticalStrategy::Strip { width: w }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The 5/3 is *exactly* reversible on any size, stride, level count,
    /// and vertical strategy.
    #[test]
    fn dwt53_perfect_reconstruction(p in arb_plane_i32(), levels in 0u8..5, strat in strategies()) {
        let orig = p.clone();
        let mut q = p;
        forward_53(&mut q, levels, strat, &Exec::SEQ);
        inverse_53(&mut q, levels, strat, &Exec::SEQ);
        prop_assert_eq!(q, orig);
    }

    /// The 9/7 reconstructs within float tolerance.
    #[test]
    fn dwt97_near_reconstruction(p in arb_plane_i32(), levels in 0u8..5) {
        let f = p.map(|v| v as f32);
        let mut q = f.clone();
        forward_97(&mut q, levels, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
        inverse_97(&mut q, levels, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
        for y in 0..f.height() {
            for x in 0..f.width() {
                prop_assert!((q.get(x, y) - f.get(x, y)).abs() < 2e-2,
                    "({}, {}): {} vs {}", x, y, q.get(x, y), f.get(x, y));
            }
        }
    }

    /// All vertical strategies compute the identical integer transform.
    #[test]
    fn strategies_agree_53(p in arb_plane_i32(), levels in 1u8..4, strat in strategies()) {
        let mut a = p.clone();
        let mut b = p;
        forward_53(&mut a, levels, VerticalStrategy::Naive, &Exec::SEQ);
        forward_53(&mut b, levels, strat, &Exec::SEQ);
        prop_assert_eq!(a, b);
    }

    /// Parallel execution is bit-identical to sequential (both filters).
    #[test]
    fn parallel_equals_sequential(p in arb_plane_i32(), levels in 1u8..4, workers in 2usize..5) {
        let mut seq = p.clone();
        let mut par = p.clone();
        forward_53(&mut seq, levels, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
        forward_53(&mut par, levels, VerticalStrategy::DEFAULT_STRIP, &Exec::threads(workers));
        prop_assert_eq!(&par, &seq);

        let f = p.map(|v| v as f32);
        let mut seq_f = f.clone();
        let mut par_f = f;
        forward_97(&mut seq_f, levels, VerticalStrategy::Naive, &Exec::SEQ);
        forward_97(&mut par_f, levels, VerticalStrategy::Naive, &Exec::rayon(workers));
        for y in 0..seq_f.height() {
            for x in 0..seq_f.width() {
                prop_assert_eq!(par_f.get(x, y).to_bits(), seq_f.get(x, y).to_bits());
            }
        }
    }

    /// Fused single-pass 5/3 lifting is bit-identical to the per-step
    /// kernels — forward and inverse — on any size, stride pad, strip
    /// width, and level count.
    #[test]
    fn fused_53_bit_identical(p in arb_plane_i32(), levels in 0u8..5, strat in strategies()) {
        let mut a = p.clone();
        let mut b = p;
        forward_53_with(&mut a, levels, strat, LiftingMode::PerStep, SimdMode::Scalar, &Exec::SEQ);
        forward_53_with(&mut b, levels, strat, LiftingMode::Fused, SimdMode::Scalar, &Exec::SEQ);
        prop_assert_eq!(&a, &b);
        inverse_53_with(&mut a, levels, strat, LiftingMode::PerStep, SimdMode::Scalar, &Exec::SEQ);
        inverse_53_with(&mut b, levels, strat, LiftingMode::Fused, SimdMode::Scalar, &Exec::SEQ);
        prop_assert_eq!(a, b);
    }

    /// Fused 9/7 evaluates the same lifting expressions on the same
    /// operands, so even the float outputs match to the bit.
    #[test]
    fn fused_97_bit_identical(p in arb_plane_i32(), levels in 0u8..5, strat in strategies()) {
        let f = p.map(|v| v as f32);
        let mut a = f.clone();
        let mut b = f;
        forward_97_with(&mut a, levels, strat, LiftingMode::PerStep, SimdMode::Scalar, &Exec::SEQ);
        forward_97_with(&mut b, levels, strat, LiftingMode::Fused, SimdMode::Scalar, &Exec::SEQ);
        for y in 0..a.height() {
            for x in 0..a.width() {
                prop_assert_eq!(a.get(x, y).to_bits(), b.get(x, y).to_bits(),
                    "forward ({}, {})", x, y);
            }
        }
        inverse_97_with(&mut a, levels, strat, LiftingMode::PerStep, SimdMode::Scalar, &Exec::SEQ);
        inverse_97_with(&mut b, levels, strat, LiftingMode::Fused, SimdMode::Scalar, &Exec::SEQ);
        for y in 0..a.height() {
            for x in 0..a.width() {
                prop_assert_eq!(a.get(x, y).to_bits(), b.get(x, y).to_bits(),
                    "inverse ({}, {})", x, y);
            }
        }
    }

    /// Fused kernels under parallel execution are bit-identical to the
    /// fused sequential transform (claims stay disjoint per worker).
    #[test]
    fn fused_parallel_equals_sequential(p in arb_plane_i32(), levels in 1u8..4, workers in 2usize..5) {
        let mut seq = p.clone();
        let mut par = p;
        forward_53_with(&mut seq, levels, VerticalStrategy::DEFAULT_STRIP,
            LiftingMode::Fused, SimdMode::Scalar, &Exec::SEQ);
        forward_53_with(&mut par, levels, VerticalStrategy::DEFAULT_STRIP,
            LiftingMode::Fused, SimdMode::Scalar, &Exec::threads(workers));
        prop_assert_eq!(par, seq);
    }

    /// Subband geometry always partitions the plane.
    #[test]
    fn subbands_partition(w in 1usize..200, h in 1usize..200, levels in 0u8..8) {
        let deco = Decomposition::new(w, h, levels);
        let total: usize = deco.subbands().iter().map(|s| s.w * s.h).sum();
        prop_assert_eq!(total, w * h);
    }

    /// Energy is (approximately) preserved by the orthonormal-ish 9/7 at
    /// one level — a guard against scaling regressions.
    #[test]
    fn dwt97_energy_sane(p in arb_plane_i32()) {
        let f = p.map(|v| v as f32);
        let e0: f64 = f.samples().map(|v| (v as f64) * (v as f64)).sum();
        let mut q = f;
        forward_97(&mut q, 1, VerticalStrategy::DEFAULT_STRIP, &Exec::SEQ);
        let e1: f64 = q.samples().map(|v| (v as f64) * (v as f64)).sum();
        // Our normalization is not exactly orthonormal (unit-DC lowpass),
        // but the energy ratio stays within a modest band.
        if e0 > 1.0 {
            let ratio = e1 / e0;
            prop_assert!(ratio > 0.2 && ratio < 6.0, "energy ratio {}", ratio);
        }
    }
}

fn forced_tiers() -> Vec<SimdMode> {
    let mut modes = vec![SimdMode::Auto];
    for tier in [SimdTier::Portable, SimdTier::Sse2, SimdTier::Avx2] {
        if tier.is_supported() {
            modes.push(SimdMode::Forced(tier));
        }
    }
    modes
}

fn arb_plane_narrow() -> impl Strategy<Value = Plane<i32>> {
    // Bias toward widths below / around one SIMD batch so the scalar
    // tails and batched regions both get exercised.
    (1usize..24, 1usize..48, 0usize..7, any::<u64>()).prop_map(|(w, h, pad, seed)| {
        let mut p = Plane::with_stride(w, h, w + pad);
        let mut state = seed | 1;
        for y in 0..h {
            for x in 0..w {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                p.set(x, y, ((state >> 33) as i32 % 511) - 255);
            }
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every SIMD tier (and auto dispatch) computes exactly the scalar
    /// 5/3 transform: any size (including widths narrower than one
    /// vector batch), stride pad, strip width, lifting mode, and level
    /// count — forward and inverse.
    #[test]
    fn simd_53_bit_identical_to_scalar(
        p in prop_oneof![arb_plane_i32(), arb_plane_narrow()],
        levels in 0u8..5,
        strat in strategies(),
        fused in any::<bool>(),
    ) {
        let lifting = if fused { LiftingMode::Fused } else { LiftingMode::PerStep };
        let mut scalar = p.clone();
        forward_53_with(&mut scalar, levels, strat, lifting, SimdMode::Scalar, &Exec::SEQ);
        for mode in forced_tiers() {
            let mut simd = p.clone();
            forward_53_with(&mut simd, levels, strat, lifting, mode, &Exec::SEQ);
            prop_assert_eq!(&simd, &scalar, "fwd {:?}", mode);
            inverse_53_with(&mut simd, levels, strat, lifting, mode, &Exec::SEQ);
            prop_assert_eq!(&simd, &p, "roundtrip {:?}", mode);
        }
    }

    /// Same for the 9/7: lane-parallel columns evaluate the identical
    /// f32 expressions per column, so even the float outputs match to
    /// the bit on every tier.
    #[test]
    fn simd_97_bit_identical_to_scalar(
        p in prop_oneof![arb_plane_i32(), arb_plane_narrow()],
        levels in 0u8..5,
        strat in strategies(),
        fused in any::<bool>(),
    ) {
        let lifting = if fused { LiftingMode::Fused } else { LiftingMode::PerStep };
        let f = p.map(|v| v as f32);
        let mut scalar = f.clone();
        forward_97_with(&mut scalar, levels, strat, lifting, SimdMode::Scalar, &Exec::SEQ);
        let mut scalar_inv = scalar.clone();
        inverse_97_with(&mut scalar_inv, levels, strat, lifting, SimdMode::Scalar, &Exec::SEQ);
        for mode in forced_tiers() {
            let mut simd = f.clone();
            forward_97_with(&mut simd, levels, strat, lifting, mode, &Exec::SEQ);
            for y in 0..f.height() {
                for x in 0..f.width() {
                    prop_assert_eq!(simd.get(x, y).to_bits(), scalar.get(x, y).to_bits(),
                        "fwd {:?} ({}, {})", mode, x, y);
                }
            }
            inverse_97_with(&mut simd, levels, strat, lifting, mode, &Exec::SEQ);
            for y in 0..f.height() {
                for x in 0..f.width() {
                    prop_assert_eq!(simd.get(x, y).to_bits(), scalar_inv.get(x, y).to_bits(),
                        "inv {:?} ({}, {})", mode, x, y);
                }
            }
        }
    }
}
