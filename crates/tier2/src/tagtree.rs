//! Tag trees (ISO/IEC 15444-1 B.10.2).
//!
//! A tag tree codes a 2-D array of non-negative integers (one per
//! code-block of a precinct) by quad-tree minima, revealing values
//! incrementally as the coder asks "is leaf (x, y) < threshold?". Packet
//! headers use two: one for first-inclusion layers and one for
//! zero-bit-plane counts.
//!
//! Untrusted-input note (DESIGN.md §9): header bits only ever influence
//! node *values* and lower bounds, never node *indices* — the tree shape
//! and every parent pointer are fixed at construction from caller-supplied
//! grid dimensions, and the decode climb is bounded by the caller's
//! threshold. That invariant is what the `AUDIT(fn)` annotations below
//! rely on.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::bitio::{HeaderBitReader, HeaderBitWriter};

#[derive(Debug, Clone)]
struct Node {
    /// Coded value (encoder: the true value; decoder: discovered value).
    value: u32,
    /// Lower bound communicated so far.
    low: u32,
    /// Whether `value` has been fully communicated.
    known: bool,
    /// Parent index (self for the root).
    parent: usize,
}

/// A tag tree over a `w x h` leaf grid.
#[derive(Debug, Clone)]
pub struct TagTree {
    w: usize,
    h: usize,
    nodes: Vec<Node>,
    /// Index of the first leaf (leaves occupy `leaf_base..leaf_base+w*h`).
    leaf_base: usize,
}

impl TagTree {
    /// Build a tree for a `w x h` grid; values start at "unknown/infinite"
    /// on the decoder side and must be assigned with [`TagTree::set_value`]
    /// on the encoder side.
    ///
    /// # Panics
    /// Panics if `w * h == 0`.
    // AUDIT(fn): construction-time geometry only. The level dims shrink by
    // div_ceil(2) per level down to (1, 1), every parent index was pushed
    // in an earlier (already materialized) level, and the caller caps
    // `w * h` before building per-precinct state from untrusted
    // dimensions; the non-empty assert is the caller's contract, checked
    // in `core::decode` before any tree is built.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    // AUDIT(hot): tree construction runs once per precinct and band —
    // setup-time, sized by the capped block grid.
    pub fn new(w: usize, h: usize) -> Self {
        assert!(w > 0 && h > 0, "empty tag tree");
        // Build levels from root (1x1) down to leaves; nodes stored
        // root-first so parents precede children.
        let mut dims = vec![(w, h)];
        while dims.last() != Some(&(1, 1)) {
            // lint:allow(hot_path_panic) -- `dims` is seeded with one entry
            // and only ever grows, so `last()` is always `Some`.
            let &(lw, lh) = dims.last().unwrap();
            dims.push((lw.div_ceil(2), lh.div_ceil(2)));
        }
        dims.reverse(); // root first
        let mut nodes = Vec::new();
        let mut level_base = vec![0usize; dims.len()];
        for (li, &(lw, lh)) in dims.iter().enumerate() {
            level_base[li] = nodes.len();
            for y in 0..lh {
                for x in 0..lw {
                    let parent = if li == 0 {
                        nodes.len() // root points at itself
                    } else {
                        let (pw, _) = dims[li - 1];
                        level_base[li - 1] + (y / 2) * pw + x / 2
                    };
                    nodes.push(Node {
                        value: u32::MAX,
                        low: 0,
                        known: false,
                        parent,
                    });
                }
            }
        }
        let leaf_base = level_base[dims.len() - 1];
        Self {
            w,
            h,
            nodes,
            leaf_base,
        }
    }

    /// Leaf grid width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Leaf grid height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Assign leaf `(x, y)`'s value (encoder side). Must be called for every
    /// leaf before encoding; internal minima are recomputed lazily by
    /// [`TagTree::finalize`].
    // AUDIT(fn): `leaf_index` bounds-checks (x, y), so the node index is
    // in range by construction.
    #[allow(clippy::indexing_slicing)]
    pub fn set_value(&mut self, x: usize, y: usize, v: u32) {
        let i = self.leaf_index(x, y);
        self.nodes[i].value = v;
    }

    /// Propagate leaf values up as minima (encoder side, after all
    /// `set_value` calls).
    // AUDIT(fn): iterates the node vec by its own indices; parent pointers
    // were created pointing at already-pushed nodes, so `p < i < len`.
    #[allow(clippy::indexing_slicing)]
    pub fn finalize(&mut self) {
        // Children are stored after parents; iterate in reverse so leaves
        // update their parents first.
        for i in (1..self.nodes.len()).rev() {
            let p = self.nodes[i].parent;
            if self.nodes[i].value < self.nodes[p].value {
                self.nodes[p].value = self.nodes[i].value;
            }
        }
    }

    /// Reset the incremental coding state (keeps values).
    pub fn reset_state(&mut self) {
        for n in &mut self.nodes {
            n.low = 0;
            n.known = false;
        }
    }

    // AUDIT(fn): the assert is a caller-contract tripwire — packet coding
    // iterates x < w, y < h of its own grid, so untrusted bytes cannot
    // select an out-of-range leaf; the sum then stays within the node vec
    // whose final level holds exactly w * h leaves.
    #[allow(clippy::arithmetic_side_effects)]
    fn leaf_index(&self, x: usize, y: usize) -> usize {
        assert!(x < self.w && y < self.h, "leaf out of range");
        self.leaf_base + y * self.w + x
    }

    // AUDIT(fn): walks fixed parent pointers (each `< len` and strictly
    // decreasing until the self-parenting root), so the walk is in-bounds
    // and terminates regardless of input bits.
    #[allow(clippy::indexing_slicing)]
    // AUDIT(hot): depth-bounded scratch (≤ log2 of the grid, ~8 entries)
    // per header query — header-size work, not per-sample.
    fn path_to(&self, leaf: usize) -> Vec<usize> {
        let mut path = vec![leaf];
        let mut i = leaf;
        while self.nodes[i].parent != i {
            i = self.nodes[i].parent;
            path.push(i);
        }
        path.reverse();
        path
    }

    /// Encode knowledge about leaf `(x, y)` up to `threshold`: after this
    /// call the decoder can answer "value < threshold?" (and knows the exact
    /// value if it is `< threshold`).
    // AUDIT(fn): encoder side; node indices come from `path_to` (in-bounds
    // by construction) and `low` increments strictly below `threshold`.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    pub fn encode(&mut self, x: usize, y: usize, threshold: u32, out: &mut HeaderBitWriter) {
        let leaf = self.leaf_index(x, y);
        let mut low = 0;
        for i in self.path_to(leaf) {
            if low > self.nodes[i].low {
                self.nodes[i].low = low;
            } else {
                low = self.nodes[i].low;
            }
            while low < threshold {
                if low >= self.nodes[i].value {
                    if !self.nodes[i].known {
                        out.put_bit(1);
                        self.nodes[i].known = true;
                    }
                    break;
                }
                out.put_bit(0);
                low += 1;
            }
            self.nodes[i].low = low;
        }
    }

    /// Decode knowledge about leaf `(x, y)` up to `threshold`; returns
    /// `true` when the leaf's value is known to be `< threshold` (and then
    /// [`TagTree::leaf_value`] returns it).
    ///
    /// Input bits only set node values/known flags; they cannot steer an
    /// index or unbound the climb (`low` stays `< threshold`), so malformed
    /// bits can at worst mis-decode a value — never panic.
    // AUDIT(fn): node indices come from `path_to` (fixed parent pointers,
    // in-bounds by construction); `low += 1` is guarded by
    // `low < threshold`, and the caller bounds the threshold (layer index
    // or the zero-bit-plane cap).
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    pub fn decode(
        &mut self,
        x: usize,
        y: usize,
        threshold: u32,
        input: &mut HeaderBitReader,
    ) -> bool {
        let leaf = self.leaf_index(x, y);
        let mut low = 0;
        for i in self.path_to(leaf) {
            if low > self.nodes[i].low {
                self.nodes[i].low = low;
            } else {
                low = self.nodes[i].low;
            }
            while low < threshold {
                if self.nodes[i].known {
                    break;
                }
                if input.get_bit() == 1 {
                    self.nodes[i].value = low;
                    self.nodes[i].known = true;
                } else {
                    low += 1;
                }
            }
            self.nodes[i].low = low;
        }
        let n = &self.nodes[leaf];
        n.known && n.value < threshold
    }

    /// Decoded (or assigned) value of leaf `(x, y)`.
    // AUDIT(fn): `leaf_index` bounds-checks (x, y) against the leaf grid.
    #[allow(clippy::indexing_slicing)]
    pub fn leaf_value(&self, x: usize, y: usize) -> u32 {
        self.nodes[self.leaf_index(x, y)].value
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;

    fn roundtrip(w: usize, h: usize, values: &[u32]) {
        let mut enc = TagTree::new(w, h);
        for y in 0..h {
            for x in 0..w {
                enc.set_value(x, y, values[y * w + x]);
            }
        }
        enc.finalize();
        let max = *values.iter().max().unwrap();
        let mut writer = HeaderBitWriter::new();
        // Reveal every leaf fully: raise thresholds until known.
        for y in 0..h {
            for x in 0..w {
                let mut t = 1;
                loop {
                    enc.encode(x, y, t, &mut writer);
                    if t > values[y * w + x] {
                        break;
                    }
                    t += 1;
                }
            }
        }
        let bytes = writer.finish();
        let mut dec = TagTree::new(w, h);
        let mut reader = HeaderBitReader::new(&bytes);
        for y in 0..h {
            for x in 0..w {
                let mut t = 1;
                loop {
                    let known = dec.decode(x, y, t, &mut reader);
                    if known {
                        break;
                    }
                    t += 1;
                    assert!(t <= max + 2, "runaway threshold at ({x},{y})");
                }
                assert_eq!(dec.leaf_value(x, y), values[y * w + x], "({x},{y})");
            }
        }
    }

    #[test]
    fn single_leaf() {
        roundtrip(1, 1, &[0]);
        roundtrip(1, 1, &[7]);
    }

    #[test]
    fn small_grids() {
        roundtrip(2, 2, &[0, 1, 2, 3]);
        roundtrip(3, 2, &[5, 0, 3, 1, 4, 2]);
        roundtrip(4, 4, &(0..16).map(|i| (i * 7) % 5).collect::<Vec<_>>());
    }

    #[test]
    fn non_power_of_two_grid() {
        let values: Vec<u32> = (0..35).map(|i| (i * 13) % 9).collect();
        roundtrip(7, 5, &values);
    }

    #[test]
    fn all_equal_values_are_cheap() {
        let w = 8;
        let h = 8;
        let mut enc = TagTree::new(w, h);
        for y in 0..h {
            for x in 0..w {
                enc.set_value(x, y, 3);
            }
        }
        enc.finalize();
        let mut writer = HeaderBitWriter::new();
        for y in 0..h {
            for x in 0..w {
                enc.encode(x, y, 4, &mut writer);
            }
        }
        // Root codes the shared prefix once; leaves add little.
        let bits = writer.bit_len();
        assert!(
            bits < 8 * 8 * 4,
            "tag tree should share prefixes: {bits} bits"
        );
    }

    #[test]
    fn partial_thresholds_reveal_partially() {
        let mut enc = TagTree::new(2, 1);
        enc.set_value(0, 0, 5);
        enc.set_value(1, 0, 1);
        enc.finalize();
        let mut w = HeaderBitWriter::new();
        enc.encode(0, 0, 3, &mut w); // not enough to know value 5
        enc.encode(1, 0, 3, &mut w); // enough to know value 1
        let bytes = w.finish();
        let mut dec = TagTree::new(2, 1);
        let mut r = HeaderBitReader::new(&bytes);
        assert!(!dec.decode(0, 0, 3, &mut r));
        assert!(dec.decode(1, 0, 3, &mut r));
        assert_eq!(dec.leaf_value(1, 0), 1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn incremental_then_full() {
        // First reveal at low threshold, later at higher: decoder converges.
        let mut enc = TagTree::new(2, 2);
        for (i, v) in [2u32, 0, 1, 3].iter().enumerate() {
            enc.set_value(i % 2, i / 2, *v);
        }
        enc.finalize();
        let mut w = HeaderBitWriter::new();
        for t in 1..=4 {
            for y in 0..2 {
                for x in 0..2 {
                    enc.encode(x, y, t, &mut w);
                }
            }
        }
        let bytes = w.finish();
        let mut dec = TagTree::new(2, 2);
        let mut r = HeaderBitReader::new(&bytes);
        let mut known = [[false; 2]; 2];
        for t in 1..=4u32 {
            for y in 0..2 {
                for x in 0..2 {
                    known[y][x] = dec.decode(x, y, t, &mut r);
                }
            }
        }
        assert!(known.iter().flatten().all(|&k| k));
        assert_eq!(dec.leaf_value(0, 0), 2);
        assert_eq!(dec.leaf_value(1, 1), 3);
    }

    #[test]
    #[should_panic(expected = "empty tag tree")]
    fn empty_tree_panics() {
        let _ = TagTree::new(0, 3);
    }
}
