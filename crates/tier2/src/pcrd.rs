//! Post-compression rate-distortion optimization (PCRD-opt).
//!
//! Every code-block arrives with cumulative (rate, distortion-reduction)
//! points at each coding-pass boundary. PCRD selects per-block truncation
//! points that minimize total distortion under a byte budget — the
//! "sophisticated optimization strategy for optimal rate/distortion
//! performance" the paper attributes to EBCOT. The classic two steps:
//!
//! 1. per block, prune the pass boundaries to their convex hull in
//!    (rate, distortion) space, yielding strictly decreasing R-D slopes;
//! 2. globally, include hull increments in decreasing slope order until the
//!    budget is exhausted (the greedy equivalent of the λ-threshold rule).
//!
//! Layers are allocated incrementally: each layer continues the greedy scan
//! from the previous layer's state, so per-block inclusion is monotone
//! across layers by construction, as Tier-2 requires.
//!
//! This module is encoder-only: PCRD consumes the encoder's own tier-1
//! rate/distortion statistics and is never reachable from untrusted
//! decoder input, so its panics are programming-error tripwires
//! (DESIGN.md §9).

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

/// Cumulative rate/distortion trajectory of one code-block.
///
/// Index `n` describes the state after `n + 1` coding passes; the implicit
/// origin (0 passes, 0 bytes, 0 reduction) is not stored. Rates must be
/// strictly increasing (every terminated pass emits at least one byte) and
/// distortion reductions non-decreasing.
#[derive(Debug, Clone, Default)]
pub struct BlockRd {
    /// Cumulative compressed bytes after each pass.
    pub rates: Vec<usize>,
    /// Cumulative distortion reduction after each pass, in any consistent
    /// unit — pj2k uses pixel-domain MSE contribution.
    pub dists: Vec<f64>,
}

impl BlockRd {
    /// Pass counts (1-based) forming the upper convex hull of the
    /// trajectory, in increasing order. Only hull vertices are eligible
    /// truncation points; slopes between consecutive vertices strictly
    /// decrease.
    ///
    /// # Panics
    /// Panics if `rates` and `dists` differ in length or rates are not
    /// strictly increasing.
    // AUDIT(fn): encoder-only; the asserts pin the caller contract on
    // trusted tier-1 statistics, and every index derives from hull entries
    // `1..=rates.len()` or validated window pairs.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    pub fn hull(&self) -> Vec<usize> {
        assert_eq!(
            self.rates.len(),
            self.dists.len(),
            "rate/dist length mismatch"
        );
        for w in self.rates.windows(2) {
            assert!(w[0] < w[1], "pass rates must strictly increase");
        }
        let point = |n: usize| -> (f64, f64) {
            if n == 0 {
                (0.0, 0.0)
            } else {
                (self.rates[n - 1] as f64, self.dists[n - 1])
            }
        };
        let mut hull: Vec<usize> = Vec::new();
        for i in 1..=self.rates.len() {
            let (ri, di) = point(i);
            while let Some(&last) = hull.last() {
                let (rl, dl) = point(last);
                let prev = if hull.len() >= 2 {
                    hull[hull.len() - 2]
                } else {
                    0
                };
                let (rp, dp) = point(prev);
                let s_in = (dl - dp) / (rl - rp);
                let s_out = (di - dl) / (ri - rl);
                if s_out >= s_in {
                    hull.pop();
                } else {
                    break;
                }
            }
            let (rl, dl) = point(hull.last().copied().unwrap_or(0));
            if di > dl && ri > rl {
                hull.push(i);
            }
        }
        hull
    }
}

/// One includable hull increment for the global greedy selection.
#[derive(Debug, Clone, Copy)]
struct Increment {
    block: usize,
    /// Cumulative pass count this increment reaches.
    upto: usize,
    /// Additional bytes over the previous hull point.
    dr: usize,
    slope: f64,
}

/// Allocate coding passes to quality layers.
///
/// `layer_budgets` are cumulative byte budgets (non-decreasing) for the
/// block *bodies* (packet-header overhead is the caller's concern). Returns
/// `result[layer][block]` = cumulative pass count included once that layer
/// is received.
///
/// # Panics
/// Panics if budgets decrease or any block's rates are malformed.
// AUDIT(fn): encoder-only; hull pass counts index `rates`/`dists` of the
// same block (hull entries are `<= rates.len()` by construction), block
// indices come from `enumerate`, and rate deltas are hull-monotone.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn allocate_layers(blocks: &[BlockRd], layer_budgets: &[usize]) -> Vec<Vec<usize>> {
    for w in layer_budgets.windows(2) {
        assert!(w[0] <= w[1], "layer budgets must be non-decreasing");
    }
    let mut incs: Vec<Increment> = Vec::new();
    for (b, blk) in blocks.iter().enumerate() {
        let mut prev_r = 0usize;
        let mut prev_d = 0f64;
        for &n in &blk.hull() {
            let r = blk.rates[n - 1];
            let d = blk.dists[n - 1];
            incs.push(Increment {
                block: b,
                upto: n,
                dr: r - prev_r,
                slope: (d - prev_d) / (r - prev_r) as f64,
            });
            prev_r = r;
            prev_d = d;
        }
    }
    // Decreasing slope; deterministic tie-break. Within one block slopes
    // strictly decrease, so each block's increments stay in prefix order.
    incs.sort_by(|a, b| {
        b.slope
            .partial_cmp(&a.slope)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.block.cmp(&b.block))
            .then(a.upto.cmp(&b.upto))
    });

    let mut upto = vec![0usize; blocks.len()];
    // Prefix rule: once a block's increment is skipped, its later (flatter)
    // increments may not be taken within the same layer; a later layer with
    // more budget reconsiders from where the block stopped.
    let mut spent = 0usize;
    let mut out = Vec::with_capacity(layer_budgets.len());
    for &budget in layer_budgets {
        let mut closed = vec![false; blocks.len()];
        for inc in &incs {
            if closed[inc.block] || inc.upto <= upto[inc.block] {
                continue;
            }
            // This is the next pending increment of the block (in-order by
            // the sort); check contiguity then budget.
            let is_next = is_next_hull_step(blocks, inc.block, upto[inc.block], inc.upto);
            if !is_next {
                closed[inc.block] = true;
                continue;
            }
            if spent.saturating_add(inc.dr) <= budget {
                upto[inc.block] = inc.upto;
                spent += inc.dr;
            } else {
                closed[inc.block] = true;
            }
        }
        out.push(upto.clone());
    }
    out
}

/// True when `next` immediately follows `cur` in block `b`'s hull.
// AUDIT(fn): encoder-only; `b` enumerates `blocks` and `p >= 1` in the
// indexed arm.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn is_next_hull_step(blocks: &[BlockRd], b: usize, cur: usize, next: usize) -> bool {
    let hull = blocks[b].hull();
    match hull.iter().position(|&n| n == next) {
        Some(0) => cur == 0,
        Some(p) => hull[p - 1] == cur,
        None => false,
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;

    fn blk(points: &[(usize, f64)]) -> BlockRd {
        BlockRd {
            rates: points.iter().map(|p| p.0).collect(),
            dists: points.iter().map(|p| p.1).collect(),
        }
    }

    #[test]
    fn hull_of_concave_trajectory_keeps_everything() {
        let b = blk(&[(10, 100.0), (20, 150.0), (30, 170.0)]);
        assert_eq!(b.hull(), vec![1, 2, 3]);
    }

    #[test]
    fn hull_drops_dominated_points() {
        // Pass 2 is a poor deal (the slope rises afterwards): hull skips it.
        let b = blk(&[(10, 100.0), (20, 101.0), (30, 200.0)]);
        let h = b.hull();
        assert!(!h.contains(&2), "{h:?}");
        assert!(h.contains(&3));
    }

    #[test]
    fn hull_slopes_strictly_decrease() {
        let b = blk(&[
            (5, 50.0),
            (9, 80.0),
            (15, 95.0),
            (16, 95.5),
            (30, 99.0),
            (31, 99.01),
        ]);
        let h = b.hull();
        let mut prev_slope = f64::INFINITY;
        let mut pr = 0.0;
        let mut pd = 0.0;
        for &n in &h {
            let r = b.rates[n - 1] as f64;
            let d = b.dists[n - 1];
            let s = (d - pd) / (r - pr);
            assert!(s < prev_slope, "slope {s} >= {prev_slope} at pass {n}");
            prev_slope = s;
            pr = r;
            pd = d;
        }
    }

    #[test]
    fn hull_handles_zero_progress_passes() {
        // Passes that add bytes but no distortion reduction never appear.
        let b = blk(&[(10, 0.0), (20, 80.0), (25, 80.0), (30, 90.0)]);
        let h = b.hull();
        assert!(!h.contains(&1), "{h:?}");
        assert!(!h.contains(&3), "{h:?}");
        assert!(h.contains(&2));
    }

    #[test]
    fn hull_of_all_zero_distortion_is_empty() {
        let b = blk(&[(3, 0.0), (6, 0.0)]);
        assert!(b.hull().is_empty());
    }

    #[test]
    fn empty_block_has_empty_hull() {
        assert!(blk(&[]).hull().is_empty());
    }

    #[test]
    fn allocation_respects_budget() {
        let blocks = vec![
            blk(&[(10, 100.0), (20, 150.0), (30, 170.0)]),
            blk(&[(8, 90.0), (16, 120.0), (24, 130.0)]),
        ];
        for budget in [0usize, 10, 18, 26, 60, 1000] {
            let alloc = allocate_layers(&blocks, &[budget]);
            let total: usize = alloc[0]
                .iter()
                .enumerate()
                .map(|(b, &n)| if n == 0 { 0 } else { blocks[b].rates[n - 1] })
                .sum();
            assert!(total <= budget, "budget {budget}: spent {total}");
        }
    }

    #[test]
    fn allocation_prefers_steeper_slopes() {
        // Block 0's first increment: slope 10; block 1's: slope 11.25.
        let blocks = vec![blk(&[(10, 100.0)]), blk(&[(8, 90.0)])];
        let alloc = allocate_layers(&blocks, &[9]);
        assert_eq!(
            alloc[0],
            vec![0, 1],
            "should pick the steeper, cheaper block"
        );
    }

    #[test]
    fn unlimited_budget_takes_all_hull_points() {
        let blocks = vec![
            blk(&[(10, 100.0), (20, 150.0)]),
            blk(&[(5, 10.0), (9, 12.0)]),
        ];
        let alloc = allocate_layers(&blocks, &[usize::MAX]);
        assert_eq!(alloc[0], vec![2, 2]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn layers_are_monotone_and_final_layer_complete() {
        let blocks = vec![
            blk(&[(10, 100.0), (20, 150.0), (30, 170.0)]),
            blk(&[(8, 90.0), (16, 120.0), (24, 130.0)]),
            blk(&[(4, 5.0), (8, 6.0)]),
        ];
        let alloc = allocate_layers(&blocks, &[12, 30, 70, usize::MAX]);
        for l in 1..alloc.len() {
            for b in 0..blocks.len() {
                assert!(alloc[l][b] >= alloc[l - 1][b], "layer {l} block {b}");
            }
        }
        assert_eq!(alloc[3], vec![3, 3, 2]);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_instance() {
        // Two blocks, budget 26: exhaustive search over truncation pairs.
        let blocks = vec![
            blk(&[(10, 100.0), (20, 150.0), (30, 170.0)]),
            blk(&[(8, 90.0), (16, 120.0), (24, 130.0)]),
        ];
        let budget = 26;
        let alloc = &allocate_layers(&blocks, &[budget])[0];
        let value = |sel: &[usize]| -> (usize, f64) {
            let mut r = 0;
            let mut d = 0.0;
            for (b, &n) in sel.iter().enumerate() {
                if n > 0 {
                    r += blocks[b].rates[n - 1];
                    d += blocks[b].dists[n - 1];
                }
            }
            (r, d)
        };
        let (gr, gd) = value(alloc);
        assert!(gr <= budget);
        let mut best = 0.0f64;
        for a in 0..=3 {
            for b in 0..=3 {
                let (r, d) = value(&[a, b]);
                if r <= budget {
                    best = best.max(d);
                }
            }
        }
        // Greedy on hull increments is optimal up to one fractional item;
        // on this instance it should match the exhaustive optimum.
        assert!(
            gd >= best - 1e-9,
            "greedy {gd} vs exhaustive {best} (alloc {alloc:?})"
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_budgets_panic() {
        let _ = allocate_layers(&[], &[10, 5]);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_increasing_rates_panic() {
        let _ = blk(&[(10, 1.0), (10, 2.0)]).hull();
    }
}
