//! Packet header coding (ISO/IEC 15444-1 B.10).
//!
//! A packet carries, for one (layer, resolution) pair, the newly included
//! coding passes of every code-block of that resolution. Its header codes,
//! per block: first inclusion (tag tree over the layer index), zero
//! bit-plane count at first inclusion (second tag tree), the number of new
//! passes (Table B.4 codewords), and the byte length of each new pass
//! segment (Lblock state machine). pj2k terminates the MQ coder at every
//! pass, so each pass is exactly one segment, the standard's
//! termination-on-every-pass mode.
//!
//! The decode half is on the untrusted-input boundary (DESIGN.md §9): it
//! never indexes unchecked, bounds the Lblock state machine, and reports
//! implausible headers through [`PacketError`].

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::bitio::{HeaderBitReader, HeaderBitWriter};
use crate::tagtree::TagTree;

/// Widest pass-length field the decoder accepts. Header bits grow Lblock
/// one at a time; a field wider than 32 bits can never describe a real
/// segment length (`get_bits` yields a `u32`, and real encoders start at 3
/// and only reach `bits_of(len)`), so climbing past this is proof of a
/// corrupt header.
pub const MAX_LBLOCK: u32 = 32;

/// Largest zero-bit-plane count a header may claim before the decoder
/// flags the block as implausible (`u32::MAX` sentinel); the coder's plane
/// budget is far below this.
const MAX_ZBP_THRESHOLD: u32 = 64;

/// Error raised while decoding a packet header from untrusted bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// The Lblock length-coding state for `block` climbed past
    /// [`MAX_LBLOCK`]: the header is corrupt.
    ImplausibleLblock {
        /// Raster index of the offending block.
        block: usize,
        /// The implausible Lblock value reached.
        lblock: u32,
    },
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PacketError::ImplausibleLblock { block, lblock } => write!(
                f,
                "packet header: Lblock {lblock} for block {block} exceeds the \
                 {MAX_LBLOCK}-bit length-field cap"
            ),
        }
    }
}

impl std::error::Error for PacketError {}

/// Persistent per-precinct state threaded through the layers of packets.
///
/// pj2k uses maximal precincts: one precinct per (resolution, subband), so
/// the block grid is the subband's full code-block grid.
#[derive(Debug, Clone)]
pub struct PrecinctState {
    grid_w: usize,
    grid_h: usize,
    incl_tree: TagTree,
    zbp_tree: TagTree,
    /// Cumulative passes communicated so far per block.
    included: Vec<usize>,
    /// Length-coding state per block (standard initial value 3).
    lblock: Vec<u32>,
}

/// Per-block outcome of decoding one packet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockDecodeResult {
    /// Passes already included before this packet.
    pub prev_passes: usize,
    /// Newly included pass count.
    pub new_passes: usize,
    /// Byte length of each new pass segment, in coding order.
    pub seg_lens: Vec<usize>,
    /// Zero-bit-plane count (valid once the block has been included).
    pub zero_bitplanes: u32,
}

impl PrecinctState {
    /// Encoder-side construction: per-block first-inclusion layers (use a
    /// value `>= layer count` for never-included blocks) and zero-bit-plane
    /// counts, each in raster order over a `grid_w x grid_h` block grid.
    ///
    /// # Panics
    /// Panics on grid/vector size mismatch.
    // AUDIT(fn): encoder-side construction over trusted tier-1 output; the
    // grid and value vectors come from the code-block partition, never from
    // untrusted bytes, so size mismatches are programming errors.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    pub fn for_encoder(
        grid_w: usize,
        grid_h: usize,
        first_layer: &[u32],
        zero_bitplanes: &[u32],
    ) -> Self {
        let n = grid_w * grid_h;
        assert_eq!(first_layer.len(), n, "first_layer size mismatch");
        assert_eq!(zero_bitplanes.len(), n, "zero_bitplanes size mismatch");
        let mut incl_tree = TagTree::new(grid_w, grid_h);
        let mut zbp_tree = TagTree::new(grid_w, grid_h);
        for y in 0..grid_h {
            for x in 0..grid_w {
                incl_tree.set_value(x, y, first_layer[y * grid_w + x]);
                zbp_tree.set_value(x, y, zero_bitplanes[y * grid_w + x]);
            }
        }
        incl_tree.finalize();
        zbp_tree.finalize();
        Self {
            grid_w,
            grid_h,
            incl_tree,
            zbp_tree,
            included: vec![0; n],
            lblock: vec![3; n],
        }
    }

    /// Decoder-side construction (values are discovered from the headers).
    ///
    /// The caller is responsible for capping `grid_w * grid_h` before
    /// allocating per-block state from untrusted dimensions (see
    /// `core::decode`'s block-count budget).
    // AUDIT(hot): per-precinct state built once, sized by the (capped)
    // block grid — setup-time relative to the block decode loops.
    pub fn for_decoder(grid_w: usize, grid_h: usize) -> Self {
        let n = grid_w.saturating_mul(grid_h);
        Self {
            grid_w,
            grid_h,
            incl_tree: TagTree::new(grid_w, grid_h),
            zbp_tree: TagTree::new(grid_w, grid_h),
            included: vec![0; n],
            lblock: vec![3; n],
        }
    }

    /// Number of blocks in the precinct.
    pub fn len(&self) -> usize {
        self.grid_w.saturating_mul(self.grid_h)
    }

    /// True for a degenerate empty precinct.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative passes included so far for block `b` (0 out of range).
    pub fn included_passes(&self, b: usize) -> usize {
        self.included.get(b).copied().unwrap_or(0)
    }
}

// AUDIT(fn): encoder-side helper; `v >= 1` is asserted by the caller on
// trusted pass lengths, and `leading_zeros() <= usize::BITS` always.
#[allow(clippy::arithmetic_side_effects)]
fn bits_of(v: usize) -> u8 {
    debug_assert!(v >= 1);
    (usize::BITS - v.leading_zeros()) as u8
}

/// Encode the header of one packet.
///
/// `layer` is the zero-based layer index, `upto[b]` the cumulative pass
/// count after this layer, and `pass_lens[b]` the byte length of *every*
/// pass segment of block `b` (the header encodes the ones in
/// `included[b]..upto[b]`). Returns the header bytes; the caller appends
/// the matching body segments itself.
///
/// # Panics
/// Panics on size mismatches or if `upto` regresses.
// AUDIT(fn): encoder-side path over trusted tier-1 output — pass counts,
// lengths, and grid indices come from the encoder's own partition, never
// from untrusted bytes; the asserts below are programming-error tripwires.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
pub fn encode_packet(
    state: &mut PrecinctState,
    layer: usize,
    upto: &[usize],
    pass_lens: &[Vec<usize>],
) -> Vec<u8> {
    let n = state.len();
    assert_eq!(upto.len(), n, "upto size mismatch");
    assert_eq!(pass_lens.len(), n, "pass_lens size mismatch");
    let mut w = HeaderBitWriter::new();
    let any = (0..n).any(|b| upto[b] > state.included[b]);
    if !any {
        w.put_bit(0);
        return w.finish();
    }
    w.put_bit(1);
    for y in 0..state.grid_h {
        for x in 0..state.grid_w {
            let b = y * state.grid_w + x;
            let prev = state.included[b];
            // lint:allow(hot_path_panic) -- layer contributions are
            // monotone by construction (caller passes cumulative counts),
            // so a regression is a programming error worth aborting on.
            let new = upto[b].checked_sub(prev).expect("pass count regressed");
            if prev == 0 {
                // First-inclusion information via the tag tree.
                state.incl_tree.encode(x, y, layer as u32 + 1, &mut w);
                if new == 0 {
                    continue;
                }
                // Zero bit-planes, revealed fully at first inclusion.
                let zbp = state.zbp_tree.leaf_value(x, y);
                for t in 1..=zbp + 1 {
                    state.zbp_tree.encode(x, y, t, &mut w);
                }
            } else {
                w.put_bit(u8::from(new > 0));
                if new == 0 {
                    continue;
                }
            }
            encode_pass_count(&mut w, new);
            // One terminated segment per pass: code each length.
            for &len in &pass_lens[b][prev..upto[b]] {
                assert!(len >= 1, "pass segments are at least one byte");
                let need = bits_of(len) as u32;
                while state.lblock[b] < need {
                    w.put_bit(1);
                    state.lblock[b] += 1;
                }
                w.put_bit(0);
                w.put_bits(len as u32, state.lblock[b] as u8);
            }
            state.included[b] = upto[b];
        }
    }
    w.finish()
}

/// Decode the header of one packet; advances `state` and reports each
/// block's new segments.
///
/// Never panics on malformed input: structurally impossible headers yield
/// a [`PacketError`], implausible zero-bit-plane climbs are flagged with a
/// `u32::MAX` sentinel in [`BlockDecodeResult::zero_bitplanes`] (rejected
/// by the caller's Kmax validation), and segment lengths are for the
/// caller to bounds-check against the remaining body bytes.
// AUDIT(fn): arithmetic here is grid-index math bounded by the precinct's
// block count n = grid_w * grid_h (allocation-capped by the caller), the
// layer index (caller-validated <= 4096), and the Lblock climb, which is
// capped at MAX_LBLOCK before use. Indexing stays denied: all element
// access goes through get/get_mut.
#[allow(clippy::arithmetic_side_effects)]
// AUDIT(hot): one result Vec per packet plus one owned segment-length
// push per newly included pass — O(blocks) per layer, and the segment
// buffers are handed off to the Tier-1 jobs rather than copied again.
pub fn decode_packet(
    state: &mut PrecinctState,
    layer: usize,
    data: &[u8],
) -> Result<(Vec<BlockDecodeResult>, usize), PacketError> {
    let mut r = HeaderBitReader::new(data);
    let n = state.len();
    let mut out = vec![BlockDecodeResult::default(); n];
    for (b, slot) in out.iter_mut().enumerate() {
        slot.prev_passes = state.included.get(b).copied().unwrap_or(0);
        if slot.prev_passes > 0 {
            // Zero-bit-plane counts were learned at first inclusion and
            // stay valid for every later packet, including empty ones.
            let (x, y) = (b % state.grid_w, b / state.grid_w);
            slot.zero_bitplanes = state.zbp_tree.leaf_value(x, y);
        }
    }
    if r.get_bit() == 0 {
        // Empty packet: single zero bit, aligned to one byte.
        return Ok((out, 1.max(r.bytes_consumed())));
    }
    for y in 0..state.grid_h {
        for x in 0..state.grid_w {
            let b = y * state.grid_w + x;
            let prev = state.included.get(b).copied().unwrap_or(0);
            let included_now;
            if prev == 0 {
                included_now = state.incl_tree.decode(x, y, layer as u32 + 1, &mut r);
                if included_now {
                    let mut t = 1;
                    while !state.zbp_tree.decode(x, y, t, &mut r) {
                        t += 1;
                        if t > MAX_ZBP_THRESHOLD {
                            // Corrupt header: a zero-bit-plane count can
                            // never exceed the coder's plane budget. Flag
                            // the block as implausible and stop climbing
                            // (the caller's Kmax validation rejects it).
                            break;
                        }
                    }
                    let zbp = if t > MAX_ZBP_THRESHOLD {
                        u32::MAX
                    } else {
                        state.zbp_tree.leaf_value(x, y)
                    };
                    if let Some(slot) = out.get_mut(b) {
                        slot.zero_bitplanes = zbp;
                    }
                }
            } else {
                included_now = r.get_bit() == 1;
            }
            if !included_now {
                continue;
            }
            let new = decode_pass_count(&mut r);
            let mut lblock = state.lblock.get(b).copied().unwrap_or(3);
            let mut seg_lens = Vec::with_capacity(new);
            for _ in 0..new {
                while r.get_bit() == 1 {
                    lblock += 1;
                    if lblock > MAX_LBLOCK {
                        return Err(PacketError::ImplausibleLblock { block: b, lblock });
                    }
                }
                seg_lens.push(r.get_bits(lblock as u8) as usize);
            }
            if let Some(s) = state.lblock.get_mut(b) {
                *s = lblock;
            }
            if let Some(s) = state.included.get_mut(b) {
                *s = s.saturating_add(new);
            }
            if let Some(slot) = out.get_mut(b) {
                slot.new_passes = new;
                slot.seg_lens = seg_lens;
            }
        }
    }
    Ok((out, r.bytes_consumed()))
}

/// Number-of-passes codewords (Table B.4).
// AUDIT(fn): encoder-side; tier-1 pass counts are bounded by the plane
// budget (at most 1 + 3*30 = 91 passes), far below the 164 codeword limit.
#[allow(clippy::arithmetic_side_effects)]
fn encode_pass_count(w: &mut HeaderBitWriter, n: usize) {
    match n {
        1 => w.put_bit(0),
        2 => w.put_bits(0b10, 2),
        3..=5 => {
            w.put_bits(0b11, 2);
            w.put_bits((n - 3) as u32, 2);
        }
        6..=36 => {
            w.put_bits(0b1111, 4);
            w.put_bits((n - 6) as u32, 5);
        }
        37..=164 => {
            w.put_bits(0b1111, 4);
            w.put_bits(0b11111, 5);
            w.put_bits((n - 37) as u32, 7);
        }
        // lint:allow(hot_path_panic) -- 164 is the spec maximum number of
        // coding passes; exceeding it is unrepresentable in the header.
        _ => panic!("pass count {n} out of range 1..=164"),
    }
}

// AUDIT(fn): decoder path, but every sum is bounded by its codeword class
// (`get_bits(7) <= 127`, so the largest result is 37 + 127 = 164).
#[allow(clippy::arithmetic_side_effects)]
fn decode_pass_count(r: &mut HeaderBitReader) -> usize {
    if r.get_bit() == 0 {
        return 1;
    }
    if r.get_bit() == 0 {
        return 2;
    }
    let two = r.get_bits(2) as usize;
    if two < 3 {
        return 3 + two;
    }
    let five = r.get_bits(5) as usize;
    if five < 31 {
        return 6 + five;
    }
    37 + r.get_bits(7) as usize
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn pass_count_codewords_roundtrip() {
        for n in 1..=164usize {
            let mut w = HeaderBitWriter::new();
            encode_pass_count(&mut w, n);
            let bytes = w.finish();
            let mut r = HeaderBitReader::new(&bytes);
            assert_eq!(decode_pass_count(&mut r), n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pass_count_over_164_panics() {
        let mut w = HeaderBitWriter::new();
        encode_pass_count(&mut w, 165);
    }

    /// End-to-end packet header roundtrip across several layers.
    #[test]
    fn multi_layer_packet_roundtrip() {
        // 3x2 block grid; blocks have varying pass counts and lengths.
        let (gw, gh) = (3, 2);
        let pass_lens: Vec<Vec<usize>> = vec![
            vec![3, 5, 2, 9, 1, 30],
            vec![1, 1],
            vec![200, 120, 80],
            vec![4],
            vec![],
            vec![7, 7, 7, 7, 7, 7, 7],
        ];
        // Layer allocation (cumulative passes per layer).
        let alloc: Vec<Vec<usize>> = vec![
            vec![2, 0, 1, 0, 0, 0],
            vec![4, 1, 1, 0, 0, 3],
            vec![6, 2, 3, 1, 0, 7],
        ];
        let n_layers = alloc.len();
        let first_layer: Vec<u32> = (0..6)
            .map(|b| {
                alloc
                    .iter()
                    .position(|l| l[b] > 0)
                    .map_or(n_layers as u32, |p| p as u32)
            })
            .collect();
        let zbps: Vec<u32> = vec![0, 3, 1, 2, 0, 5];
        let mut enc = PrecinctState::for_encoder(gw, gh, &first_layer, &zbps);
        let mut headers = Vec::new();
        for (l, upto) in alloc.iter().enumerate() {
            headers.push(encode_packet(&mut enc, l, upto, &pass_lens));
        }
        let mut dec = PrecinctState::for_decoder(gw, gh);
        for (l, hdr) in headers.iter().enumerate() {
            let (results, _consumed) = decode_packet(&mut dec, l, hdr).unwrap();
            for (b, res) in results.iter().enumerate() {
                let prev = if l == 0 { 0 } else { alloc[l - 1][b] };
                let want_new = alloc[l][b] - prev;
                assert_eq!(res.prev_passes, prev, "layer {l} block {b}");
                assert_eq!(res.new_passes, want_new, "layer {l} block {b}");
                let want_lens: Vec<usize> = pass_lens[b][prev..alloc[l][b]].to_vec();
                assert_eq!(res.seg_lens, want_lens, "layer {l} block {b}");
                if alloc[l][b] > 0 {
                    assert_eq!(res.zero_bitplanes, zbps[b], "layer {l} block {b}");
                }
            }
        }
    }

    #[test]
    fn empty_packet_is_one_byte() {
        let mut enc = PrecinctState::for_encoder(2, 2, &[1, 1, 1, 1], &[0, 0, 0, 0]);
        let hdr = encode_packet(
            &mut enc,
            0,
            &[0, 0, 0, 0],
            &[vec![], vec![], vec![], vec![]],
        );
        assert_eq!(hdr.len(), 1);
        let mut dec = PrecinctState::for_decoder(2, 2);
        let (results, consumed) = decode_packet(&mut dec, 0, &hdr).unwrap();
        assert_eq!(consumed, 1);
        assert!(results.iter().all(|r| r.new_passes == 0));
    }

    #[test]
    fn single_block_many_passes() {
        let lens: Vec<usize> = (1..=40).collect();
        let pass_lens = vec![lens.clone()];
        let mut enc = PrecinctState::for_encoder(1, 1, &[0], &[7]);
        let hdr = encode_packet(&mut enc, 0, &[40], &pass_lens);
        let mut dec = PrecinctState::for_decoder(1, 1);
        let (results, _) = decode_packet(&mut dec, 0, &hdr).unwrap();
        assert_eq!(results[0].new_passes, 40);
        assert_eq!(results[0].seg_lens, lens);
        assert_eq!(results[0].zero_bitplanes, 7);
    }

    #[test]
    fn never_included_block_stays_out() {
        let mut enc = PrecinctState::for_encoder(2, 1, &[0, 5], &[1, 2]);
        let pass_lens = vec![vec![3, 4], vec![9]];
        let h0 = encode_packet(&mut enc, 0, &[2, 0], &pass_lens);
        let h1 = encode_packet(&mut enc, 1, &[2, 0], &pass_lens);
        let mut dec = PrecinctState::for_decoder(2, 1);
        let (r0, _) = decode_packet(&mut dec, 0, &h0).unwrap();
        assert_eq!(r0[0].new_passes, 2);
        assert_eq!(r0[1].new_passes, 0);
        let (r1, _) = decode_packet(&mut dec, 1, &h1).unwrap();
        assert_eq!(r1[0].new_passes, 0);
        assert_eq!(r1[1].new_passes, 0);
    }

    #[test]
    fn large_segment_lengths_roundtrip() {
        let pass_lens = vec![vec![65_000, 1, 128_000]];
        let mut enc = PrecinctState::for_encoder(1, 1, &[0], &[0]);
        let hdr = encode_packet(&mut enc, 0, &[3], &pass_lens);
        let mut dec = PrecinctState::for_decoder(1, 1);
        let (results, _) = decode_packet(&mut dec, 0, &hdr).unwrap();
        assert_eq!(results[0].seg_lens, pass_lens[0]);
    }

    #[test]
    fn corrupt_header_with_endless_zeros_terminates() {
        // Regression: a truncated/corrupt header used to spin forever in
        // the zero-bit-plane loop (the bit reader feeds 0s past the end).
        let mut dec = PrecinctState::for_decoder(1, 1);
        // non-empty bit = 1, inclusion bit = 1, then nothing: the reader
        // returns zeros forever.
        let (results, _) = decode_packet(&mut dec, 0, &[0b1100_0000]).unwrap();
        assert_eq!(
            results[0].zero_bitplanes,
            u32::MAX,
            "implausible zbp must be flagged, not looped on"
        );
    }

    #[test]
    fn runaway_lblock_is_an_error_not_garbage() {
        // Bits: 1 (non-empty), 1 (included at layer 0), 1 (zbp = 0),
        // 0 (one pass), then all-ones: each 1 bumps Lblock, so the climb
        // must hit the MAX_LBLOCK cap and error out instead of wrapping
        // into a garbage length field.
        let data = [0b1110_1111, 0xFF, 0x7F, 0xFF, 0x7F, 0xFF, 0x7F];
        let mut dec = PrecinctState::for_decoder(1, 1);
        let err = decode_packet(&mut dec, 0, &data).unwrap_err();
        assert_eq!(
            err,
            PacketError::ImplausibleLblock {
                block: 0,
                lblock: MAX_LBLOCK + 1
            }
        );
        assert!(err.to_string().contains("Lblock"));
    }

    #[test]
    fn header_bytes_consumed_matches_length() {
        let pass_lens = vec![vec![10, 20], vec![5]];
        let mut enc = PrecinctState::for_encoder(2, 1, &[0, 0], &[2, 4]);
        let hdr = encode_packet(&mut enc, 0, &[2, 1], &pass_lens);
        let mut dec = PrecinctState::for_decoder(2, 1);
        let (_, consumed) = decode_packet(&mut dec, 0, &hdr).unwrap();
        assert_eq!(consumed, hdr.len());
    }
}
