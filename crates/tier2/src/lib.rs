//! Tier-2 coding and rate allocation for pj2k.
//!
//! Tier-2 is everything above the per-block entropy coder: deciding *which*
//! coding passes of *which* code-blocks enter the codestream (rate
//! allocation, [`pcrd`]), and writing the packet headers that describe those
//! decisions compactly (tag-tree coded inclusion and zero-bit-plane
//! information, pass counts and segment lengths — [`packet`], [`tagtree`],
//! [`bitio`]), plus the marker-segment container ([`codestream`]).
//!
//! The paper treats this stage ("R/D allocation", "tier-2 coding",
//! "bitstream I/O") as inherently sequential and low-cost; this crate keeps
//! it single-threaded by design so the pipeline's serial fraction matches
//! the paper's Fig. 3 structure.
//!
//! The decode half of this crate sits on the untrusted-input boundary; see
//! DESIGN.md §9 for the threat model and the `cargo xtask audit-panics`
//! pass that keeps it panic-free.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

pub mod bitio;
pub mod codestream;
pub mod packet;
pub mod pcrd;
pub mod tagtree;

pub use bitio::{HeaderBitReader, HeaderBitWriter};
pub use codestream::ParseError;
pub use packet::{decode_packet, encode_packet, BlockDecodeResult, PacketError, PrecinctState};
pub use pcrd::{allocate_layers, BlockRd};
pub use tagtree::TagTree;
